//! The epoch loop of the DoS-resistant overlay.

use crate::config::{log2_ceil, SamplingParams, Schedule};
use crate::dos::supernode::GroupedNetwork;
use crate::metrics::{DosRoundMetrics, DosRunMetrics};
use overlay_adversary::adaptive::Attacker;
use simnet::rng::NodeRng;
use simnet::{BlockSet, NodeId};
use std::collections::HashMap;
use telemetry::{EventKind, Telemetry};

/// Parameters of the Section 5 overlay.
#[derive(Clone, Copy, Debug)]
pub struct DosParams {
    /// The group-size constant `c` (Lemma 16): `2^d <= n / (c log n)`.
    pub group_c: f64,
    /// Sampling parameters used to derive the epoch length from the
    /// Algorithm 2 schedule.
    pub sampling: SamplingParams,
}

impl Default for DosParams {
    fn default() -> Self {
        Self { group_c: 4.0, sampling: SamplingParams::default() }
    }
}

/// The DoS-resistant overlay: groups of representatives on a hypercube,
/// rebuilt with a fresh random assignment every `Theta(log log n)` rounds
/// as long as every group keeps an available member (Lemmas 14/15).
pub struct DosOverlay {
    grouped: GroupedNetwork,
    /// Rounds per reconfiguration epoch.
    epoch_len: u64,
    round: u64,
    epochs_done: u64,
    /// Epochs that failed because some group starved mid-epoch.
    pub failed_epochs: u64,
    /// Whether the current epoch still satisfies the Lemma 14 precondition.
    epoch_ok: bool,
    prev_blocked: BlockSet,
    rng: NodeRng,
    /// Attached recorder (disabled by default). Pure observability: it
    /// never draws from `rng` and is excluded from [`Self::state_digest`]
    /// and the checkpoint format.
    tel: Telemetry,
}

impl DosOverlay {
    /// Build the overlay over nodes `0..n` with the Section 5 dimension
    /// choice and a uniformly random initial assignment.
    pub fn new(n: usize, params: DosParams, seed: u64) -> Self {
        let nodes: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let dim = GroupedNetwork::dimension_for(n, params.group_c);
        let mut rng = simnet::rng::stream(seed, 1, 0xD0);
        let grouped = GroupedNetwork::random(&nodes, dim, &mut rng);
        // Epoch length: the group-simulated Algorithm 2 run (two overlay
        // rounds per primitive round: simulate + synchronize) plus the
        // four-step reorganization of Lemma 15. The primitive runs on the
        // hypercube of supernodes, whose dimension we round up to a power
        // of two as the paper's d = 2^k assumption.
        let sched_dim = (dim as usize).next_power_of_two() as u32;
        let schedule = Schedule::algorithm2(sched_dim, &params.sampling);
        let epoch_len = 2 * schedule.rounds() as u64 + 4;
        Self {
            grouped,
            epoch_len,
            round: 0,
            epochs_done: 0,
            failed_epochs: 0,
            epoch_ok: true,
            prev_blocked: BlockSet::none(),
            rng,
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry recorder: the overlay then emits per-round
    /// blocking/connectivity metrics, epoch events, and eviction/rejoin
    /// events. Replay identity is untouched (see the `tel` field docs).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The epoch length `t` in rounds — `Theta(log log n)`. An adversary
    /// must be at least `2t`-late for Theorem 6's argument.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Completed (successful or failed) epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs_done
    }

    /// The current group structure.
    pub fn grouped(&self) -> &GroupedNetwork {
        &self.grouped
    }

    /// Execute one round under the given block set. Reconfigures at epoch
    /// boundaries (when the epoch's availability precondition held).
    pub fn step(&mut self, blocked: &BlockSet) -> DosRoundMetrics {
        self.round += 1;
        let avail = self.grouped.available_per_group(&self.prev_blocked, blocked);
        // Empty groups (possible only after self-healing evictions; never
        // in a paper-model run) cannot starve — the min is over occupied
        // groups.
        let min_avail = avail
            .iter()
            .zip(self.grouped.groups())
            .filter(|(_, g)| !g.is_empty())
            .map(|(&a, _)| a)
            .min()
            .unwrap_or(0);
        if min_avail == 0 {
            self.epoch_ok = false;
        }
        let (min_size, max_size) = self.grouped.group_size_range();
        let metrics = DosRoundMetrics {
            round: self.round,
            blocked: blocked.len(),
            connected: self.grouped.connected_under(blocked),
            min_group_available: min_avail,
            min_group_size: min_size,
            max_group_size: max_size,
        };
        self.prev_blocked = blocked.clone();
        if self.tel.enabled() {
            self.record_round(&metrics);
        }

        if self.round % self.epoch_len == 0 {
            self.epochs_done += 1;
            let ok = self.epoch_ok;
            if ok {
                // Lemma 15: fresh uniformly random assignment.
                let nodes = self.grouped.nodes();
                let dim = self.grouped.cube().dim();
                self.grouped = GroupedNetwork::random(&nodes, dim, &mut self.rng);
            } else {
                self.failed_epochs += 1;
            }
            self.epoch_ok = true;
            self.tel.counter("overlay.epochs", &[]).inc();
            if !ok {
                self.tel.counter("overlay.failed_epochs", &[]).inc();
            }
            let epoch = self.epochs_done;
            self.tel.emit(self.round, EventKind::EpochFinished, None, u64::from(ok), || {
                format!("epoch {epoch} {}", if ok { "reconfigured" } else { "failed" })
            });
        }
        metrics
    }

    /// Record one round's observation into the attached recorder.
    fn record_round(&self, m: &DosRoundMetrics) {
        self.tel.counter("overlay.rounds", &[]).inc();
        if !m.connected {
            self.tel.counter("overlay.disconnected_rounds", &[]).inc();
        }
        if m.min_group_available == 0 {
            self.tel.counter("overlay.starved_rounds", &[]).inc();
        }
        self.tel.histogram("overlay.blocked", &[]).record(m.blocked as u64);
        self.tel.gauge("overlay.max_group_size", &[]).record_max(m.max_group_size as u64);
    }

    /// Drive the overlay against any [`Attacker`] — oblivious or adaptive —
    /// for `rounds` rounds, recording per-round metrics. The adversary
    /// observes the topology every round (its lateness buffer decides what
    /// it may act on).
    pub fn run<A: Attacker>(&mut self, adversary: &mut A, rounds: u64) -> DosRunMetrics {
        let mut out = DosRunMetrics { n: self.grouped.len(), ..Default::default() };
        for _ in 0..rounds {
            adversary.observe(self.grouped.snapshot(self.round));
            let blocked = adversary.block(self.round, self.grouped.len());
            out.absorb(self.step(&blocked));
        }
        out.epochs = self.epochs_done;
        out
    }

    /// Evict a member (self-healing graceful degradation: a node whose
    /// heartbeats stopped or whose re-requests exhausted their retries).
    /// Unknown nodes are ignored.
    pub fn evict(&mut self, v: NodeId) {
        self.grouped.remove(v);
        self.tel.emit(self.round, EventKind::Eviction, Some(v.raw()), 0, String::new);
    }

    /// Re-admit a node after crash-recovery via the join path: it is
    /// placed in a uniformly random group, exactly as the per-epoch
    /// resampling would place it. A no-op for current members (a rejoin
    /// racing a fresh crash in the same epoch must not double-insert), and
    /// the RNG is only drawn when the insert actually happens.
    pub fn rejoin(&mut self, v: NodeId) {
        use rand::RngExt;
        if self.grouped.supernode_of(v).is_some() {
            return;
        }
        let x = self.rng.random_range(0..self.grouped.cube().len());
        self.grouped.insert(v, x);
        self.tel.emit(self.round, EventKind::Rejoin, Some(v.raw()), x, String::new);
    }

    /// Admit a joiner through the join path. With `claimed` set the claim
    /// is **honored** (the unvalidated join path: the joiner lands in the
    /// group it asked for, modulo wrap-around); with `None` the joiner is
    /// placed uniformly at random, exactly like [`Self::rejoin`]. Returns
    /// the group the joiner landed in, or `None` for a current member
    /// (no-op; the RNG is only drawn when an unclaimed insert happens).
    pub fn admit(&mut self, v: NodeId, claimed: Option<u64>) -> Option<u64> {
        use rand::RngExt;
        if self.grouped.supernode_of(v).is_some() {
            return None;
        }
        let x = match claimed {
            Some(x) => x % self.grouped.cube().len(),
            None => self.rng.random_range(0..self.grouped.cube().len()),
        };
        self.grouped.insert(v, x);
        self.tel.emit(self.round, EventKind::Rejoin, Some(v.raw()), x, String::new);
        Some(x)
    }

    /// The group sizes as a map (diagnostics for Lemma 16 experiments).
    pub fn group_sizes(&self) -> HashMap<u64, usize> {
        self.grouped.groups().iter().enumerate().map(|(x, g)| (x as u64, g.len())).collect()
    }

    /// Stable fingerprint of the full overlay state: round/epoch counters
    /// and the group assignment (group index, size, sorted members).
    /// Golden tests pin the sequence of these across rounds.
    pub fn state_digest(&self) -> u64 {
        let mut d = simnet::Digest::new();
        d.write_u64(self.round)
            .write_u64(self.epochs_done)
            .write_u64(self.failed_epochs)
            .write_bool(self.epoch_ok)
            .write_u32(self.grouped.cube().dim());
        let groups = self.grouped.groups();
        d.write_usize(groups.len());
        for (x, g) in groups.iter().enumerate() {
            let mut members = g.clone();
            members.sort_unstable();
            d.write_usize(x).write_usize(members.len());
            for v in members {
                d.write_u64(v.raw());
            }
        }
        let mut prev: Vec<u64> = self.prev_blocked.iter().map(|v| v.raw()).collect();
        prev.sort_unstable();
        d.write_usize(prev.len());
        for v in prev {
            d.write_u64(v);
        }
        d.finish()
    }

    /// Theoretical epoch length for a network of `n` nodes — exposed so
    /// experiments can verify the `Theta(log log n)` shape without
    /// building the overlay.
    pub fn epoch_len_for(n: usize, params: &DosParams) -> u64 {
        let dim = GroupedNetwork::dimension_for(n, params.group_c);
        let sched_dim = (dim as usize).next_power_of_two() as u32;
        let schedule = Schedule::algorithm2(sched_dim, &params.sampling);
        2 * schedule.rounds() as u64 + 4
    }
}

/// The `(1/2 - eps)`-bounded blocking budget of Theorem 6 for `n` nodes.
pub fn blocking_budget(n: usize, epsilon: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon <= 0.5);
    ((0.5 - epsilon) * n as f64).floor() as usize
}

/// Convenience: the paper's lateness requirement `2t` for an overlay of
/// `n` nodes (`t` = epoch length).
pub fn required_lateness(n: usize, params: &DosParams) -> u64 {
    let _ = log2_ceil(n); // n sanity (panics on 0)
    2 * DosOverlay::epoch_len_for(n, params)
}

impl simnet::Checkpoint for DosOverlay {
    fn save(&self) -> serde_json::Value {
        serde_json::json!({
            "format": "dos-overlay-checkpoint",
            "grouped": self.grouped.save(),
            "epoch_len": self.epoch_len,
            "round": self.round,
            "epochs_done": self.epochs_done,
            "failed_epochs": self.failed_epochs,
            "epoch_ok": self.epoch_ok,
            "prev_blocked": self.prev_blocked.save(),
            "rng": self.rng.save(),
            "digest_stamp": self.state_digest(),
        })
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::{field, get_bool, get_str, get_u64};
        match get_str(v, "format")? {
            "dos-overlay-checkpoint" => {}
            other => {
                return Err(simnet::CkptError::Corrupt(format!(
                    "not a dos overlay checkpoint: `{other}`"
                )))
            }
        }
        let ov = Self {
            grouped: GroupedNetwork::load(field(v, "grouped")?)?,
            epoch_len: get_u64(v, "epoch_len")?,
            round: get_u64(v, "round")?,
            epochs_done: get_u64(v, "epochs_done")?,
            failed_epochs: get_u64(v, "failed_epochs")?,
            epoch_ok: get_bool(v, "epoch_ok")?,
            prev_blocked: BlockSet::load(field(v, "prev_blocked")?)?,
            rng: NodeRng::load(field(v, "rng")?)?,
            tel: Telemetry::disabled(),
        };
        let stamped = get_u64(v, "digest_stamp")?;
        let restored = ov.state_digest();
        if restored != stamped {
            return Err(simnet::CkptError::DigestMismatch { stamped, restored });
        }
        Ok(ov)
    }
}

impl crate::healing::HealableOverlay for DosOverlay {
    fn members_sorted(&self) -> Vec<NodeId> {
        let mut m = self.grouped().nodes();
        m.sort_unstable();
        m
    }
    fn len(&self) -> usize {
        self.grouped().len()
    }
    fn round(&self) -> u64 {
        self.round()
    }
    fn epoch_len(&self) -> u64 {
        self.epoch_len()
    }
    fn epochs(&self) -> u64 {
        self.epochs()
    }
    fn failed_epochs(&self) -> u64 {
        self.failed_epochs
    }
    fn snapshot(&self, round: u64) -> overlay_adversary::lateness::TopologySnapshot {
        self.grouped().snapshot(round)
    }
    fn step_overlay(&mut self, blocked: &BlockSet) -> DosRoundMetrics {
        self.step(blocked)
    }
    fn evict(&mut self, v: NodeId) {
        self.evict(v);
    }
    fn rejoin(&mut self, v: NodeId) {
        self.rejoin(v);
    }
    fn structure_violation(&self) -> Option<String> {
        // Lemma 16 upper band with generous slack: evictions shrink groups
        // but random resampling must never overfill one.
        let expected = self.grouped().len() as f64 / self.grouped().cube().len() as f64;
        let (_, max) = self.grouped().group_size_range();
        (max as f64 > 3.0 * expected.max(1.0))
            .then(|| format!("group size {max} vs expected {expected:.1}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_adversary::dos::{DosAdversary, DosStrategy};

    #[test]
    fn epoch_len_grows_like_loglog() {
        let p = DosParams::default();
        let small = DosOverlay::epoch_len_for(1 << 10, &p);
        let mid = DosOverlay::epoch_len_for(1 << 16, &p);
        let large = DosOverlay::epoch_len_for(1 << 30, &p);
        assert!(small <= mid && mid <= large);
        // A 2^20-fold increase in n adds only a handful of rounds: the
        // epoch is 2 * (2 log2(dim) + 1) + 4 with dim ~ log n.
        assert!(large - small <= 12, "epoch grew {small} -> {large}");
    }

    #[test]
    fn late_random_adversary_cannot_disconnect() {
        let p = DosParams::default();
        let mut ov = DosOverlay::new(2048, p, 1);
        let lateness = 2 * ov.epoch_len();
        let mut adv = DosAdversary::new(DosStrategy::Random, 0.3, lateness, 7);
        let run = ov.run(&mut adv, 4 * ov.epoch_len());
        assert_eq!(run.connected_rounds, run.rounds, "connectivity must hold every round");
        assert_eq!(run.starved_rounds, 0, "every group must keep an available member");
        assert!(run.epochs >= 3);
        assert_eq!(ov.failed_epochs, 0);
    }

    #[test]
    fn late_group_targeted_adversary_cannot_disconnect() {
        // The strongest structural attack, but its information is stale:
        // by the time it blocks "all neighbors of group x", membership has
        // been resampled.
        let p = DosParams::default();
        let mut ov = DosOverlay::new(2048, p, 2);
        let lateness = 2 * ov.epoch_len();
        let mut adv = DosAdversary::new(DosStrategy::GroupTargeted, 0.3, lateness, 9);
        let run = ov.run(&mut adv, 4 * ov.epoch_len());
        assert_eq!(run.connected_rounds, run.rounds);
        assert_eq!(run.starved_rounds, 0);
    }

    #[test]
    fn zero_late_group_targeted_adversary_disconnects() {
        // Impossibility control: with current topology the adversary
        // surgically isolates a group.
        let p = DosParams::default();
        let mut ov = DosOverlay::new(2048, p, 3);
        let mut adv = DosAdversary::new(DosStrategy::GroupTargeted, 0.3, 0, 11);
        let run = ov.run(&mut adv, 2 * ov.epoch_len());
        assert!(
            run.connected_rounds < run.rounds,
            "0-late adversary should disconnect at least once"
        );
    }

    #[test]
    fn group_sizes_track_lemma16_band() {
        let p = DosParams::default();
        let ov = DosOverlay::new(4096, p, 4);
        let n = 4096f64;
        let n_super = ov.grouped().cube().len() as f64;
        let expected = n / n_super;
        let (min, max) = ov.grouped().group_size_range();
        assert!((min as f64) > 0.4 * expected, "min {min} vs expected {expected}");
        assert!((max as f64) < 2.0 * expected, "max {max} vs expected {expected}");
    }

    #[test]
    fn blocking_budget_formula() {
        assert_eq!(blocking_budget(1000, 0.2), 300);
        assert_eq!(blocking_budget(1000, 0.5), 0);
    }

    #[test]
    fn reconfiguration_changes_groups() {
        let p = DosParams::default();
        let mut ov = DosOverlay::new(1024, p, 5);
        let before: Vec<Vec<NodeId>> = ov.grouped().groups().to_vec();
        for _ in 0..ov.epoch_len() {
            ov.step(&BlockSet::none());
        }
        let after = ov.grouped().groups().to_vec();
        assert_ne!(before, after, "epoch boundary must resample groups");
        assert_eq!(ov.epochs(), 1);
        assert_eq!(ov.failed_epochs, 0);
    }

    #[test]
    fn starved_epoch_is_not_reconfigured() {
        let p = DosParams::default();
        let mut ov = DosOverlay::new(256, p, 6);
        let before = ov.grouped().groups().to_vec();
        // Block group 0 entirely for the whole epoch: availability fails.
        let victims: BlockSet = ov.grouped().group(0).iter().copied().collect();
        for _ in 0..ov.epoch_len() {
            ov.step(&victims);
        }
        assert_eq!(ov.failed_epochs, 1);
        assert_eq!(ov.grouped().groups().to_vec(), before, "stale groups must persist");
    }

    #[test]
    fn telemetry_attachment_never_perturbs_state_digests() {
        use crate::healing::HealableOverlay as _;
        let p = DosParams::default();
        let mut plain = DosOverlay::new(256, p, 9);
        let mut observed = DosOverlay::new(256, p, 9);
        observed.set_telemetry(Telemetry::new(telemetry::Config::default()));
        let mut adv_a =
            DosAdversary::new(DosStrategy::GroupTargeted, 0.3, 2 * plain.epoch_len(), 11);
        let mut adv_b =
            DosAdversary::new(DosStrategy::GroupTargeted, 0.3, 2 * observed.epoch_len(), 11);
        for _ in 0..2 * plain.epoch_len() {
            adv_a.observe(plain.snapshot(plain.round()));
            adv_b.observe(observed.snapshot(observed.round()));
            let ba = adv_a.block(plain.round(), plain.len());
            let bb = adv_b.block(observed.round(), observed.len());
            plain.step(&ba);
            observed.step(&bb);
            assert_eq!(plain.state_digest(), observed.state_digest());
        }
    }

    #[test]
    fn telemetry_counters_mirror_run_metrics() {
        let p = DosParams::default();
        let mut ov = DosOverlay::new(256, p, 10);
        let tel = Telemetry::new(telemetry::Config::default());
        ov.set_telemetry(tel.clone());
        let mut adv = DosAdversary::new(DosStrategy::Random, 0.3, 2 * ov.epoch_len(), 3);
        let run = ov.run(&mut adv, 2 * ov.epoch_len());
        let snap = tel.snapshot();
        assert_eq!(snap.counter("overlay.rounds"), run.rounds);
        assert_eq!(snap.counter("overlay.starved_rounds"), run.starved_rounds);
        assert_eq!(snap.counter("overlay.epochs"), run.epochs);
        assert_eq!(snap.counter("overlay.failed_epochs"), ov.failed_epochs);
        assert_eq!(
            snap.counter("overlay.rounds") - snap.counter("overlay.disconnected_rounds"),
            run.connected_rounds
        );
        let blocked = snap.histogram("overlay.blocked").expect("blocked histogram");
        assert_eq!(blocked.count, run.rounds);
        let epoch_events =
            tel.events().0.iter().filter(|e| e.kind == telemetry::EventKind::EpochFinished).count()
                as u64;
        assert_eq!(epoch_events, run.epochs);
    }
}
