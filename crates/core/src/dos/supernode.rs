//! Supernodes and groups of representatives.

use overlay_adversary::lateness::TopologySnapshot;
use overlay_graphs::Hypercube;
use rand::{Rng, RngExt};
use simnet::{BlockSet, NodeId};
use std::collections::HashMap;

/// A population of nodes partitioned into groups, one per supernode of a
/// binary hypercube. The physical topology is: intra-group cliques plus
/// complete bipartite graphs between groups of neighboring supernodes.
#[derive(Clone, Debug)]
pub struct GroupedNetwork {
    cube: Hypercube,
    /// Members of `R(x)` for each supernode label `x` (index = label).
    groups: Vec<Vec<NodeId>>,
    /// Inverse map: the supernode of each node.
    assign: HashMap<NodeId, u64>,
}

impl GroupedNetwork {
    /// Dimension choice of Section 5: the largest `d` with
    /// `2^d <= n / (c log2 n)`, at least 1.
    pub fn dimension_for(n: usize, c: f64) -> u32 {
        assert!(n >= 4);
        let target = n as f64 / (c * (n as f64).log2());
        let mut d = 1;
        while (1u64 << (d + 1)) as f64 <= target {
            d += 1;
        }
        d
    }

    /// Assign every node to a uniformly random supernode of a hypercube of
    /// dimension `dim`.
    pub fn random<R: Rng + ?Sized>(nodes: &[NodeId], dim: u32, rng: &mut R) -> Self {
        let cube = Hypercube::new(dim);
        let n_super = cube.len();
        let mut groups = vec![Vec::new(); n_super as usize];
        let mut assign = HashMap::with_capacity(nodes.len());
        for &v in nodes {
            let x = rng.random_range(0..n_super);
            groups[x as usize].push(v);
            assign.insert(v, x);
        }
        Self { cube, groups, assign }
    }

    /// Rebuild from an explicit assignment (used by reconfiguration).
    pub fn from_assignment(cube: Hypercube, assign: HashMap<NodeId, u64>) -> Self {
        let mut groups = vec![Vec::new(); cube.len() as usize];
        // Fill groups in node-id order: iterating the map directly would
        // make member order depend on the process-random hash state.
        let mut pairs: Vec<(NodeId, u64)> = assign.iter().map(|(&v, &x)| (v, x)).collect();
        pairs.sort_unstable();
        for (v, x) in pairs {
            groups[x as usize].push(v);
        }
        Self { cube, groups, assign }
    }

    /// The hypercube of supernodes.
    pub fn cube(&self) -> &Hypercube {
        &self.cube
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True if no nodes are present.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// All physical nodes (group by group).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.groups.iter().flatten().copied().collect()
    }

    /// The group `R(x)`.
    pub fn group(&self, x: u64) -> &[NodeId] {
        &self.groups[x as usize]
    }

    /// All groups, indexed by supernode label.
    pub fn groups(&self) -> &[Vec<NodeId>] {
        &self.groups
    }

    /// The supernode a node belongs to.
    pub fn supernode_of(&self, v: NodeId) -> Option<u64> {
        self.assign.get(&v).copied()
    }

    /// Remove a node from its group (self-healing eviction). Returns false
    /// if the node was not a member.
    pub fn remove(&mut self, v: NodeId) -> bool {
        match self.assign.remove(&v) {
            Some(x) => {
                self.groups[x as usize].retain(|&u| u != v);
                true
            }
            None => false,
        }
    }

    /// Insert a node into the group of supernode `x` (rejoin after
    /// crash-recovery). The node must not already be a member.
    pub fn insert(&mut self, v: NodeId, x: u64) {
        assert!(!self.assign.contains_key(&v), "{v:?} is already a member");
        assert!(x < self.cube.len(), "supernode {x} out of range");
        self.groups[x as usize].push(v);
        self.assign.insert(v, x);
    }

    /// Smallest and largest group size (Lemma 16 quantities).
    pub fn group_size_range(&self) -> (usize, usize) {
        let min = self.groups.iter().map(Vec::len).min().unwrap_or(0);
        let max = self.groups.iter().map(Vec::len).max().unwrap_or(0);
        (min, max)
    }

    /// Per-group count of members *not* in `blocked`.
    pub fn unblocked_per_group(&self, blocked: &BlockSet) -> Vec<usize> {
        self.groups.iter().map(|g| g.iter().filter(|v| !blocked.contains(**v)).count()).collect()
    }

    /// Per-group count of members available this round: non-blocked in
    /// both the previous and the current round (the paper's availability).
    pub fn available_per_group(&self, prev: &BlockSet, cur: &BlockSet) -> Vec<usize> {
        self.groups
            .iter()
            .map(|g| g.iter().filter(|v| !prev.contains(**v) && !cur.contains(**v)).count())
            .collect()
    }

    /// Is the subgraph induced by non-blocked nodes connected?
    ///
    /// Non-blocked members of a group form a clique and any non-blocked
    /// pair across neighboring groups is adjacent (complete bipartite), so
    /// the question reduces to connectivity of the hypercube restricted to
    /// supernodes with at least one non-blocked member.
    pub fn connected_under(&self, blocked: &BlockSet) -> bool {
        let alive: Vec<bool> =
            self.groups.iter().map(|g| g.iter().any(|v| !blocked.contains(*v))).collect();
        let total_alive = alive.iter().filter(|&&a| a).count();
        if total_alive <= 1 {
            return true; // zero or one occupied supernode is trivially connected
        }
        // BFS over alive supernodes.
        let start = alive.iter().position(|&a| a).expect("total_alive >= 1");
        let mut seen = vec![false; alive.len()];
        seen[start] = true;
        let mut queue = vec![start as u64];
        let mut reached = 1;
        while let Some(x) = queue.pop() {
            for y in self.cube.neighbors(x) {
                if alive[y as usize] && !seen[y as usize] {
                    seen[y as usize] = true;
                    reached += 1;
                    queue.push(y);
                }
            }
        }
        reached == total_alive
    }

    /// Topology snapshot for the adversary: groups and group adjacency
    /// (the paper's adversary sees topology, and group membership *is*
    /// topology here — cliques and bipartite blocks).
    pub fn snapshot(&self, round: u64) -> TopologySnapshot {
        let group_edges: Vec<(u32, u32)> = self
            .cube
            .vertices()
            .flat_map(|x| {
                self.cube
                    .neighbors(x)
                    .into_iter()
                    .filter(move |&y| y > x)
                    .map(move |y| (x as u32, y as u32))
            })
            .collect();
        TopologySnapshot {
            round,
            nodes: self.nodes(),
            edges: Vec::new(), // node-level edges implied by groups
            groups: self.groups.clone(),
            group_edges,
        }
    }
}

impl simnet::Checkpoint for GroupedNetwork {
    fn save(&self) -> serde_json::Value {
        // Groups are stored verbatim, preserving within-group member order:
        // `insert` appends, so live state is not necessarily id-sorted and
        // `from_assignment` (which sorts) would not round-trip it.
        let groups: Vec<serde_json::Value> =
            self.groups.iter().map(|g| simnet::checkpoint::save_slice(g)).collect();
        serde_json::json!({ "dim": u64::from(self.cube.dim()), "groups": groups })
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::{get_array, get_u64, load_vec};
        let cube = Hypercube::new(get_u64(v, "dim")? as u32);
        let raw = get_array(v, "groups")?;
        if raw.len() != cube.len() as usize {
            return Err(simnet::CkptError::Corrupt(format!(
                "{} groups for a dimension-{} cube",
                raw.len(),
                cube.dim()
            )));
        }
        let mut groups: Vec<Vec<NodeId>> = Vec::with_capacity(raw.len());
        for g in raw {
            groups.push(load_vec(g)?);
        }
        let mut assign = HashMap::new();
        for (x, g) in groups.iter().enumerate() {
            for &v in g {
                if assign.insert(v, x as u64).is_some() {
                    return Err(simnet::CkptError::Corrupt(format!("{v} in two groups")));
                }
            }
        }
        Ok(Self { cube, groups, assign })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn dimension_matches_paper_formula() {
        // n = 4096, c = 2: n / (c log n) = 4096 / 24 ≈ 170 -> d = 7.
        assert_eq!(GroupedNetwork::dimension_for(4096, 2.0), 7);
        // Tiny n never yields d < 1.
        assert!(GroupedNetwork::dimension_for(8, 4.0) >= 1);
    }

    #[test]
    fn every_node_is_in_exactly_one_group() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = GroupedNetwork::random(&nodes(500), 4, &mut rng);
        assert_eq!(g.len(), 500);
        let total: usize = g.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 500);
        for v in nodes(500) {
            let x = g.supernode_of(v).unwrap();
            assert!(g.group(x).contains(&v));
        }
    }

    #[test]
    fn group_sizes_concentrate() {
        // Lemma 16 shape: with n/N = 64 expected, sizes stay within a
        // generous constant factor.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = GroupedNetwork::random(&nodes(1024), 4, &mut rng);
        let (min, max) = g.group_size_range();
        assert!(min >= 32, "min {min}");
        assert!(max <= 110, "max {max}");
    }

    #[test]
    fn unblocked_graph_stays_connected_under_scattered_blocking() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = GroupedNetwork::random(&nodes(512), 4, &mut rng);
        // Block every third node: every group keeps survivors.
        let blocked: BlockSet = (0..512).filter(|i| i % 3 == 0).map(NodeId).collect();
        assert!(g.connected_under(&blocked));
    }

    #[test]
    fn killing_a_neighborhood_disconnects() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = GroupedNetwork::random(&nodes(256), 3, &mut rng);
        // Block ALL members of every neighbor group of supernode 0.
        let mut blocked = BlockSet::none();
        for y in g.cube().neighbors(0) {
            for &v in g.group(y) {
                blocked.insert(v);
            }
        }
        // Supernode 0 still has unblocked members but no unblocked
        // neighbor groups.
        assert!(!g.group(0).is_empty());
        assert!(!g.connected_under(&blocked), "victim group should be isolated");
    }

    #[test]
    fn availability_needs_two_clean_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = GroupedNetwork::random(&nodes(64), 2, &mut rng);
        let some_node = g.group(0)[0];
        let prev = BlockSet::from_iter([some_node]);
        let cur = BlockSet::none();
        let avail = g.available_per_group(&prev, &cur);
        let unblocked = g.unblocked_per_group(&cur);
        // The node blocked last round is unblocked now but NOT available.
        assert_eq!(avail[0], unblocked[0] - 1);
    }

    #[test]
    fn snapshot_carries_groups_and_cube_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = GroupedNetwork::random(&nodes(128), 3, &mut rng);
        let snap = g.snapshot(42);
        assert_eq!(snap.round, 42);
        assert_eq!(snap.groups.len(), 8);
        // 3-cube has 12 edges.
        assert_eq!(snap.group_edges.len(), 12);
        assert_eq!(snap.nodes.len(), 128);
    }
}
