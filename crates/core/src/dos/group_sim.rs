//! Message-level simulation of supernodes by their groups (Section 5,
//! Lemma 14).
//!
//! The paper has each group `R(x)` jointly *simulate* its supernode `x`:
//! every step of the supernode protocol costs two physical rounds —
//!
//! * **Simulation round** — every available node `v` of `R(x)` locally
//!   executes the supernode's round on its copy of the state `S(x)`
//!   (randomness may differ between members!) and broadcasts its candidate
//!   result `m_v` (new state + outgoing supernode messages) to all of
//!   `R(x)`.
//! * **Synchronization round** — every available node adopts the candidate
//!   of the *lowest-id* voter, and for each supernode message `m`
//!   addressed to supernode `y`, sends `m` to **all** nodes of `R(y)`
//!   (receivers deduplicate by `(source supernode, step)`).
//!
//! Lemma 14: as long as every group has at least one *available* member
//!   (non-blocked in two consecutive rounds) in every round, the groups
//!   correctly simulate the supernode protocol. This module implements the
//!   machinery generically over a [`SuperProtocol`] and the tests verify
//!   both directions: correct progress under heavy-but-survivable
//!   blocking, and stall when a group is starved.

use rand::RngExt;
use simnet::rng::NodeRng;
use simnet::{Ctx, Network, NodeId, Payload, Protocol};
use std::collections::{HashMap, HashSet};

/// A protocol executed by *supernodes* (to be simulated by their groups).
///
/// One call to [`SuperProtocol::on_step`] is one supernode round: consume
/// the messages delivered this step, mutate the state, emit messages to
/// other supernodes (delivered next step).
pub trait SuperProtocol: Clone + Send + Sync + 'static {
    /// Message exchanged between supernodes.
    type SMsg: Clone + Send + Sync + 'static;

    /// Execute one supernode round. `me` is the executing supernode's
    /// label; `inbox` carries `(source supernode, message)` pairs.
    fn on_step(
        &mut self,
        me: u64,
        inbox: &[(u64, Self::SMsg)],
        rng: &mut NodeRng,
    ) -> Vec<(u64, Self::SMsg)>;
}

/// Accounting size of a candidate/state broadcast in bits (states are
/// protocol-specific; we charge a flat polylog-size constant, which is the
/// paper's assumption for `S(x)`).
const STATE_BITS: u64 = 1024;

/// Messages of the group-simulation protocol.
#[derive(Clone)]
pub enum GroupMsg<P: SuperProtocol> {
    /// Simulation-round broadcast: a member's candidate execution result.
    Candidate {
        /// The executing step index.
        step: u32,
        /// Resulting supernode state from this voter's randomness.
        state: P,
        /// Supernode messages the state wants to emit.
        out: Vec<(u64, P::SMsg)>,
    },
    /// A supernode-level message relayed group-to-group.
    Super {
        /// Step in which the message was emitted.
        step: u32,
        /// Source supernode.
        from_super: u64,
        /// Index within the source's outgoing batch of that step
        /// (distinguishes multiple messages between the same pair; the
        /// relay fan-out otherwise makes duplicates indistinguishable).
        idx: u32,
        /// Payload.
        msg: P::SMsg,
    },
}

impl<P: SuperProtocol> Payload for GroupMsg<P> {
    fn size_bits(&self) -> u64 {
        match self {
            GroupMsg::Candidate { out, .. } => STATE_BITS + 64 * out.len() as u64,
            GroupMsg::Super { .. } => 64 + 64,
        }
    }
}

/// A candidate execution result: `(step, voter, state, outgoing)`.
type Vote<P> = (u32, NodeId, P, Vec<(u64, <P as SuperProtocol>::SMsg)>);

/// Physical-node state: one member of one group.
pub struct GroupSimNode<P: SuperProtocol> {
    /// The supernode this node represents.
    supernode: u64,
    /// All members of the own group (broadcast targets).
    own_group: Vec<NodeId>,
    /// Members of every group, keyed by supernode label. In the paper
    /// these references travel inside the supernode state (`S(x)` holds
    /// references to `R(y)` for every supernode `y` stored in `x`); since
    /// the group composition is fixed for the duration of one simulated
    /// run, a shared directory is behaviorally equivalent and avoids
    /// threading reference lists through every message type.
    directory: std::sync::Arc<HashMap<u64, Vec<NodeId>>>,
    /// The adopted supernode state.
    pub state: P,
    /// Next supernode step to execute.
    pub step: u32,
    /// Supernode inbox for the next step, deduplicated by
    /// (source, step, index).
    pending: Vec<(u64, P::SMsg)>,
    seen: HashSet<(u64, u32, u32)>,
    /// Candidates received this synchronization round. Steps may differ
    /// when members return from blocking with stale state.
    votes: Vec<Vote<P>>,
}

impl<P: SuperProtocol> GroupSimNode<P> {
    /// Create a member of `supernode`'s group.
    pub fn new(
        supernode: u64,
        own_group: Vec<NodeId>,
        directory: std::sync::Arc<HashMap<u64, Vec<NodeId>>>,
        initial: P,
    ) -> Self {
        Self {
            supernode,
            own_group,
            directory,
            state: initial,
            step: 0,
            pending: Vec::new(),
            seen: HashSet::new(),
            votes: Vec::new(),
        }
    }
}

impl<P: SuperProtocol> Protocol for GroupSimNode<P> {
    type Msg = GroupMsg<P>;

    fn on_round(&mut self, ctx: &mut Ctx<'_, GroupMsg<P>>) {
        // Collect everything first.
        for env in ctx.take_inbox() {
            match env.msg {
                GroupMsg::Candidate { step, state, out } => {
                    self.votes.push((step, env.from, state, out));
                }
                GroupMsg::Super { step, from_super, idx, msg } => {
                    if self.seen.insert((from_super, step, idx)) {
                        self.pending.push((from_super, msg));
                    }
                }
            }
        }

        if ctx.round() % 2 == 0 {
            // Simulation round: execute the supernode step on the adopted
            // state with *this member's* randomness and broadcast the
            // candidate.
            let mut candidate = self.state.clone();
            let inbox: Vec<(u64, P::SMsg)> = std::mem::take(&mut self.pending);
            let me_super = self.supernode;
            let out = candidate.on_step(me_super, &inbox, ctx.rng());
            // Members that were blocked may have stale `pending`; the
            // lowest-id available voter's view wins at synchronization, so
            // divergent inboxes resolve exactly as in the paper.
            let msg = GroupMsg::Candidate { step: self.step, state: candidate, out };
            for &w in &self.own_group.clone() {
                ctx.send(w, msg.clone());
            }
        } else {
            // Synchronization round: among the candidates of the most
            // advanced step, adopt the lowest-id voter's result and relay
            // its supernode messages. Members returning from blocking may
            // still vote with stale steps; taking the max step first makes
            // them *fast-forward* instead of dragging the group back
            // (this is what the paper's every-round S(x) broadcast buys).
            self.votes.sort_by_key(|(step, voter, _, _)| (std::cmp::Reverse(*step), *voter));
            if let Some((step, _, state, out)) = self.votes.first().cloned() {
                // Never regress: only adopt execution results at or ahead
                // of our current step.
                if step + 1 > self.step {
                    self.state = state;
                    let from_super = self.supernode;
                    for (idx, (dest_super, m)) in out.into_iter().enumerate() {
                        if let Some(group) = self.directory.get(&dest_super).cloned() {
                            for w in group {
                                ctx.send(
                                    w,
                                    GroupMsg::Super {
                                        step,
                                        from_super,
                                        idx: idx as u32,
                                        msg: m.clone(),
                                    },
                                );
                            }
                        }
                    }
                    self.step = step + 1;
                }
            }
            // A starved group (no candidates) simply does not advance —
            // exactly the Lemma 14 failure mode.
            self.votes.clear();
        }
    }
}

/// Build a group-simulation network: groups of `members_per_group`
/// physical nodes represent the supernodes `0..n_super`; `initial(x)` is
/// the per-supernode start state. Returns the network plus the group
/// table.
pub fn build_group_sim<P, FI>(
    n_super: u64,
    members_per_group: usize,
    initial: FI,
    seed: u64,
) -> (Network<GroupSimNode<P>>, Vec<Vec<NodeId>>)
where
    P: SuperProtocol,
    FI: Fn(u64) -> P,
{
    assert!(members_per_group >= 1);
    let groups: Vec<Vec<NodeId>> = (0..n_super)
        .map(|x| {
            (0..members_per_group as u64)
                .map(|i| NodeId(x * members_per_group as u64 + i))
                .collect()
        })
        .collect();
    let directory: std::sync::Arc<HashMap<u64, Vec<NodeId>>> = std::sync::Arc::new(
        groups.iter().enumerate().map(|(x, g)| (x as u64, g.clone())).collect(),
    );
    let mut net = Network::new(seed);
    for x in 0..n_super {
        for &v in &groups[x as usize] {
            net.add_node(
                v,
                GroupSimNode::new(
                    x,
                    groups[x as usize].clone(),
                    std::sync::Arc::clone(&directory),
                    initial(x),
                ),
            );
        }
    }
    (net, groups)
}

/// The supernode protocol the Section 5 network actually needs: the token
/// random walk sampler of Section 2.3 on the hypercube of supernodes. Each
/// supernode launches one token; in step `i` the holder flips a coin and
/// either keeps it or forwards it along coordinate `i`; after `dim` steps
/// the holder reports the endpoint back to the origin, which stores it in
/// `samples`.
#[derive(Clone)]
pub struct TokenWalkSampler {
    /// Hypercube dimension.
    pub dim: u32,
    /// Whether the own token has been launched (first step only).
    pub launched: bool,
    /// Uniform samples collected by this supernode (walk endpoints
    /// reported back).
    pub samples: Vec<u64>,
}

/// Messages of [`TokenWalkSampler`].
#[derive(Clone)]
pub enum TokenMsg {
    /// A walking token: origin and the number of coordinates already
    /// decided.
    Token { origin: u64, level: u32 },
    /// Walk finished at `endpoint`.
    Done { endpoint: u64 },
}

impl SuperProtocol for TokenWalkSampler {
    type SMsg = TokenMsg;

    fn on_step(
        &mut self,
        me: u64,
        inbox: &[(u64, TokenMsg)],
        rng: &mut NodeRng,
    ) -> Vec<(u64, TokenMsg)> {
        let mut out = Vec::new();
        let mut tokens: Vec<(u64, u32)> = Vec::new();
        for (_, msg) in inbox {
            match msg {
                TokenMsg::Token { origin, level } => tokens.push((*origin, *level)),
                TokenMsg::Done { endpoint } => self.samples.push(*endpoint),
            }
        }
        // First step only: launch the own token (level 0 = no coordinate
        // decided yet).
        if !self.launched {
            self.launched = true;
            tokens.push((me, 0));
        }
        for (origin, level) in tokens {
            if level >= self.dim {
                if origin == me {
                    self.samples.push(me);
                } else {
                    out.push((origin, TokenMsg::Done { endpoint: me }));
                }
                continue;
            }
            let next_level = level + 1;
            let target = if rng.random::<bool>() { me ^ (1u64 << level) } else { me };
            if target == me {
                // Keep the token: re-inject it locally next step by
                // sending to ourselves.
                out.push((me, TokenMsg::Token { origin, level: next_level }));
            } else {
                out.push((target, TokenMsg::Token { origin, level: next_level }));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graphs::Hypercube;
    use simnet::BlockSet;

    fn build(
        dim: u32,
        members: usize,
        seed: u64,
    ) -> (Network<GroupSimNode<TokenWalkSampler>>, Vec<Vec<NodeId>>) {
        let h = Hypercube::new(dim);
        build_group_sim(
            h.len(),
            members,
            move |_| TokenWalkSampler { dim, launched: false, samples: Vec::new() },
            seed,
        )
    }

    /// Steps needed for all walks to finish and report: dim hops + 1
    /// report step, times 2 physical rounds per step, plus slack.
    fn rounds_for(dim: u32) -> u64 {
        2 * (dim as u64 + 3)
    }

    #[test]
    fn unblocked_simulation_completes_every_walk() {
        let dim = 3;
        let (mut net, groups) = build(dim, 4, 1);
        net.run(rounds_for(dim));
        for (x, group) in groups.iter().enumerate() {
            let node = net.node(group[0]).expect("present");
            assert_eq!(node.state.samples.len(), 1, "supernode {x} must have exactly one sample");
            assert!(node.state.samples[0] < 1 << dim);
        }
    }

    #[test]
    fn all_members_agree_on_the_state() {
        // The lowest-id adoption rule keeps every member's copy of S(x)
        // identical at the end of each synchronization round.
        let dim = 3;
        let (mut net, groups) = build(dim, 5, 2);
        net.run(rounds_for(dim));
        for group in &groups {
            let reference = &net.node(group[0]).unwrap().state.samples;
            for &v in &group[1..] {
                assert_eq!(&net.node(v).unwrap().state.samples, reference);
            }
        }
    }

    #[test]
    fn survives_blocking_that_leaves_one_member_available() {
        // Block all but one member of every group, alternating which
        // members, for the whole run: Lemma 14's precondition (>= 1
        // available per round) still holds, so the simulation completes.
        let dim = 3;
        let members = 4;
        let (mut net, groups) = build(dim, members, 3);
        let rounds = rounds_for(dim) + 8;
        for r in 0..rounds {
            // Keep two overlapping members alive per group, rotating every
            // 4 rounds. The overlap guarantees the model's progress
            // condition: some node available in round i can reach a node
            // available in round i+1 (a single rotating keeper would
            // violate it at every switch).
            let keep_a = ((r / 4) as usize) % members;
            let keep_b = (keep_a + 1) % members;
            let blocked: BlockSet = groups
                .iter()
                .flat_map(|g| {
                    g.iter()
                        .enumerate()
                        .filter(move |(i, _)| *i != keep_a && *i != keep_b)
                        .map(|(_, v)| *v)
                })
                .collect();
            net.step_blocked(&blocked);
        }
        let mut done = 0;
        for group in &groups {
            // Some member (the survivors) must have completed the walk.
            let finished = group.iter().any(|&v| !net.node(v).unwrap().state.samples.is_empty());
            if finished {
                done += 1;
            }
        }
        assert_eq!(done, groups.len(), "every supernode's walk completes under blocking");
    }

    #[test]
    fn starving_a_group_stalls_its_supernode() {
        // Block group 0 entirely: its supernode never advances — the
        // Lemma 14 precondition is necessary, not just sufficient.
        let dim = 3;
        let (mut net, groups) = build(dim, 3, 4);
        let blocked: BlockSet = groups[0].iter().copied().collect();
        for _ in 0..rounds_for(dim) + 10 {
            net.step_blocked(&blocked);
        }
        let stalled = net.node(groups[0][0]).unwrap();
        assert_eq!(stalled.step, 0, "a fully blocked group cannot simulate");
        assert!(stalled.state.samples.is_empty());
    }

    #[test]
    fn samples_are_roughly_uniform_across_runs() {
        // Pool the walk endpoints of supernode 0 over many seeds.
        let dim = 3;
        let mut counts = vec![0u64; 8];
        for seed in 0..400 {
            let (mut net, groups) = build(dim, 3, 100 + seed);
            net.run(rounds_for(dim));
            let s = &net.node(groups[0][0]).unwrap().state.samples;
            assert_eq!(s.len(), 1);
            counts[s[0] as usize] += 1;
        }
        let (_, p) = overlay_stats::uniform_fit(&counts);
        assert!(p > 1e-4, "token-walk endpoints rejected uniformity: p = {p}");
    }
}
