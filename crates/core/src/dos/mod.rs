//! The DoS-resistant overlay (Section 5, Theorem 6).
//!
//! Nodes are organized into *groups of representatives* `R(x)`, one per
//! supernode `x` of a `d`-dimensional hypercube with
//! `2^d <= n / (c log n)`. Nodes within a group form a clique; nodes of
//! neighboring groups form a complete bipartite graph. Every
//! `Theta(log log n)` rounds the groups are rebuilt from scratch with a
//! fresh uniformly random node-to-supernode assignment, obtained by the
//! groups jointly simulating the rapid node sampling primitive for their
//! supernodes (Lemma 14) and then reorganizing (Lemma 15).
//!
//! An `Omega(log log n)`-late adversary never knows the *current* group
//! composition, so blocking any `(1/2 - eps)`-fraction of the nodes leaves
//! every group with a majority of non-blocked members w.h.p. (Lemma 17) —
//! and therefore the non-blocked subgraph connected (Theorem 6). A 0-late
//! adversary, by contrast, can read the current groups and block all
//! neighbors of one group, isolating it — the control experiment E11
//! demonstrates exactly that.
//!
//! ## Fidelity
//!
//! The group-internal *simulation* of the sampling primitive is modeled at
//! group level: the overlay tracks, for every group and every round,
//! whether at least one member was available (non-blocked in two
//! consecutive rounds). That is precisely the precondition of Lemma 14; if
//! it holds for a whole epoch the reconfiguration is performed (with the
//! fresh random assignment Lemma 15 guarantees), and if it is violated the
//! epoch *fails*: groups stay stale and the failure is reported. The
//! message-level mechanics of request/response doubling are exercised by
//! [`crate::sampling::hypercube`]; this module reuses its schedule to set
//! the epoch length (each primitive round costs two overlay rounds:
//! simulation + synchronization).

pub mod group_sim;
pub mod overlay;
pub mod supernode;

pub use group_sim::{build_group_sim, GroupSimNode, SuperProtocol, TokenWalkSampler};
pub use overlay::{DosOverlay, DosParams};
pub use supernode::GroupedNetwork;
