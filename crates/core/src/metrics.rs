//! Serializable metrics emitted by the overlays and consumed by the
//! experiment harness.

use serde::{Deserialize, Serialize};

/// Outcome of one run of a sampling primitive.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SamplingMetrics {
    /// Network size.
    pub n: usize,
    /// Communication rounds used.
    pub rounds: u64,
    /// Doubling iterations `T`.
    pub iterations: usize,
    /// Samples delivered per node (the final `|M|`, minimum over nodes).
    pub samples_per_node: usize,
    /// Pop-from-empty-multiset events (0 = the algorithm "succeeded" in
    /// the sense of Lemma 7).
    pub failures: u64,
    /// Maximum per-node communication work in any round (bits).
    pub max_node_bits: u64,
    /// Maximum per-node message events in any round.
    pub max_node_msgs: u64,
    /// Total messages moved.
    pub total_msgs: u64,
}

/// Outcome of one reconfiguration epoch (Algorithm 3 across all cycles).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReconfigMetrics {
    /// Network size after the epoch.
    pub n: usize,
    /// Rounds the epoch took (sampling + permutation + bridging + wiring).
    pub rounds: u64,
    /// Maximum number of times any node was chosen in Phase 1 (Lemma 11).
    pub max_congestion: usize,
    /// Largest empty segment on the old cycle (Lemma 12).
    pub max_empty_segment: usize,
    /// Nodes that joined this epoch.
    pub joined: usize,
    /// Nodes that left this epoch.
    pub left: usize,
    /// Whether the new topology is a valid H-graph over the surviving set.
    pub valid: bool,
}

/// Per-round observation of the DoS overlay.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DosRoundMetrics {
    /// Round index.
    pub round: u64,
    /// Nodes blocked this round.
    pub blocked: usize,
    /// Whether the non-blocked subgraph is connected.
    pub connected: bool,
    /// Minimum over groups of available (non-blocked two rounds running)
    /// members — Lemma 17 demands this stays >= 1.
    pub min_group_available: usize,
    /// Smallest group size (Lemma 16 lower band).
    pub min_group_size: usize,
    /// Largest group size (Lemma 16 upper band).
    pub max_group_size: usize,
}

/// Outcome of a whole DoS-overlay run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DosRunMetrics {
    /// Network size.
    pub n: usize,
    /// Rounds simulated.
    pub rounds: u64,
    /// Rounds in which the non-blocked subgraph was connected.
    pub connected_rounds: u64,
    /// Rounds in which some group had zero available members (Lemma 17
    /// violations; must be 0 for the paper's parameter regime).
    pub starved_rounds: u64,
    /// Reconfiguration epochs completed.
    pub epochs: u64,
    /// Per-round details (may be sampled rather than exhaustive).
    pub per_round: Vec<DosRoundMetrics>,
}

impl SamplingMetrics {
    /// Derive the communication-work fields from an engine telemetry
    /// snapshot (the `net.max_node_bits` / `net.max_node_msgs` gauges and
    /// `net.total_msgs` counter recorded by
    /// [`simnet::Network::set_telemetry`]); the protocol-level fields come
    /// from the runner. This is the single source of work numbers for all
    /// sampling runners — they no longer hand-thread `CommStats` fields.
    pub fn from_snapshot(
        snap: &telemetry::Snapshot,
        n: usize,
        rounds: u64,
        iterations: usize,
        samples_per_node: usize,
        failures: u64,
    ) -> Self {
        Self {
            n,
            rounds,
            iterations,
            samples_per_node,
            failures,
            max_node_bits: snap.gauge("net.max_node_bits"),
            max_node_msgs: snap.gauge("net.max_node_msgs"),
            total_msgs: snap.counter("net.total_msgs"),
        }
    }

    /// The JSON tree the experiment harness records for this run.
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "n": self.n,
            "rounds": self.rounds,
            "iterations": self.iterations,
            "samples_per_node": self.samples_per_node,
            "failures": self.failures,
            "max_node_bits": self.max_node_bits,
            "max_node_msgs": self.max_node_msgs,
            "total_msgs": self.total_msgs,
        })
    }

    /// Rebuild metrics from their JSON tree (`None` on shape mismatch).
    pub fn from_value(v: &serde_json::Value) -> Option<Self> {
        Some(Self {
            n: v.get("n")?.as_u64()? as usize,
            rounds: v.get("rounds")?.as_u64()?,
            iterations: v.get("iterations")?.as_u64()? as usize,
            samples_per_node: v.get("samples_per_node")?.as_u64()? as usize,
            failures: v.get("failures")?.as_u64()?,
            max_node_bits: v.get("max_node_bits")?.as_u64()?,
            max_node_msgs: v.get("max_node_msgs")?.as_u64()?,
            total_msgs: v.get("total_msgs")?.as_u64()?,
        })
    }
}

impl DosRunMetrics {
    /// Fold one observed round into the run totals and the per-round log.
    /// This is the single accumulation path shared by the DoS and
    /// churn-DoS overlay run loops.
    pub fn absorb(&mut self, round: DosRoundMetrics) {
        self.rounds += 1;
        if round.connected {
            self.connected_rounds += 1;
        }
        if round.min_group_available == 0 {
            self.starved_rounds += 1;
        }
        self.per_round.push(round);
    }

    /// Fraction of simulated rounds that stayed connected.
    pub fn connectivity_rate(&self) -> f64 {
        if self.rounds == 0 {
            1.0
        } else {
            self.connected_rounds as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connectivity_rate_handles_zero_rounds() {
        let m = DosRunMetrics::default();
        assert_eq!(m.connectivity_rate(), 1.0);
    }

    #[test]
    fn connectivity_rate_is_a_fraction() {
        let m = DosRunMetrics { rounds: 10, connected_rounds: 7, ..Default::default() };
        assert!((m.connectivity_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn metrics_serialize_roundtrip() {
        let m = SamplingMetrics { n: 128, rounds: 9, ..Default::default() };
        let s = serde_json::to_string(&m.to_value()).unwrap();
        let back = SamplingMetrics::from_value(&serde_json::from_str(&s).unwrap()).unwrap();
        assert_eq!(back.n, 128);
        assert_eq!(back.rounds, 9);
    }
}
