//! Network reconfiguration (Section 4, Algorithm 3).
//!
//! Every `O(log log n)` rounds the overlay replaces each of its `d/2`
//! Hamilton cycles by a *fresh, uniformly random* one:
//!
//! 1. **Placement** — every staying node samples a uniformly random node
//!    `u` (via rapid node sampling, Section 3) and sends its own id to `u`;
//!    ids of newly introduced nodes are delegated the same way, and leaving
//!    nodes simply withhold their own id. A node that receives at least one
//!    id is *active*.
//! 2. **Permutation** — each active node uniformly permutes the ids it
//!    received into a block `(u_1, ..., u_m)`.
//! 3. **Bridging** — active nodes locate their closest active successor on
//!    the *old* cycle by pointer doubling (empty segments are
//!    polylogarithmic w.h.p., Lemma 12, so this takes `O(log log n)`
//!    rounds) and exchange block endpoints.
//! 4. **Wiring** — each active node tells every id in its block its two
//!    neighbors in the new cycle.
//!
//! The new cycle is the concatenation of the blocks in old-cycle order of
//! the active nodes; because placements are uniform and blocks uniformly
//! permuted, the resulting oriented Hamilton cycle is uniform (Lemma 10).
//!
//! [`epoch`] implements one reconfiguration epoch as a message-level
//! [`simnet`] protocol (all `d/2` cycles in parallel, messages tagged by
//! cycle); [`overlay`] wraps it into [`overlay::ExpanderOverlay`], the
//! churn-resistant network of Theorem 5.

pub mod epoch;
pub mod overlay;

pub use epoch::{run_epoch, BridgeMode, EpochInput, EpochOutput};
pub use overlay::ExpanderOverlay;
