//! One reconfiguration epoch (Algorithm 3) as a message-level protocol.
//!
//! All `d/2` Hamilton cycles are rebuilt simultaneously; messages carry a
//! cycle tag. Phase 1's uniform targets come from an actual run of the
//! rapid node sampling primitive on the old graph ([`crate::sampling`]);
//! additional parallel sampling instances are started if an epoch needs
//! more targets than one instance yields (parallel instances cost no extra
//! rounds, only work — exactly the paper's "polylogarithmically many
//! instances ... executed in parallel").

use crate::backend::AnyNet;
use crate::config::{SamplingParams, Schedule};
use crate::metrics::ReconfigMetrics;
use crate::sampling::run_alg1_direct;
use overlay_graphs::{HGraph, HamiltonCycle};
use rand::seq::SliceRandom;
use simnet::{Ctx, NodeId, Payload, Protocol, SimEngine};
use std::collections::{HashMap, HashSet};

/// How Phase 3 bridges empty segments (A1 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BridgeMode {
    /// Pointer doubling: `O(log segment)` iterations (the paper's choice).
    PointerDoubling,
    /// One hop per iteration: `O(segment)` iterations (ablation baseline).
    NaiveWalk,
}

impl simnet::Checkpoint for BridgeMode {
    fn save(&self) -> serde_json::Value {
        match self {
            BridgeMode::PointerDoubling => "pointer-doubling".into(),
            BridgeMode::NaiveWalk => "naive-walk".into(),
        }
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        match v.as_str() {
            Some("pointer-doubling") => Ok(BridgeMode::PointerDoubling),
            Some("naive-walk") => Ok(BridgeMode::NaiveWalk),
            _ => Err(simnet::CkptError::Corrupt("unknown bridge mode".into())),
        }
    }
}

/// Input to one epoch.
#[derive(Clone, Debug)]
pub struct EpochInput<'a> {
    /// The old topology (its node set are the current members).
    pub graph: &'a HGraph,
    /// Current members prescribed to leave during this epoch.
    pub leaving: Vec<NodeId>,
    /// New nodes and the current member each was introduced to.
    pub joins: Vec<(NodeId, NodeId)>,
    /// Bridging mode for Phase 3.
    pub bridge: BridgeMode,
    /// Sampling parameters for Phase 1.
    pub params: SamplingParams,
    /// Epoch seed.
    pub seed: u64,
}

/// Output of one epoch.
#[derive(Clone, Debug)]
pub struct EpochOutput {
    /// The fresh Hamilton cycles over the surviving node set.
    pub cycles: Vec<HamiltonCycle>,
    /// The surviving node set (stayers plus joiners).
    pub members: Vec<NodeId>,
    /// Epoch metrics.
    pub metrics: ReconfigMetrics,
    /// Rounds attributable to Phase 1 sampling.
    pub sampling_rounds: u64,
    /// Rounds attributable to Phase 3 bridging (pointer doubling).
    pub bridge_rounds: u64,
}

/// Messages of the reconfiguration protocol. `cycle` tags the Hamilton
/// cycle instance.
#[derive(Clone, Debug)]
pub enum ReMsg {
    /// Phase 1: place `id` at the receiver (the receiver becomes active).
    Candidate { cycle: u8, id: NodeId },
    /// Phase 3: "is your pointer target active, and where does your
    /// pointer point now?"
    JumpQuery { cycle: u8 },
    /// Phase 3 reply: the responder's activity and current pointer.
    JumpReply { cycle: u8, active: bool, ptr: NodeId },
    /// Phase 3: an active node forwards its block's last element to its
    /// closest active successor.
    EndFwd { cycle: u8, last: NodeId },
    /// Phase 3 reply: the successor returns its block's first element.
    BackFwd { cycle: u8, first: NodeId },
    /// Phase 4: the new cycle neighbors of the receiver.
    Wire { cycle: u8, pred: NodeId, succ: NodeId },
}

impl Payload for ReMsg {
    fn size_bits(&self) -> u64 {
        let id = NodeId::SIZE_BITS;
        8 + match self {
            ReMsg::Candidate { .. } => 8 + id,
            ReMsg::JumpQuery { .. } => 8,
            ReMsg::JumpReply { .. } => 8 + 1 + id,
            ReMsg::EndFwd { .. } | ReMsg::BackFwd { .. } => 8 + id,
            ReMsg::Wire { .. } => 8 + 2 * id,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct PerCycle {
    /// Successor on the old cycle (old members only).
    old_succ: Option<NodeId>,
    /// Current bridge pointer (old members only).
    ptr: Option<NodeId>,
    /// Whether `ptr` is known to point at an active node.
    converged: bool,
    /// Whether this node is active (received >= 1 candidate).
    active: bool,
    /// Candidates received, in permuted order.
    block: Vec<NodeId>,
    /// Predecessor block's last element (the paper's `u_0`).
    u0: Option<NodeId>,
    /// Successor block's first element (the paper's `u_{m+1}`).
    um1: Option<NodeId>,
    /// Wire messages sent.
    wired: bool,
    /// As a candidate: assigned neighbors in the new cycle.
    new_pred: Option<NodeId>,
    new_succ: Option<NodeId>,
}

/// Node state of the reconfiguration protocol.
pub struct ReconfigNode {
    /// Per-cycle Phase 1 placements this node must perform:
    /// `(candidate id, sampled target)`.
    placements: Vec<Vec<(NodeId, NodeId)>>,
    cycles: Vec<PerCycle>,
    bridge: BridgeMode,
    old_member: bool,
}

impl ReconfigNode {
    fn wire_if_ready(&mut self, ctx: &mut Ctx<'_, ReMsg>, c: usize) {
        let pc = &mut self.cycles[c];
        if !pc.active || pc.wired || pc.u0.is_none() || pc.um1.is_none() {
            return;
        }
        pc.wired = true;
        let m = pc.block.len();
        let block = pc.block.clone();
        let u0 = pc.u0.unwrap();
        let um1 = pc.um1.unwrap();
        for i in 0..m {
            let pred = if i == 0 { u0 } else { block[i - 1] };
            let succ = if i + 1 == m { um1 } else { block[i + 1] };
            ctx.send(block[i], ReMsg::Wire { cycle: c as u8, pred, succ });
        }
    }
}

impl Protocol for ReconfigNode {
    type Msg = ReMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, ReMsg>) {
        let round = ctx.round();
        if round == 0 {
            // Phase 1: place candidates at their sampled targets.
            for (c, list) in self.placements.iter().enumerate() {
                for &(cand, target) in list {
                    ctx.send(target, ReMsg::Candidate { cycle: c as u8, id: cand });
                }
            }
            return;
        }

        let inbox = ctx.take_inbox();
        // Candidates first: activity must be final before answering queries.
        for env in &inbox {
            if let ReMsg::Candidate { cycle, id } = env.msg {
                self.cycles[cycle as usize].block.push(id);
            }
        }
        if round == 1 {
            // Phase 2: permute blocks; start bridging on every old member
            // (inactive nodes must also jump so pointers double through
            // them).
            for c in 0..self.cycles.len() {
                let active = !self.cycles[c].block.is_empty();
                self.cycles[c].active = active;
                if active {
                    let mut block = std::mem::take(&mut self.cycles[c].block);
                    block.shuffle(ctx.rng());
                    self.cycles[c].block = block;
                }
                if self.old_member {
                    let ptr = self.cycles[c].ptr.expect("old member has a pointer");
                    ctx.send(ptr, ReMsg::JumpQuery { cycle: c as u8 });
                }
            }
        }

        for env in inbox {
            match env.msg {
                ReMsg::Candidate { .. } => {} // handled above
                ReMsg::JumpQuery { cycle } => {
                    let c = cycle as usize;
                    let pc = &self.cycles[c];
                    // Naive mode advances one old-cycle hop per iteration;
                    // doubling hands out the responder's own (jumping)
                    // pointer.
                    let ptr = match self.bridge {
                        BridgeMode::PointerDoubling => pc.ptr,
                        BridgeMode::NaiveWalk => pc.old_succ,
                    }
                    .expect("queried node is an old member");
                    let reply = ReMsg::JumpReply { cycle, active: pc.active, ptr };
                    ctx.send(env.from, reply);
                }
                ReMsg::JumpReply { cycle, active, ptr } => {
                    let c = cycle as usize;
                    if active {
                        // Converged: current ptr target is the closest
                        // active successor. Active nodes announce their
                        // block end to it exactly once (convergence stops
                        // further queries, so this branch runs once).
                        self.cycles[c].converged = true;
                        if self.cycles[c].active {
                            let target = self.cycles[c].ptr.expect("old member");
                            let last = *self.cycles[c].block.last().expect("active block");
                            ctx.send(target, ReMsg::EndFwd { cycle, last });
                        }
                    } else {
                        self.cycles[c].ptr = Some(ptr);
                        let target = self.cycles[c].ptr.unwrap();
                        ctx.send(target, ReMsg::JumpQuery { cycle });
                    }
                }
                ReMsg::EndFwd { cycle, last } => {
                    let c = cycle as usize;
                    self.cycles[c].u0 = Some(last);
                    let first = *self.cycles[c]
                        .block
                        .first()
                        .expect("EndFwd is addressed to an active node");
                    ctx.send(env.from, ReMsg::BackFwd { cycle, first });
                    self.wire_if_ready(ctx, c);
                }
                ReMsg::BackFwd { cycle, first } => {
                    let c = cycle as usize;
                    self.cycles[c].um1 = Some(first);
                    self.wire_if_ready(ctx, c);
                }
                ReMsg::Wire { cycle, pred, succ } => {
                    let c = cycle as usize;
                    self.cycles[c].new_pred = Some(pred);
                    self.cycles[c].new_succ = Some(succ);
                }
            }
        }
    }
}

/// Run one reconfiguration epoch. Returns the fresh cycles over
/// `stayers + joiners` plus metrics.
///
/// Panics if the surviving membership would be smaller than 3 (a Hamilton
/// cycle needs a triangle) or if an id joins and leaves simultaneously.
pub fn run_epoch(input: EpochInput<'_>) -> EpochOutput {
    let graph = input.graph;
    let old_members: Vec<NodeId> = graph.nodes().to_vec();
    let leaving: HashSet<NodeId> = input.leaving.iter().copied().collect();
    for (new, delegate) in &input.joins {
        assert!(!graph.contains(*new), "joining id {new} already present");
        assert!(graph.contains(*delegate), "delegate {delegate} not a member");
        assert!(!leaving.contains(new), "id {new} cannot join and leave at once");
    }
    let n_cycles = graph.degree() / 2;

    // ---- Phase 1 sampling: uniform targets from the rapid sampler. ----
    let dense: HashMap<NodeId, usize> =
        old_members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // Candidates each member must place, per cycle (same across cycles).
    let mut to_place: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &v in &old_members {
        if !leaving.contains(&v) {
            to_place.entry(v).or_default().push(v);
        }
    }
    for &(new, delegate) in &input.joins {
        to_place.entry(delegate).or_default().push(new);
    }
    let total_candidates: usize = to_place.values().map(Vec::len).sum();
    assert!(total_candidates >= 3, "surviving membership too small for a Hamilton cycle");

    // Draw targets from real sampler runs; start more parallel instances
    // if one run's beta*log(n) samples per node do not suffice.
    let mut sample_pool: Vec<Vec<NodeId>> = vec![Vec::new(); old_members.len()];
    let needed: HashMap<NodeId, usize> =
        to_place.iter().map(|(&v, c)| (v, c.len() * n_cycles)).collect();
    let mut salt = 0u64;
    let schedule = Schedule::algorithm1(old_members.len(), graph.degree(), &input.params);
    loop {
        let enough = needed.iter().all(|(v, &need)| sample_pool[dense[v]].len() >= need);
        if enough {
            break;
        }
        let run = run_alg1_direct(graph, &input.params, input.seed.wrapping_add(salt));
        for (i, s) in run.samples.into_iter().enumerate() {
            sample_pool[i].extend(s.into_iter().map(|j| old_members[j as usize]));
        }
        salt = salt.wrapping_add(0x9E37_79B9);
        assert!(salt < 0x9E37_79B9 * 64, "sampling cannot satisfy target demand");
    }
    let sampling_rounds = schedule.rounds() as u64;

    // ---- Build the epoch network. ----
    let mut net: AnyNet<ReconfigNode> = crate::backend::select().build(input.seed ^ 0xEC0C);
    for &v in &old_members {
        let pool = &mut sample_pool[dense[&v]];
        let placements: Vec<Vec<(NodeId, NodeId)>> = (0..n_cycles)
            .map(|_| {
                to_place
                    .get(&v)
                    .map(|cands| {
                        cands
                            .iter()
                            .map(|&cand| (cand, pool.pop().expect("pool sized above")))
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        let cycles: Vec<PerCycle> = graph
            .cycles()
            .iter()
            .map(|cy| PerCycle {
                old_succ: Some(cy.successor(v)),
                ptr: Some(cy.successor(v)),
                ..PerCycle::default()
            })
            .collect();
        net.add_node(
            v,
            ReconfigNode { placements, cycles, bridge: input.bridge, old_member: true },
        );
    }
    for &(new, _) in &input.joins {
        net.add_node(
            new,
            ReconfigNode {
                placements: vec![Vec::new(); n_cycles],
                cycles: vec![PerCycle::default(); n_cycles],
                bridge: input.bridge,
                old_member: false,
            },
        );
    }

    // ---- Run to completion. ----
    let survivors: Vec<NodeId> = old_members
        .iter()
        .copied()
        .filter(|v| !leaving.contains(v))
        .chain(input.joins.iter().map(|&(new, _)| new))
        .collect();
    let max_rounds = 6 * (usize::BITS - old_members.len().leading_zeros()) as u64 + 24;
    let mut bridge_rounds = 0u64;
    let mut converged_at: Option<u64> = None;
    loop {
        net.step();
        if converged_at.is_none() {
            let all_converged = net
                .nodes()
                .filter(|(_, p)| p.old_member)
                .all(|(_, p)| p.cycles.iter().all(|pc| pc.converged));
            if all_converged {
                converged_at = Some(net.round());
                bridge_rounds = net.round().saturating_sub(2);
            }
        }
        let done = survivors.iter().all(|v| {
            net.node(*v)
                .map(|p| p.cycles.iter().all(|pc| pc.new_pred.is_some() && pc.new_succ.is_some()))
                .unwrap_or(false)
        });
        if done {
            break;
        }
        assert!(
            net.round() < max_rounds,
            "epoch did not converge within {max_rounds} rounds (round {})",
            net.round()
        );
    }
    let network_rounds = net.round();

    // ---- Extract the new cycles. ----
    let mut new_cycles = Vec::with_capacity(n_cycles);
    let mut max_congestion = 0usize;
    for c in 0..n_cycles {
        let mut succ_of: HashMap<NodeId, NodeId> = HashMap::with_capacity(survivors.len());
        for &v in &survivors {
            let pc = &net.node(v).expect("survivor present").cycles[c];
            succ_of.insert(v, pc.new_succ.expect("wired"));
        }
        let start = *survivors.iter().min().expect("non-empty");
        let mut order = Vec::with_capacity(survivors.len());
        let mut cur = start;
        loop {
            order.push(cur);
            cur = succ_of[&cur];
            if cur == start {
                break;
            }
            assert!(order.len() <= survivors.len(), "new cycle is not Hamiltonian");
        }
        assert_eq!(order.len(), survivors.len(), "new cycle misses nodes");
        new_cycles.push(HamiltonCycle::from_order(order));
        let cong = net.nodes().map(|(_, p)| p.cycles[c].block.len()).max().unwrap_or(0);
        max_congestion = max_congestion.max(cong);
    }

    // ---- Empty segments on the old cycles (Lemma 12). ----
    let mut max_empty_segment = 0usize;
    for (c, cy) in graph.cycles().iter().enumerate() {
        let order = cy.order();
        let active: Vec<bool> =
            order.iter().map(|v| net.node(*v).expect("old member").cycles[c].active).collect();
        max_empty_segment = max_empty_segment.max(longest_false_run_cyclic(&active));
    }

    let metrics = ReconfigMetrics {
        n: survivors.len(),
        rounds: sampling_rounds + network_rounds,
        max_congestion,
        max_empty_segment,
        joined: input.joins.len(),
        left: leaving.len(),
        valid: true,
    };
    EpochOutput { cycles: new_cycles, members: survivors, metrics, sampling_rounds, bridge_rounds }
}

/// Longest run of `false` in a cyclic boolean sequence.
fn longest_false_run_cyclic(flags: &[bool]) -> usize {
    let n = flags.len();
    if flags.iter().all(|&f| !f) {
        return n;
    }
    let mut best = 0;
    let mut run = 0;
    // Doubling the sequence handles wraparound; runs are < n because at
    // least one flag is true.
    for i in 0..2 * n {
        if !flags[i % n] {
            run += 1;
            best = best.max(run.min(n));
        } else {
            run = 0;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: u64, seed: u64) -> HGraph {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        HGraph::random(&nodes, 8, &mut rng)
    }

    fn plain_epoch(g: &HGraph, seed: u64) -> EpochOutput {
        run_epoch(EpochInput {
            graph: g,
            leaving: Vec::new(),
            joins: Vec::new(),
            bridge: BridgeMode::PointerDoubling,
            params: SamplingParams::default(),
            seed,
        })
    }

    #[test]
    fn epoch_rebuilds_valid_cycles() {
        let g = graph(32, 1);
        let out = plain_epoch(&g, 7);
        assert_eq!(out.cycles.len(), 4);
        assert_eq!(out.members.len(), 32);
        for cy in &out.cycles {
            assert_eq!(cy.len(), 32);
        }
        assert!(out.metrics.valid);
    }

    #[test]
    fn epoch_handles_joins_and_leaves() {
        let g = graph(24, 2);
        let out = run_epoch(EpochInput {
            graph: &g,
            leaving: vec![NodeId(0), NodeId(5), NodeId(11)],
            joins: vec![
                (NodeId(100), NodeId(1)),
                (NodeId(101), NodeId(2)),
                (NodeId(102), NodeId(1)),
            ],
            bridge: BridgeMode::PointerDoubling,
            params: SamplingParams::default(),
            seed: 5,
        });
        assert_eq!(out.members.len(), 24);
        assert!(out.members.contains(&NodeId(100)));
        assert!(!out.members.contains(&NodeId(5)));
        for cy in &out.cycles {
            assert!(cy.contains(NodeId(101)));
            assert!(!cy.contains(NodeId(11)));
        }
        assert_eq!(out.metrics.joined, 3);
        assert_eq!(out.metrics.left, 3);
    }

    #[test]
    fn congestion_and_segments_are_small() {
        let g = graph(128, 3);
        let out = plain_epoch(&g, 11);
        // Lemma 11/12: polylog bounds; generous numeric caps at n = 128.
        assert!(out.metrics.max_congestion <= 16, "congestion {}", out.metrics.max_congestion);
        assert!(
            out.metrics.max_empty_segment <= 64,
            "empty segment {}",
            out.metrics.max_empty_segment
        );
    }

    #[test]
    fn pointer_doubling_beats_naive_walk() {
        let g = graph(96, 4);
        let fast = plain_epoch(&g, 13);
        let slow = run_epoch(EpochInput {
            graph: &g,
            leaving: Vec::new(),
            joins: Vec::new(),
            bridge: BridgeMode::NaiveWalk,
            params: SamplingParams::default(),
            seed: 13,
        });
        assert!(
            fast.bridge_rounds <= slow.bridge_rounds,
            "doubling {} vs naive {}",
            fast.bridge_rounds,
            slow.bridge_rounds
        );
        // Both must still produce valid cycles.
        assert_eq!(slow.members.len(), 96);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = graph(24, 6);
        let a = plain_epoch(&g, 21);
        let b = plain_epoch(&g, 21);
        for (ca, cb) in a.cycles.iter().zip(&b.cycles) {
            assert_eq!(ca.canonical_key(), cb.canonical_key());
        }
    }

    #[test]
    fn epoch_rounds_are_loglog_scale() {
        let small = plain_epoch(&graph(16, 7), 3);
        let large = plain_epoch(&graph(256, 8), 3);
        // 16x nodes: a handful of extra rounds at most.
        assert!(
            large.metrics.rounds <= small.metrics.rounds + 8,
            "{} vs {}",
            large.metrics.rounds,
            small.metrics.rounds
        );
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn joining_existing_id_rejected() {
        let g = graph(16, 9);
        run_epoch(EpochInput {
            graph: &g,
            leaving: Vec::new(),
            joins: vec![(NodeId(3), NodeId(1))],
            bridge: BridgeMode::PointerDoubling,
            params: SamplingParams::default(),
            seed: 1,
        });
    }
}
