//! The churn-resistant expander overlay (Section 4, Theorem 5).
//!
//! Wraps [`crate::reconfig::epoch`] into a long-running overlay: the node
//! set evolves under an adversarial churn schedule while the topology is
//! replaced by a fresh uniformly random H-graph every epoch. Because each
//! epoch takes `O(log log n)` rounds and joins/leaves take effect at epoch
//! boundaries, the network adapts to the prescribed node sets within
//! `T = O(log log n)` rounds — the delay that makes constant churn rates
//! survivable at all (cf. the `Omega(sqrt(n))` impossibility without it).

use crate::config::SamplingParams;
use crate::metrics::ReconfigMetrics;
use crate::reconfig::epoch::{run_epoch, BridgeMode, EpochInput};
use overlay_adversary::churn::ChurnEvent;
use overlay_graphs::{connectivity, HGraph};
use simnet::NodeId;
use telemetry::{EventKind, Telemetry};

/// A continuously reconfiguring H-graph overlay under churn.
pub struct ExpanderOverlay {
    graph: HGraph,
    params: SamplingParams,
    bridge: BridgeMode,
    seed: u64,
    epoch: u64,
    /// Joins received since the last reconfiguration: `(new, delegate)`.
    pending_joins: Vec<(NodeId, NodeId)>,
    /// Leave notices received since the last reconfiguration.
    pending_leaves: Vec<NodeId>,
    /// Total rounds consumed by completed epochs.
    pub total_rounds: u64,
    /// Pure observability: never consulted by the protocol, excluded from
    /// `state_digest` and from checkpoints.
    tel: Telemetry,
}

impl ExpanderOverlay {
    /// Bootstrap an overlay of `n` nodes (ids `0..n`) and degree `d` with
    /// a uniformly random initial H-graph.
    pub fn new(n: usize, d: usize, params: SamplingParams, seed: u64) -> Self {
        assert!(n >= 4, "overlay needs at least 4 nodes");
        let nodes: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let mut rng = simnet::rng::stream(seed, 0, 0xB007);
        let graph = HGraph::random(&nodes, d, &mut rng);
        Self {
            graph,
            params,
            bridge: BridgeMode::PointerDoubling,
            seed,
            epoch: 0,
            pending_joins: Vec::new(),
            pending_leaves: Vec::new(),
            total_rounds: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Select the Phase 3 bridging mode (A1 ablation).
    pub fn set_bridge_mode(&mut self, mode: BridgeMode) {
        self.bridge = mode;
    }

    /// Attach a telemetry recorder. Observability only: attaching (or not)
    /// never changes protocol behavior or the digest stream.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The current topology.
    pub fn graph(&self) -> &HGraph {
        &self.graph
    }

    /// Current members.
    pub fn members(&self) -> &[NodeId] {
        self.graph.nodes()
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record churn prescribed by the adversary; it takes effect at the
    /// next [`Self::reconfigure`] (the paper's delay-`T` adaptation).
    pub fn apply_churn(&mut self, event: &ChurnEvent) {
        for j in &event.joins {
            assert!(
                self.graph.contains(j.introduced_to),
                "introduction target {} is not a member",
                j.introduced_to
            );
            self.pending_joins.push((j.new_node, j.introduced_to));
        }
        for &l in &event.leaves {
            assert!(self.graph.contains(l), "leaver {l} is not a member");
            self.pending_leaves.push(l);
        }
    }

    /// Evict a member (self-healing graceful degradation): the node is
    /// treated as a leaver and excluded at the next reconfiguration.
    /// Idempotent — double evictions collapse, and evicting a node that is
    /// not (or no longer) a member is a no-op.
    pub fn evict(&mut self, v: NodeId) {
        if self.graph.contains(v) && !self.pending_leaves.contains(&v) {
            self.pending_leaves.push(v);
        }
    }

    /// Re-admit a node after crash-recovery via the ordinary join path:
    /// the smallest-id member that is not itself leaving acts as delegate,
    /// and the join is integrated at the next reconfiguration. A no-op for
    /// staying members and for nodes already waiting to join (a rejoin
    /// racing a fresh crash in the same epoch must not enqueue twice).
    pub fn rejoin(&mut self, v: NodeId) {
        let staying = self.graph.contains(v) && !self.pending_leaves.contains(&v);
        if staying || self.pending_joins.iter().any(|&(j, _)| j == v) {
            return;
        }
        let delegate =
            crate::healing::smallest_live_introducer(self.graph.nodes(), &self.pending_leaves, v)
                .expect("overlay has staying members");
        self.pending_joins.push((v, delegate));
    }

    /// Run one reconfiguration epoch: the pending joins are integrated,
    /// pending leavers excluded, and the topology replaced by a fresh
    /// uniformly random H-graph. Returns the epoch metrics.
    pub fn reconfigure(&mut self) -> ReconfigMetrics {
        self.epoch += 1;
        let _reconfig = self.tel.phase(telemetry::Phase::Reconfig);
        let out = run_epoch(EpochInput {
            graph: &self.graph,
            leaving: std::mem::take(&mut self.pending_leaves),
            joins: std::mem::take(&mut self.pending_joins),
            bridge: self.bridge,
            params: self.params,
            seed: self.seed.wrapping_add(self.epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        });
        self.graph = HGraph::from_cycles(out.members.clone(), out.cycles.clone());
        self.total_rounds += out.metrics.rounds;
        if self.tel.enabled() {
            let m = &out.metrics;
            self.tel.counter("overlay.epochs", &[]).inc();
            if !m.valid {
                self.tel.counter("overlay.failed_epochs", &[]).inc();
            }
            self.tel.counter("overlay.joins", &[]).add(m.joined as u64);
            self.tel.counter("overlay.leaves", &[]).add(m.left as u64);
            self.tel.histogram("overlay.epoch_rounds", &[]).record(m.rounds);
            self.tel.gauge("overlay.members", &[]).set(self.graph.len() as u64);
            let (epoch, joined, left, rounds) = (self.epoch, m.joined, m.left, m.rounds);
            self.tel.emit(epoch, EventKind::EpochFinished, None, u64::from(m.valid), || {
                format!("epoch {epoch}: {joined} joins, {left} leaves in {rounds} rounds")
            });
        }
        out.metrics
    }

    /// Is the current topology connected? (It always is — an H-graph is a
    /// union of Hamilton cycles — so this is a sanity check used by tests
    /// and experiments.)
    pub fn is_connected(&self) -> bool {
        connectivity::is_connected(&self.graph.adjacency())
    }

    /// Stable fingerprint of the full overlay state: epoch counters, sorted
    /// membership with each member's sorted adjacency, and pending churn.
    /// Golden tests pin the sequence of these across epochs; replaying with
    /// the same seed and churn schedule reproduces it exactly.
    pub fn state_digest(&self) -> u64 {
        let mut d = simnet::Digest::new();
        d.write_u64(self.epoch).write_u64(self.total_rounds);
        let mut members: Vec<NodeId> = self.graph.nodes().to_vec();
        members.sort_unstable();
        d.write_usize(members.len());
        for &v in &members {
            d.write_u64(v.raw());
            let mut nbrs = self.graph.neighbors(v);
            nbrs.sort_unstable();
            d.write_usize(nbrs.len());
            for w in nbrs {
                d.write_u64(w.raw());
            }
        }
        d.write_usize(self.pending_joins.len());
        for &(new, delegate) in &self.pending_joins {
            d.write_u64(new.raw()).write_u64(delegate.raw());
        }
        d.write_usize(self.pending_leaves.len());
        for &l in &self.pending_leaves {
            d.write_u64(l.raw());
        }
        d.finish()
    }
}

impl simnet::Checkpoint for ExpanderOverlay {
    fn save(&self) -> serde_json::Value {
        let joins: Vec<serde_json::Value> = self
            .pending_joins
            .iter()
            .map(|&(new, delegate)| serde_json::json!({ "new": new.raw(), "via": delegate.raw() }))
            .collect();
        serde_json::json!({
            "format": "expander-overlay-checkpoint",
            "graph": self.graph.save(),
            "params": self.params.save(),
            "bridge": self.bridge.save(),
            "seed": self.seed,
            "epoch": self.epoch,
            "pending_joins": joins,
            "pending_leaves": simnet::checkpoint::save_slice(&self.pending_leaves),
            "total_rounds": self.total_rounds,
            "digest_stamp": self.state_digest(),
        })
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::{field, get_array, get_str, get_u64, get_vec};
        match get_str(v, "format")? {
            "expander-overlay-checkpoint" => {}
            other => {
                return Err(simnet::CkptError::Corrupt(format!(
                    "not an expander overlay checkpoint: `{other}`"
                )))
            }
        }
        let mut pending_joins = Vec::new();
        for j in get_array(v, "pending_joins")? {
            pending_joins.push((NodeId(get_u64(j, "new")?), NodeId(get_u64(j, "via")?)));
        }
        let ov = Self {
            graph: HGraph::load(field(v, "graph")?)?,
            params: SamplingParams::load(field(v, "params")?)?,
            bridge: BridgeMode::load(field(v, "bridge")?)?,
            seed: get_u64(v, "seed")?,
            epoch: get_u64(v, "epoch")?,
            pending_joins,
            pending_leaves: get_vec(v, "pending_leaves")?,
            total_rounds: get_u64(v, "total_rounds")?,
            tel: Telemetry::disabled(),
        };
        let stamped = get_u64(v, "digest_stamp")?;
        let restored = ov.state_digest();
        if restored != stamped {
            return Err(simnet::CkptError::DigestMismatch { stamped, restored });
        }
        Ok(ov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_adversary::churn::{ChurnSchedule, ChurnStrategy};

    #[test]
    fn overlay_survives_sustained_random_churn() {
        let mut ov = ExpanderOverlay::new(48, 8, SamplingParams::default(), 1);
        let mut sched = ChurnSchedule::new(ChurnStrategy::Random, 2.0, 0.5, 10_000);
        let mut rng = simnet::rng::stream(1, 0, 1);
        for _ in 0..5 {
            let ev = sched.next(ov.members(), &mut rng);
            let joined = ev.joins.len();
            let left = ev.leaves.len();
            ov.apply_churn(&ev);
            let m = ov.reconfigure();
            assert!(m.valid);
            assert_eq!(m.joined, joined);
            assert_eq!(m.left, left);
            assert!(ov.is_connected());
        }
        assert_eq!(ov.epoch(), 5);
    }

    #[test]
    fn oldest_first_adversary_cannot_disconnect() {
        let mut ov = ExpanderOverlay::new(40, 8, SamplingParams::default(), 2);
        let mut sched = ChurnSchedule::new(ChurnStrategy::OldestFirst, 2.0, 0.8, 10_000);
        let mut rng = simnet::rng::stream(2, 0, 1);
        for _ in 0..4 {
            let ev = sched.next(ov.members(), &mut rng);
            ov.apply_churn(&ev);
            ov.reconfigure();
            assert!(ov.is_connected());
        }
        // After 4 epochs of oldest-first churn at intensity 0.8, most of
        // the original cohort is gone yet the overlay stands.
        let originals = ov.members().iter().filter(|m| m.raw() < 40).count();
        assert!(originals < 40);
    }

    #[test]
    fn leavers_are_excluded_joiners_integrated_within_one_epoch() {
        let mut ov = ExpanderOverlay::new(16, 8, SamplingParams::default(), 3);
        let ev = ChurnEvent {
            joins: vec![overlay_adversary::churn::Join {
                new_node: NodeId(500),
                introduced_to: NodeId(3),
            }],
            leaves: vec![NodeId(7)],
        };
        ov.apply_churn(&ev);
        ov.reconfigure();
        assert!(ov.graph().contains(NodeId(500)), "joiner integrated");
        assert!(!ov.graph().contains(NodeId(7)), "leaver excluded");
    }

    #[test]
    fn membership_is_monotonic_per_id() {
        // An id that left never reappears; an id joins exactly once.
        let mut ov = ExpanderOverlay::new(24, 8, SamplingParams::default(), 4);
        let mut sched = ChurnSchedule::new(ChurnStrategy::Random, 2.0, 0.5, 10_000);
        let mut rng = simnet::rng::stream(4, 0, 1);
        let mut ever_left: Vec<NodeId> = Vec::new();
        for _ in 0..4 {
            let ev = sched.next(ov.members(), &mut rng);
            ever_left.extend(ev.leaves.iter().copied());
            ov.apply_churn(&ev);
            ov.reconfigure();
            for l in &ever_left {
                assert!(!ov.graph().contains(*l), "departed id {l} resurfaced");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn churn_referencing_stranger_rejected() {
        let mut ov = ExpanderOverlay::new(8, 8, SamplingParams::default(), 5);
        ov.apply_churn(&ChurnEvent { joins: Vec::new(), leaves: vec![NodeId(999)] });
    }
}
