//! In-protocol Byzantine defenses for the DoS-resistant overlay.
//!
//! The paper's adversary only *silences* nodes; this module extends the
//! Section 5 overlay with an adversary that also *participates
//! dishonestly* — Sybil joins, forged membership updates, eclipse of the
//! join path — and with three independently toggleable defenses
//! ([`DefenseConfig`]):
//!
//! 1. **Join rate-limiting** — each supernode group accepts at most `k`
//!    joiners per reconfiguration epoch; a Sybil flood aimed at one group
//!    is throttled to the honest churn rate.
//! 2. **Quorum-confirmed membership updates** — a membership change
//!    (placement claim, eviction, desync notice) takes effect only when
//!    the member's group confirms it. Under the honest-majority invariant
//!    a lone Byzantine member can no longer evict honest peers or choose
//!    its own placement, and every rejected forgery raises *suspicion*
//!    against its sender. On the join path the quorum rule makes a joiner
//!    cross-check one introducer per hypercube dimension instead of
//!    trusting the single smallest-id member.
//! 3. **Audit & quarantine** — at every epoch boundary the group audits
//!    the epoch's membership updates: wrongfully evicted members are
//!    reinstated through the join path, forgers are suspected, and any
//!    member whose suspicion reaches [`QUARANTINE_THRESHOLD`] is evicted
//!    and permanently quarantined (its identity may never rejoin).
//!
//! A [`ByzantineRunner`] drives a [`DosOverlay`] under a
//! [`ByzAttacker`] (see `overlay_adversary::byzantine`), applies whichever
//! defenses are enabled, and feeds an [`InvariantMonitor`] the Byzantine
//! invariants — [`Invariant::HonestMajority`],
//! [`Invariant::SybilConcentration`], [`Invariant::EclipseExposure`] — on
//! top of the classic connectivity/availability checks. Byzantine members
//! still *occupy* membership slots but never help the protocol: they are
//! folded into the effective block set every round.
//!
//! Everything here is deterministic in `(seed, campaign, defense)`;
//! telemetry is pure observability and never perturbs the overlay's RNG
//! or digest stream.

use crate::dos::{DosOverlay, DosParams};
use crate::healing::smallest_live_introducer;
use crate::metrics::{DosRoundMetrics, DosRunMetrics};
use crate::monitor::{Invariant, InvariantMonitor};
use overlay_adversary::byzantine::{ByzActions, ByzAttacker, Forgery};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use telemetry::{EventKind, Telemetry};

/// Suspicion level at which the audit defense quarantines a member: two
/// independently observed contradictions. One contradiction can be an
/// honest node racing a reconfiguration; two in distinct audits cannot.
pub const QUARANTINE_THRESHOLD: u32 = 2;

/// Rounds a group-capture condition (lost honest majority, Sybil
/// concentration) must *persist* before it counts as a violation.
/// Momentary flips — a quorum-rejected forger in its last rounds before
/// quarantine, a uniform placement briefly crowding a minimum-size group
/// — are containment in progress, not capture; sustained control (a
/// targeted flood holding a group until the next reconfiguration) far
/// outlasts this window.
pub const CAPTURE_GRACE: u64 = 3;

/// Consecutive *epoch probes* an eclipse position must survive before it
/// counts (the join path is probed once per finished epoch, so this grace
/// is in probes, not rounds). A single-epoch capture — corrupted low-id
/// nodes happening to be the minima of every checked group after one
/// resample — dissolves at the next reconfiguration by Lemma 15; holding
/// the introducer set across two independent resamples is what an actual
/// eclipse (owning the low end of the id space) does and luck does not.
pub const ECLIPSE_PROBE_GRACE: u64 = 1;

/// Which in-protocol defenses are active. Each is independently
/// toggleable so experiments can ablate them one at a time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DefenseConfig {
    /// Max joiners a single group accepts per epoch (`None` = unlimited).
    pub join_rate_limit: Option<u32>,
    /// Membership updates (placement claims, evictions, desyncs) require
    /// group confirmation; the join path cross-checks `dim + 1`
    /// introducers.
    pub membership_quorum: bool,
    /// Epoch-boundary audit: reinstate wrongful evictions, suspect
    /// forgers, quarantine repeat offenders.
    pub audit_quarantine: bool,
}

impl DefenseConfig {
    /// Every defense off — the undefended baseline.
    pub fn none() -> Self {
        Self { join_rate_limit: None, membership_quorum: false, audit_quarantine: false }
    }

    /// Every defense on, with the default per-group join rate.
    pub fn all() -> Self {
        Self { join_rate_limit: Some(2), membership_quorum: true, audit_quarantine: true }
    }

    /// Stable label for experiment tables: `none`, or `+`-joined active
    /// defenses (`rate-limit+quorum+audit`).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.join_rate_limit.is_some() {
            parts.push("rate-limit");
        }
        if self.membership_quorum {
            parts.push("quorum");
        }
        if self.audit_quarantine {
            parts.push("audit");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }

    /// The standard ablation set: no defenses, each defense alone, all
    /// defenses together.
    pub fn ablation() -> Vec<Self> {
        vec![
            Self::none(),
            Self { join_rate_limit: Some(2), ..Self::none() },
            Self { membership_quorum: true, ..Self::none() },
            Self { audit_quarantine: true, ..Self::none() },
            Self::all(),
        ]
    }
}

/// Counters of adversarial actions and defense responses over a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ByzStats {
    /// Sybil joins the overlay accepted.
    pub joins_accepted: u64,
    /// Sybil joins turned away (rate limit or quarantined identity).
    pub joins_rejected: u64,
    /// Members corrupted into Byzantine behavior.
    pub corruptions: u64,
    /// Forged evictions that took effect.
    pub forged_evictions: u64,
    /// Forged desync notices that took effect.
    pub forged_desyncs: u64,
    /// Forgeries rejected by the quorum defense.
    pub forgeries_blocked: u64,
    /// Members quarantined by the audit defense.
    pub quarantined: u64,
    /// Wrongfully evicted members reinstated by the audit defense.
    pub reinstated: u64,
    /// Join-path eclipse probes performed (one per finished epoch).
    pub eclipse_probes: u64,
    /// Probes that found every reachable introducer Byzantine.
    pub eclipsed_probes: u64,
}

/// Drives a [`DosOverlay`] under a Byzantine adversary with the
/// configured [`DefenseConfig`], checking the Byzantine invariants every
/// round. See the module docs for the defense semantics.
pub struct ByzantineRunner {
    overlay: DosOverlay,
    defense: DefenseConfig,
    /// Invariant verdicts; configure grace via [`Self::monitor_mut`].
    pub monitor: InvariantMonitor,
    /// Action/defense counters for experiment tables.
    pub stats: ByzStats,
    /// All identities that ever acted Byzantine (admitted Sybils and
    /// corrupted members), including since-evicted ones.
    byz: BTreeSet<NodeId>,
    /// Identities banned by the audit defense; they may never rejoin.
    quarantined: BTreeSet<NodeId>,
    /// Contradictions observed per identity (quorum rejections, audits).
    suspicion: BTreeMap<NodeId, u32>,
    /// Joins accepted per group in the current epoch (rate-limit state).
    joins_this_epoch: BTreeMap<u64, u32>,
    /// Evictions that took effect this epoch: `(forger, victim)`.
    pending_evictions: Vec<(NodeId, NodeId)>,
    /// Desynchronized victims: `victim -> (silent_until_round, forger)`.
    desynced: BTreeMap<NodeId, (u64, NodeId)>,
    tel: Telemetry,
}

impl ByzantineRunner {
    /// Overlay over nodes `0..n` (all initially honest) with the given
    /// defenses. Availability gets one epoch of monitor grace, exactly
    /// like the self-healing runner: transient mid-epoch starvation is
    /// the overlay's own failed-epoch signal, not a verdict.
    pub fn new(n: usize, params: DosParams, seed: u64, defense: DefenseConfig) -> Self {
        let overlay = DosOverlay::new(n, params, seed);
        let monitor = InvariantMonitor::new()
            .with_grace(Invariant::Availability, overlay.epoch_len())
            .with_grace(Invariant::HonestMajority, CAPTURE_GRACE)
            .with_grace(Invariant::SybilConcentration, CAPTURE_GRACE)
            .with_grace(Invariant::EclipseExposure, ECLIPSE_PROBE_GRACE);
        Self {
            overlay,
            defense,
            monitor,
            stats: ByzStats::default(),
            byz: BTreeSet::new(),
            quarantined: BTreeSet::new(),
            suspicion: BTreeMap::new(),
            joins_this_epoch: BTreeMap::new(),
            pending_evictions: Vec::new(),
            desynced: BTreeMap::new(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry recorder: overlay events, monitor violations and
    /// `defense.*` counters record into it. Pure observability.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.overlay.set_telemetry(tel.clone());
        self.monitor.set_telemetry(tel.clone());
        self.tel = tel;
    }

    /// The driven overlay (read-only).
    pub fn overlay(&self) -> &DosOverlay {
        &self.overlay
    }

    /// The active defense configuration.
    pub fn defense(&self) -> DefenseConfig {
        self.defense
    }

    /// Identities that ever acted Byzantine.
    pub fn byzantine(&self) -> &BTreeSet<NodeId> {
        &self.byz
    }

    /// Identities banned by the audit defense.
    pub fn quarantined(&self) -> &BTreeSet<NodeId> {
        &self.quarantined
    }

    fn is_member(&self, v: NodeId) -> bool {
        self.overlay.grouped().supernode_of(v).is_some()
    }

    /// Process one round of adversarial actions, step the overlay, and
    /// check the invariants.
    pub fn step(&mut self, acts: &ByzActions) -> DosRoundMetrics {
        let round = self.overlay.round();
        self.monitor.begin_round();
        self.apply_joins(&acts.joins, round);
        self.apply_corruptions(&acts.corrupt);
        self.apply_forgeries(&acts.forges, round);

        // Byzantine members occupy slots but never cooperate: they join
        // the block set, as do members silenced by a forged desync.
        let mut eff = acts.blocked.clone();
        for &b in &self.byz {
            if self.overlay.grouped().supernode_of(b).is_some() {
                eff.insert(b);
            }
        }
        for (&v, &(until, _)) in &self.desynced {
            if round < until && self.overlay.grouped().supernode_of(v).is_some() {
                eff.insert(v);
            }
        }

        let epochs_before = self.overlay.epochs();
        let m = self.overlay.step(&eff);
        let epoch_finished = self.overlay.epochs() > epochs_before;

        self.check_round_invariants(&m, round);
        if epoch_finished {
            self.end_of_epoch_audit(round);
            self.probe_eclipse(round);
        }
        m
    }

    /// Drive a full run: the adversary observes, acts (through its own
    /// lateness/budget harness), and the runner applies defenses. The
    /// blocking component is additionally checked against `dos_bound`.
    pub fn run<A: ByzAttacker>(
        &mut self,
        adversary: &mut A,
        rounds: u64,
        dos_bound: f64,
    ) -> DosRunMetrics {
        let mut out = DosRunMetrics { n: self.overlay.grouped().len(), ..Default::default() };
        for _ in 0..rounds {
            let round = self.overlay.round();
            adversary.observe(self.overlay.grouped().snapshot(round));
            let n = self.overlay.grouped().len();
            let acts = adversary.act(round, n);
            self.monitor.check(
                Invariant::BlockingBudget,
                round,
                acts.blocked.within_bound(dos_bound, n),
                || format!("{} blocked of {n} under bound {dos_bound}", acts.blocked.len()),
            );
            out.absorb(self.step(&acts));
        }
        out.epochs = self.overlay.epochs();
        out
    }

    fn apply_joins(&mut self, joins: &[overlay_adversary::byzantine::JoinRequest], round: u64) {
        let n_groups = self.overlay.grouped().cube().len();
        for j in joins {
            if self.quarantined.contains(&j.id) {
                self.reject_join(round, j.id, "quarantined");
                continue;
            }
            // The quorum defense ignores the joiner's placement claim and
            // places uniformly, like the per-epoch resampling would.
            let claimed = if self.defense.membership_quorum { None } else { j.claimed_group };
            if let (Some(limit), Some(x)) = (self.defense.join_rate_limit, claimed) {
                // Claimed destination known up front: reject before insert.
                if self.joins_this_epoch.get(&(x % n_groups)).copied().unwrap_or(0) >= limit {
                    self.reject_join(round, j.id, "rate-limited");
                    continue;
                }
            }
            let Some(x) = self.overlay.admit(j.id, claimed) else {
                continue; // already a member
            };
            let count = self.joins_this_epoch.entry(x).or_insert(0);
            if self.defense.join_rate_limit.is_some_and(|limit| *count >= limit) {
                // Uniform placement landed in a group that already used
                // its quota: the group bounces the joiner.
                self.overlay.evict(j.id);
                self.reject_join(round, j.id, "rate-limited");
                continue;
            }
            *count += 1;
            self.byz.insert(j.id);
            self.stats.joins_accepted += 1;
        }
    }

    fn reject_join(&mut self, round: u64, id: NodeId, why: &'static str) {
        self.stats.joins_rejected += 1;
        self.tel.counter("defense.joins_rejected", &[("why", why)]).inc();
        self.tel.emit(round, EventKind::Custom, Some(id.raw()), 0, || format!("join {why}"));
    }

    fn apply_corruptions(&mut self, corrupt: &[NodeId]) {
        for &v in corrupt {
            if self.is_member(v) && self.byz.insert(v) {
                self.stats.corruptions += 1;
            }
        }
    }

    fn apply_forgeries(&mut self, forges: &[Forgery], round: u64) {
        let epoch_len = self.overlay.epoch_len();
        for f in forges {
            let (by, victim) = (f.by(), f.victim());
            // Only live, unquarantined Byzantine members can forge, and
            // only honest members are worth forging against.
            if !self.byz.contains(&by)
                || self.quarantined.contains(&by)
                || !self.is_member(by)
                || !self.is_member(victim)
                || self.byz.contains(&victim)
            {
                continue;
            }
            if self.defense.membership_quorum {
                // The victim's group never confirms the update; the forged
                // message itself is the observed contradiction, so repeat
                // offenders are ejected on the spot (audit on), without
                // waiting for the epoch-boundary review.
                self.stats.forgeries_blocked += 1;
                let s = self.suspicion.entry(by).or_insert(0);
                *s += 1;
                let suspicion = *s;
                self.tel.counter("defense.forgeries_blocked", &[]).inc();
                if self.defense.audit_quarantine && suspicion >= QUARANTINE_THRESHOLD {
                    self.quarantine(by, round);
                }
                continue;
            }
            match f {
                Forgery::Evict { .. } => {
                    self.overlay.evict(victim);
                    self.stats.forged_evictions += 1;
                    self.pending_evictions.push((by, victim));
                }
                Forgery::Desync { .. } => {
                    self.desynced.insert(victim, (round + epoch_len, by));
                    self.stats.forged_desyncs += 1;
                }
            }
        }
    }

    fn check_round_invariants(&mut self, m: &DosRoundMetrics, round: u64) {
        self.monitor.check(Invariant::Connectivity, round, m.connected, || {
            format!("{} blocked, occupied-supernode graph split", m.blocked)
        });
        self.monitor.check(Invariant::Availability, round, m.min_group_available >= 1, || {
            "some group has no available member".to_string()
        });

        // Honest majority: every non-empty group must keep a strict
        // honest majority, or quorum confirmation is forgeable.
        let groups = self.overlay.grouped().groups();
        let mut majority_ok = true;
        let mut worst = (0usize, 0usize, 0u64); // (honest, total, group)
        let mut live_byz = 0usize;
        let mut max_byz = (0usize, 0u64); // (count, group)
        for (x, g) in groups.iter().enumerate() {
            if g.is_empty() {
                continue;
            }
            let bad = g.iter().filter(|v| self.byz.contains(v)).count();
            live_byz += bad;
            if bad > max_byz.0 {
                max_byz = (bad, x as u64);
            }
            let honest = g.len() - bad;
            if honest * 2 <= g.len() && (majority_ok || honest * worst.1 < worst.0 * g.len()) {
                majority_ok = false;
                worst = (honest, g.len(), x as u64);
            }
        }
        self.monitor.check(Invariant::HonestMajority, round, majority_ok, || {
            format!("group {}: only {}/{} members honest", worst.2, worst.0, worst.1)
        });

        // Sybil concentration: no group may hold much more than its fair
        // share of the Byzantine population. `3x fair share + slack`
        // tolerates random unevenness; a targeted pile-up trips it. The
        // fair share is computed over every identity the adversary has
        // ever fielded (`self.byz` is never pruned), not just the ones
        // still seated: quarantining a forger removes it from its group,
        // and a denominator that shrank with it would *tighten* the cap
        // exactly when the defense is working.
        let n_groups = groups.iter().filter(|g| !g.is_empty()).count().max(1);
        let fair = self.byz.len().div_ceil(n_groups);
        let cap = (3 * fair).max(6);
        self.monitor.check(Invariant::SybilConcentration, round, max_byz.0 <= cap, || {
            format!(
                "group {} holds {} of {} live byzantine identities (cap {})",
                max_byz.1, max_byz.0, live_byz, cap
            )
        });
    }

    /// Epoch-boundary bookkeeping: reset rate-limit quotas; under the
    /// audit defense, reinstate wrongful evictions, suspect forgers and
    /// quarantine repeat offenders.
    fn end_of_epoch_audit(&mut self, round: u64) {
        self.joins_this_epoch.clear();
        if !self.defense.audit_quarantine {
            // No audit: desyncs expire on their own, evictions stand.
            self.desynced.retain(|_, (until, _)| round < *until);
            self.pending_evictions.clear();
            return;
        }
        for (by, victim) in std::mem::take(&mut self.pending_evictions) {
            if !self.is_member(victim) {
                self.overlay.rejoin(victim);
                self.stats.reinstated += 1;
                self.tel.counter("defense.reinstated", &[]).inc();
            }
            *self.suspicion.entry(by).or_insert(0) += 1;
        }
        for (_, (until, by)) in std::mem::take(&mut self.desynced) {
            if round < until {
                // Caught desynchronizing a live member mid-flight.
                *self.suspicion.entry(by).or_insert(0) += 1;
            }
        }
        let offenders: Vec<NodeId> = self
            .suspicion
            .iter()
            .filter(|&(v, &s)| s >= QUARANTINE_THRESHOLD && !self.quarantined.contains(v))
            .map(|(&v, _)| v)
            .collect();
        for v in offenders {
            self.quarantine(v, round);
        }
    }

    /// Evict and permanently ban a repeat offender (idempotent).
    fn quarantine(&mut self, v: NodeId, round: u64) {
        if !self.quarantined.insert(v) {
            return;
        }
        if self.is_member(v) {
            self.overlay.evict(v);
        }
        self.stats.quarantined += 1;
        self.tel.counter("defense.quarantined", &[]).inc();
        self.tel.emit(round, EventKind::Custom, Some(v.raw()), 0, || "quarantined".to_string());
    }

    /// Once per epoch, probe the join path: would a fresh honest joiner
    /// reach an honest introducer? Without quorum the joiner trusts the
    /// single smallest live member; with quorum it cross-checks the
    /// smallest live member of `dim + 1` distinct groups and is eclipsed
    /// only if **all** of them are Byzantine.
    fn probe_eclipse(&mut self, round: u64) {
        let grouped = self.overlay.grouped();
        let probe = NodeId(u64::MAX); // fresh identity, never inserted
        let eclipsed = if self.defense.membership_quorum {
            let q = grouped.cube().dim() as usize + 1;
            let introducers: Vec<NodeId> =
                grouped.groups().iter().filter_map(|g| g.iter().copied().min()).take(q).collect();
            introducers.is_empty() || introducers.iter().all(|v| self.byz.contains(v))
        } else {
            let members = grouped.nodes();
            match smallest_live_introducer(&members, &[], probe) {
                Some(intro) => self.byz.contains(&intro),
                None => true,
            }
        };
        self.stats.eclipse_probes += 1;
        if eclipsed {
            self.stats.eclipsed_probes += 1;
        }
        self.tel.counter("defense.eclipse_probes", &[]).inc();
        self.monitor.check(Invariant::EclipseExposure, round, !eclipsed, || {
            "every reachable introducer is byzantine".to_string()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_adversary::byzantine::{
        ByzBudget, ByzHarness, EclipseCampaign, ForgeCampaign, JoinRequest, SybilCampaign,
    };

    const N: usize = 128;
    const SEED: u64 = 0xB12A;

    fn params() -> DosParams {
        // Small groups (as in the A6 experiment) so attacks bite at small
        // budgets and tests stay fast.
        DosParams { group_c: 1.0, ..DosParams::default() }
    }

    fn join(id: u64, group: Option<u64>) -> JoinRequest {
        JoinRequest { id: NodeId(id), claimed_group: group }
    }

    #[test]
    fn defense_labels_are_stable() {
        assert_eq!(DefenseConfig::none().label(), "none");
        assert_eq!(DefenseConfig::all().label(), "rate-limit+quorum+audit");
        let labels: Vec<String> = DefenseConfig::ablation().iter().map(|d| d.label()).collect();
        assert_eq!(
            labels,
            vec!["none", "rate-limit", "quorum", "audit", "rate-limit+quorum+audit"]
        );
    }

    #[test]
    fn undefended_overlay_honors_placement_claims() {
        let mut r = ByzantineRunner::new(N, params(), SEED, DefenseConfig::none());
        let acts = ByzActions {
            joins: (0..6).map(|i| join(1 << 41 | i, Some(3))).collect(),
            ..ByzActions::default()
        };
        r.step(&acts);
        assert_eq!(r.stats.joins_accepted, 6);
        for i in 0..6 {
            assert_eq!(r.overlay().grouped().supernode_of(NodeId(1 << 41 | i)), Some(3));
        }
    }

    #[test]
    fn quorum_ignores_placement_claims() {
        let mut r = ByzantineRunner::new(
            N,
            params(),
            SEED,
            DefenseConfig { membership_quorum: true, ..DefenseConfig::none() },
        );
        let ids: Vec<u64> = (0..32).map(|i| 1 << 41 | i).collect();
        let acts = ByzActions {
            joins: ids.iter().map(|&id| join(id, Some(3))).collect(),
            ..ByzActions::default()
        };
        r.step(&acts);
        let landed: BTreeSet<u64> =
            ids.iter().filter_map(|&id| r.overlay().grouped().supernode_of(NodeId(id))).collect();
        assert!(landed.len() > 1, "32 uniform joins cannot all land in one group: {landed:?}");
    }

    #[test]
    fn rate_limit_caps_joins_per_group_per_epoch() {
        let mut r = ByzantineRunner::new(
            N,
            params(),
            SEED,
            DefenseConfig { join_rate_limit: Some(2), ..DefenseConfig::none() },
        );
        let acts = ByzActions {
            joins: (0..6).map(|i| join(1 << 41 | i, Some(3))).collect(),
            ..ByzActions::default()
        };
        r.step(&acts);
        assert_eq!(r.stats.joins_accepted, 2);
        assert_eq!(r.stats.joins_rejected, 4);
        // The quota resets at the epoch boundary.
        for _ in 0..r.overlay().epoch_len() {
            r.step(&ByzActions::default());
        }
        let acts = ByzActions {
            joins: (6..8).map(|i| join(1 << 41 | i, Some(3))).collect(),
            ..ByzActions::default()
        };
        r.step(&acts);
        assert_eq!(r.stats.joins_accepted, 4, "fresh epoch, fresh quota");
    }

    #[test]
    fn forged_evictions_land_without_quorum_and_bounce_with_it() {
        let victim = NodeId(5);
        for (quorum, expect_member) in [(false, false), (true, true)] {
            let mut r = ByzantineRunner::new(
                N,
                params(),
                SEED,
                DefenseConfig { membership_quorum: quorum, ..DefenseConfig::none() },
            );
            let corrupt = ByzActions { corrupt: vec![NodeId(100)], ..ByzActions::default() };
            r.step(&corrupt);
            let forge = ByzActions {
                forges: vec![Forgery::Evict { by: NodeId(100), victim }],
                ..ByzActions::default()
            };
            r.step(&forge);
            assert_eq!(
                r.overlay().grouped().supernode_of(victim).is_some(),
                expect_member,
                "quorum={quorum}"
            );
            if quorum {
                assert_eq!(r.stats.forgeries_blocked, 1);
            } else {
                assert_eq!(r.stats.forged_evictions, 1);
            }
        }
    }

    #[test]
    fn audit_reinstates_victims_and_quarantines_repeat_forgers() {
        let mut r = ByzantineRunner::new(
            N,
            params(),
            SEED,
            DefenseConfig { audit_quarantine: true, ..DefenseConfig::none() },
        );
        let forger = NodeId(100);
        r.step(&ByzActions { corrupt: vec![forger], ..ByzActions::default() });
        // Two forged evictions across two epochs: the first audit
        // reinstates and suspects, the second quarantines.
        for victim in [NodeId(5), NodeId(6)] {
            r.step(&ByzActions {
                forges: vec![Forgery::Evict { by: forger, victim }],
                ..ByzActions::default()
            });
            for _ in 0..r.overlay().epoch_len() + 1 {
                r.step(&ByzActions::default());
            }
        }
        assert_eq!(r.stats.reinstated, 2, "both victims rejoin: {:?}", r.stats);
        assert!(r.quarantined().contains(&forger), "repeat forger is quarantined");
        assert!(r.overlay().grouped().supernode_of(forger).is_none(), "and evicted");
        // A quarantined identity can never rejoin.
        r.step(&ByzActions { joins: vec![join(100, None)], ..ByzActions::default() });
        assert!(r.overlay().grouped().supernode_of(forger).is_none());
    }

    #[test]
    fn sybil_flood_violates_honest_majority_only_when_undefended() {
        let run = |defense: DefenseConfig| {
            let mut r = ByzantineRunner::new(N, params(), SEED, defense);
            let budget = ByzBudget { byz_fraction: 0.3, joins_per_round: 4, block_bound: 0.0 };
            let mut adv = ByzHarness::new(SybilCampaign::default(), budget, 0);
            r.run(&mut adv, 3 * r.overlay().epoch_len(), 0.0);
            (
                r.monitor.count(Invariant::HonestMajority),
                r.monitor.count(Invariant::SybilConcentration),
                r.stats,
            )
        };
        let (und_maj, und_conc, und) = run(DefenseConfig::none());
        assert!(und_maj > 0, "a targeted flood must capture its group");
        assert!(und_conc > 0, "and trip the concentration bound");
        assert_eq!(und.joins_rejected, 0, "nothing pushes back without defenses");
        // A 30% Byzantine population may still transiently flip one
        // minimum-size group under *uniform* placement, so the defended
        // claim is an order-of-magnitude differential, not exact zero.
        let (def_maj, def_conc, def) = run(DefenseConfig::all());
        assert!(def_maj * 10 <= und_maj, "defended majority flips: {def_maj} vs {und_maj}");
        assert!(def_conc * 10 <= und_conc, "defended concentration: {def_conc} vs {und_conc}");
        assert!(def.joins_rejected > 0, "the rate limit must turn joiners away");
        assert!(def.joins_accepted < und.joins_accepted);
    }

    #[test]
    fn eclipse_defense_requires_corrupting_many_introducers() {
        let run = |defense: DefenseConfig| {
            let mut r = ByzantineRunner::new(N, params(), SEED, defense);
            let budget = ByzBudget { byz_fraction: 0.05, joins_per_round: 0, block_bound: 0.0 };
            let mut adv = ByzHarness::new(EclipseCampaign::default(), budget, 0);
            r.run(&mut adv, 3 * r.overlay().epoch_len(), 0.0);
            (r.monitor.count(Invariant::EclipseExposure), r.stats.eclipse_probes)
        };
        let (undefended, probes) = run(DefenseConfig::none());
        assert!(probes > 0, "epochs must finish for probes to run");
        assert!(undefended > 0, "corrupting the smallest ids eclipses the single introducer");
        let (defended, _) = run(DefenseConfig { membership_quorum: true, ..DefenseConfig::none() });
        assert_eq!(defended, 0, "5% corruption cannot own one introducer per dimension");
    }

    #[test]
    fn forge_campaign_is_contained_by_full_defenses() {
        let run = |defense: DefenseConfig| {
            let mut r = ByzantineRunner::new(N, params(), SEED, defense);
            let budget = ByzBudget { byz_fraction: 0.1, joins_per_round: 0, block_bound: 0.0 };
            let mut adv = ByzHarness::new(ForgeCampaign::default(), budget, 0);
            r.run(&mut adv, 4 * r.overlay().epoch_len(), 0.0);
            (r.overlay().grouped().len(), r.stats)
        };
        let (undefended_n, u) = run(DefenseConfig::none());
        assert!(u.forged_evictions > 0);
        assert!(undefended_n < N, "unchecked forgeries drain the membership");
        let (defended_n, d) = run(DefenseConfig::all());
        assert!(d.forgeries_blocked > 0);
        assert_eq!(d.forged_evictions, 0);
        assert!(defended_n > undefended_n, "quorum keeps the honest members in");
    }

    #[test]
    fn byzantine_runs_replay_digest_identically() {
        let digest = |_| {
            let mut r = ByzantineRunner::new(N, params(), SEED, DefenseConfig::all());
            let budget = ByzBudget { byz_fraction: 0.2, joins_per_round: 4, block_bound: 0.0 };
            let mut adv = ByzHarness::new(SybilCampaign::default(), budget, 2);
            r.run(&mut adv, 2 * r.overlay().epoch_len() + 3, 0.0);
            r.overlay().state_digest()
        };
        assert_eq!(digest(0), digest(1), "same (seed, campaign, defense) must replay");
    }

    #[test]
    fn telemetry_never_perturbs_the_overlay_digest() {
        let digest = |with_tel: bool| {
            let mut r = ByzantineRunner::new(N, params(), SEED, DefenseConfig::all());
            if with_tel {
                r.set_telemetry(Telemetry::new(telemetry::Config::default()));
            }
            let budget = ByzBudget { byz_fraction: 0.2, joins_per_round: 4, block_bound: 0.0 };
            let mut adv = ByzHarness::new(ForgeCampaign::default(), budget, 0);
            r.run(&mut adv, 2 * r.overlay().epoch_len() + 3, 0.0);
            r.overlay().state_digest()
        };
        assert_eq!(digest(false), digest(true));
    }
}
