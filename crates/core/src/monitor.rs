//! Per-round invariant monitoring.
//!
//! An [`InvariantMonitor`] is fed one boolean verdict per invariant per
//! round by whatever harness drives an overlay (the self-healing runners in
//! [`crate::healing`], the fuzz tests, the benchmarks). It tolerates a
//! configurable per-invariant *grace window* — a violation is only recorded
//! once the check has failed for more than `grace` consecutive rounds — and
//! it remembers the **first** violating round together with a minimal
//! human-readable report, so a failing fuzz seed immediately tells a reader
//! *what* broke, *when*, and *how*.

use std::collections::BTreeMap;
use telemetry::{EventKind, Telemetry};

/// The invariants the harnesses track.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// The overlay (minus blocked/failed nodes) forms one connected
    /// component.
    Connectivity,
    /// Every node's degree stays within the overlay's design bound.
    DegreeBound,
    /// Every group size stays inside the permitted band.
    GroupSizeBand,
    /// Every (non-empty) group has at least one available member.
    Availability,
    /// The adversary's block set respects its declared budget.
    BlockingBudget,
    /// The fraction of members that are crashed or desynchronized stays
    /// below the stale-membership bound.
    StaleBound,
    /// Every (non-empty) group has a strict majority of honest members, so
    /// quorum-confirmed decisions cannot be forged by Byzantine members.
    HonestMajority,
    /// No single supernode group concentrates more than its fair share of
    /// Sybil identities (the Sybil concentration bound).
    SybilConcentration,
    /// Honest joiners are not eclipsed: each join epoch, at least one
    /// honest joiner reached an honest introducer.
    EclipseExposure,
}

impl Invariant {
    /// Short stable name, used in reports and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::Connectivity => "connectivity",
            Invariant::DegreeBound => "degree-bound",
            Invariant::GroupSizeBand => "group-size-band",
            Invariant::Availability => "availability",
            Invariant::BlockingBudget => "blocking-budget",
            Invariant::StaleBound => "stale-bound",
            Invariant::HonestMajority => "honest-majority",
            Invariant::SybilConcentration => "sybil-concentration",
            Invariant::EclipseExposure => "eclipse-exposure",
        }
    }

    pub const ALL: [Invariant; 9] = [
        Invariant::Connectivity,
        Invariant::DegreeBound,
        Invariant::GroupSizeBand,
        Invariant::Availability,
        Invariant::BlockingBudget,
        Invariant::StaleBound,
        Invariant::HonestMajority,
        Invariant::SybilConcentration,
        Invariant::EclipseExposure,
    ];
}

/// One recorded violation: which invariant, at which round, with a short
/// description of the violating state.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// The round the violation was recorded (after any grace window).
    pub round: u64,
    /// Minimal description of the violating state.
    pub detail: String,
}

/// Violations kept verbatim; beyond this only counters grow.
const MAX_RECORDED: usize = 32;

/// Per-round invariant monitor with grace windows and first-violation
/// reporting.
#[derive(Clone, Debug, Default)]
pub struct InvariantMonitor {
    grace: BTreeMap<Invariant, u64>,
    streak: BTreeMap<Invariant, u64>,
    counts: BTreeMap<Invariant, u64>,
    first: Option<Violation>,
    recorded: Vec<Violation>,
    rounds: u64,
    /// Pure observability; recorded violations mirror into it as
    /// [`EventKind::Violation`] events.
    tel: Telemetry,
}

impl InvariantMonitor {
    /// A monitor with no grace anywhere: every failing check is a
    /// violation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allow `rounds` consecutive failing checks of `inv` before recording
    /// a violation (builder-style).
    pub fn with_grace(mut self, inv: Invariant, rounds: u64) -> Self {
        self.grace.insert(inv, rounds);
        self
    }

    /// Mirror recorded violations into a telemetry recorder as
    /// [`EventKind::Violation`] events plus `monitor.violations{invariant=..}`
    /// counters. Observability only: verdicts are unaffected.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Count a monitored round. Call once per overlay round before the
    /// round's `check` calls.
    pub fn begin_round(&mut self) {
        self.rounds += 1;
    }

    /// Feed one verdict. `detail` is only invoked when a violation is
    /// recorded, so expensive formatting costs nothing on the happy path.
    pub fn check(&mut self, inv: Invariant, round: u64, ok: bool, detail: impl FnOnce() -> String) {
        if ok {
            self.streak.insert(inv, 0);
            return;
        }
        let streak = self.streak.entry(inv).or_insert(0);
        *streak += 1;
        if *streak <= self.grace.get(&inv).copied().unwrap_or(0) {
            return;
        }
        *self.counts.entry(inv).or_insert(0) += 1;
        let v = Violation { invariant: inv, round, detail: detail() };
        self.tel.counter("monitor.violations", &[("invariant", inv.name())]).inc();
        self.tel
            .emit(round, EventKind::Violation, None, 0, || format!("{}: {}", inv.name(), v.detail));
        if self.first.is_none() {
            self.first = Some(v.clone());
        }
        if self.recorded.len() < MAX_RECORDED {
            self.recorded.push(v);
        }
    }

    /// True while nothing has been recorded.
    pub fn ok(&self) -> bool {
        self.first.is_none()
    }

    /// The first recorded violation, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.first.as_ref()
    }

    /// Recorded violations (capped; see counts for totals).
    pub fn violations(&self) -> &[Violation] {
        &self.recorded
    }

    /// Total violations recorded for `inv` (uncapped).
    pub fn count(&self, inv: Invariant) -> u64 {
        self.counts.get(&inv).copied().unwrap_or(0)
    }

    /// True when the most recent round left every checked invariant with a
    /// zero failing streak — the instantaneous "all green" signal the
    /// recovery layer keys its hysteresis on. Unlike [`Self::ok`] this
    /// forgives history: a monitor with past recorded violations is
    /// healthy again once current checks pass.
    pub fn healthy_round(&self) -> bool {
        self.streak.values().all(|&s| s == 0)
    }

    /// Consecutive failing rounds currently accumulated for `inv` (zero
    /// when its last check passed). Counts from the first failing round,
    /// i.e. inside the grace window too.
    pub fn failing_streak(&self, inv: Invariant) -> u64 {
        self.streak.get(&inv).copied().unwrap_or(0)
    }

    /// Total violations across all invariants (uncapped).
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Monitored rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Minimal report: the first violation plus per-invariant totals, or a
    /// clean bill of health.
    pub fn report(&self) -> String {
        match &self.first {
            None => format!("ok: no violations in {} rounds", self.rounds),
            Some(v) => {
                let mut totals = String::new();
                for inv in Invariant::ALL {
                    let c = self.count(inv);
                    if c > 0 {
                        if !totals.is_empty() {
                            totals.push_str(", ");
                        }
                        totals.push_str(&format!("{}={}", inv.name(), c));
                    }
                }
                format!(
                    "first violation: {} at round {} ({}); totals over {} rounds: {}",
                    v.invariant.name(),
                    v.round,
                    v.detail,
                    self.rounds,
                    totals,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_monitor_reports_ok() {
        let mut m = InvariantMonitor::new();
        for r in 0..10 {
            m.begin_round();
            m.check(Invariant::Connectivity, r, true, || unreachable!());
        }
        assert!(m.ok());
        assert_eq!(m.rounds(), 10);
        assert!(m.report().starts_with("ok:"));
    }

    #[test]
    fn first_violation_is_remembered_with_detail() {
        let mut m = InvariantMonitor::new();
        m.begin_round();
        m.check(Invariant::Connectivity, 3, false, || "2 components".into());
        m.begin_round();
        m.check(Invariant::Availability, 4, false, || "group 1 starved".into());
        let first = m.first_violation().expect("violation recorded");
        assert_eq!(first.invariant, Invariant::Connectivity);
        assert_eq!(first.round, 3);
        assert_eq!(first.detail, "2 components");
        assert_eq!(m.total(), 2);
        assert!(m.report().contains("connectivity at round 3"));
        assert!(m.report().contains("availability=1"));
    }

    #[test]
    fn grace_window_swallows_short_streaks() {
        let mut m = InvariantMonitor::new().with_grace(Invariant::Availability, 2);
        // Two failing rounds, then recovery: within grace, nothing recorded.
        for r in 0..2 {
            m.begin_round();
            m.check(Invariant::Availability, r, false, || "starved".into());
        }
        m.begin_round();
        m.check(Invariant::Availability, 2, true, || unreachable!());
        assert!(m.ok());
        // Three failing rounds in a row exceed the grace and record once
        // per round past it.
        for r in 3..6 {
            m.begin_round();
            m.check(Invariant::Availability, r, false, || "starved".into());
        }
        assert!(!m.ok());
        assert_eq!(m.first_violation().unwrap().round, 5);
        assert_eq!(m.count(Invariant::Availability), 1);
    }

    #[test]
    fn recording_is_capped_but_counts_are_not() {
        let mut m = InvariantMonitor::new();
        for r in 0..100 {
            m.begin_round();
            m.check(Invariant::DegreeBound, r, false, || format!("round {r}"));
        }
        assert_eq!(m.violations().len(), MAX_RECORDED);
        assert_eq!(m.count(Invariant::DegreeBound), 100);
        assert_eq!(m.total(), 100);
    }

    #[test]
    fn byzantine_invariants_have_stable_names() {
        // Experiment tables and fuzz reports key on these strings.
        assert_eq!(Invariant::HonestMajority.name(), "honest-majority");
        assert_eq!(Invariant::SybilConcentration.name(), "sybil-concentration");
        assert_eq!(Invariant::EclipseExposure.name(), "eclipse-exposure");
        let names: std::collections::BTreeSet<_> =
            Invariant::ALL.iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), Invariant::ALL.len(), "names must be distinct");
    }

    #[test]
    fn grace_is_per_invariant() {
        let mut m = InvariantMonitor::new().with_grace(Invariant::Availability, 5);
        m.begin_round();
        m.check(Invariant::Availability, 0, false, || "starved".into());
        m.check(Invariant::Connectivity, 0, false, || "split".into());
        assert_eq!(m.count(Invariant::Availability), 0);
        assert_eq!(m.count(Invariant::Connectivity), 1);
    }

    #[test]
    fn healthy_round_tracks_current_streaks_not_history() {
        let mut m = InvariantMonitor::new().with_grace(Invariant::Availability, 3);
        assert!(m.healthy_round());
        m.begin_round();
        // A failure inside the grace window is unhealthy *now*, even
        // though nothing is recorded yet.
        m.check(Invariant::Availability, 0, false, || "starved".into());
        assert!(!m.healthy_round());
        assert_eq!(m.failing_streak(Invariant::Availability), 1);
        assert!(m.ok(), "grace swallowed the record");
        // Recovery clears the streak; history (recorded or not) is
        // forgiven.
        m.begin_round();
        m.check(Invariant::Availability, 1, true, || unreachable!());
        assert!(m.healthy_round());
        assert_eq!(m.failing_streak(Invariant::Availability), 0);
    }
}
