//! Self-healing under composite faults.
//!
//! The paper's model has no message loss and no crashes: a blocked node is
//! silenced by the adversary but keeps its state, and the availability
//! precondition (every group keeps an available member) guarantees that
//! reconfiguration information reaches everyone. This module drives the
//! overlay families through the *beyond-model* faults of
//! [`overlay_adversary::faults::FaultSchedule`] — probabilistic loss of
//! reconfiguration broadcasts, crash-stop, crash-recovery with state loss —
//! and implements the self-healing the paper does not need:
//!
//! * **heartbeat staleness counters** — a member that stays silent for a
//!   configurable number of epochs is evicted (graceful degradation), so
//!   crash-stopped corpses do not accumulate in the membership;
//! * **re-requests with capped retry + exponential backoff** — a member
//!   that missed a reconfiguration broadcast (it is *desynchronized*: it no
//!   longer knows the current group structure) re-requests the assignment;
//!   each attempt is itself subject to message loss, attempts back off
//!   exponentially in rounds, and exhausting the retry budget evicts the
//!   node;
//! * **rejoin after crash-recovery** — a node that recovers after its
//!   membership was evicted re-enters through the family's ordinary join
//!   path.
//!
//! Without healing, desynchronization is *sticky*: the re-request protocol
//! is exactly what healing adds, so a node that missed the assignment never
//! learns the current structure — later broadcasts are routed within a
//! structure it no longer tracks. The no-healing control therefore
//! accumulates stale members until the availability precondition collapses,
//! reconfiguration freezes (a failed epoch does not resample), and the
//! overlay degrades — which is what the fuzz control tests and the
//! `exp_a5_fault_survival` benchmark demonstrate.
//!
//! One modeling line is held throughout: **paper-model DoS blocking never
//! desynchronizes anyone.** A blocked node keeps its state and the paper's
//! epoch protocol tolerates blocking by design; only beyond-model loss and
//! crashes cause state divergence. Healing timeouts are measured in epochs
//! so that a member legally blocked for a long stretch is not evicted
//! wrongly.

use crate::metrics::DosRoundMetrics;
use crate::monitor::{Invariant, InvariantMonitor};
use crate::reconfig::overlay::ExpanderOverlay;
use overlay_adversary::adaptive::Attacker;
use overlay_adversary::faults::FaultSchedule;
use overlay_adversary::lateness::TopologySnapshot;
use simnet::{BlockSet, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use telemetry::{EventKind, Phase, Telemetry};

/// The join path's delegate choice, shared by every overlay family: the
/// smallest-id member that is not excluded (pending leavers, the joiner
/// itself) acts as introducer. `None` when nobody qualifies.
pub fn smallest_live_introducer(
    members: &[NodeId],
    excluded: &[NodeId],
    joiner: NodeId,
) -> Option<NodeId> {
    members.iter().copied().filter(|v| *v != joiner && !excluded.contains(v)).min()
}

/// Tuning knobs of the self-healing layer.
#[derive(Clone, Copy, Debug)]
pub struct HealingParams {
    /// Epochs of continuous silence before a member is evicted. Measured
    /// in epochs (not rounds) because a `(1/2 - eps)`-bounded adversary may
    /// legally block the same node for many consecutive rounds; evicting
    /// paper-legally-blocked members would break the theorems' regime.
    pub heartbeat_epochs: u64,
    /// Maximum re-request attempts for a lost reconfiguration message.
    pub max_retries: u32,
    /// Rounds until the first retry; attempt `k` waits `base * 2^k`.
    pub backoff_base: u64,
}

impl Default for HealingParams {
    fn default() -> Self {
        Self { heartbeat_epochs: 3, max_retries: 5, backoff_base: 1 }
    }
}

/// Capped exponential backoff: attempt `k` waits `min(base << k, cap)`
/// rounds. The healing retry ladder uses it uncapped (its retry budget is
/// small, so the exponential never runs away); the recovery layer caps it
/// so a long rejoin storm keeps retrying at a bounded cadence instead of
/// backing off past the horizon.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// Delay of attempt 0, in rounds (floored to 1).
    pub base: u64,
    /// Upper bound on any delay.
    pub cap: u64,
}

impl Backoff {
    /// Exponential backoff with no cap.
    pub fn uncapped(base: u64) -> Self {
        Self { base, cap: u64::MAX }
    }

    /// Exponential backoff capped at `cap` rounds.
    pub fn capped(base: u64, cap: u64) -> Self {
        Self { base, cap }
    }

    /// Rounds to wait after attempt number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> u64 {
        self.base.max(1).checked_shl(attempt).unwrap_or(u64::MAX).min(self.cap)
    }
}

/// Aggregate healing statistics of a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct HealingStats {
    /// Members that lost a reconfiguration broadcast.
    pub desync_events: u64,
    /// Re-request attempts sent.
    pub retries: u64,
    /// Re-requests that succeeded (member resynchronized).
    pub resyncs: u64,
    /// Members whose retry budget ran out.
    pub exhausted: u64,
    /// Members evicted (stale heartbeat or exhausted retries).
    pub evictions: u64,
    /// Recovered nodes re-admitted via the join path.
    pub rejoins: u64,
    /// Crash events injected by the schedule.
    pub crashes: u64,
}

/// What happened when a crashed node was returned to the overlay via
/// [`FaultyRunner::return_node`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReturnOutcome {
    /// Its membership had been evicted while it was down; it re-entered
    /// through the join path.
    Rejoined,
    /// Still a member, but its state is lost: it came back
    /// desynchronized.
    Desynced,
    /// It was not down — nothing to do.
    Ignored,
}

/// Outcome of one re-request attempt.
enum RetryOutcome {
    /// The assignment arrived; the member is synchronized again.
    Resynced,
    /// Lost again; the member backs off and will retry later.
    Backoff,
    /// The retry budget is spent; the member gives up.
    Exhausted,
}

#[derive(Clone, Debug)]
struct RetryState {
    attempts: u32,
    next_due: u64,
}

/// Per-member failure-detection state: staleness counters and retry
/// schedules.
#[derive(Clone, Debug)]
pub struct HealthTracker {
    timeout_epochs: u64,
    /// Multiplier on `timeout_epochs`, normally 1. The recovery layer's
    /// SafeMode widens heartbeat timeouts through this so that burst
    /// victims expected back within the storm window are not evicted
    /// mid-storm (an eviction turns a free desync-return into a join).
    timeout_factor: u64,
    max_retries: u32,
    backoff_base: u64,
    /// Consecutive epochs of silence per member (bumped at boundaries).
    staleness: BTreeMap<NodeId, u64>,
    /// Members currently re-requesting the assignment.
    retries: BTreeMap<NodeId, RetryState>,
    /// Members that missed a reconfiguration broadcast and have not yet
    /// recovered the current structure.
    desynced: BTreeSet<NodeId>,
    /// Aggregate counters.
    pub stats: HealingStats,
}

impl HealthTracker {
    /// Build a tracker from the healing parameters.
    pub fn new(params: HealingParams) -> Self {
        Self {
            timeout_epochs: params.heartbeat_epochs.max(1),
            timeout_factor: 1,
            max_retries: params.max_retries.max(1),
            backoff_base: params.backoff_base.max(1),
            staleness: BTreeMap::new(),
            retries: BTreeMap::new(),
            desynced: BTreeSet::new(),
            stats: HealingStats::default(),
        }
    }

    /// Record that `v` missed a reconfiguration broadcast. With healing,
    /// this schedules its first re-request; without, the desync is sticky.
    fn mark_desynced(&mut self, v: NodeId, round: u64, healing: bool) {
        if self.desynced.insert(v) {
            self.stats.desync_events += 1;
        }
        if healing {
            self.retries
                .entry(v)
                .or_insert(RetryState { attempts: 0, next_due: round + self.backoff_base });
        }
    }

    /// Members currently desynchronized (sorted).
    pub fn desynced(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.desynced.iter().copied()
    }

    /// Number of desynchronized members.
    pub fn desynced_len(&self) -> usize {
        self.desynced.len()
    }

    /// Members whose next re-request is due at `round` (sorted).
    fn due_retries(&self, round: u64) -> Vec<NodeId> {
        self.retries.iter().filter(|(_, s)| s.next_due <= round).map(|(&v, _)| v).collect()
    }

    /// Account one re-request attempt for `v`.
    fn note_retry(&mut self, v: NodeId, round: u64, success: bool) -> RetryOutcome {
        self.stats.retries += 1;
        let state = self.retries.get_mut(&v).expect("retry state exists");
        state.attempts += 1;
        if success {
            self.retries.remove(&v);
            self.desynced.remove(&v);
            self.stats.resyncs += 1;
            RetryOutcome::Resynced
        } else if state.attempts >= self.max_retries {
            self.stats.exhausted += 1;
            RetryOutcome::Exhausted
        } else {
            state.next_due = round + Backoff::uncapped(self.backoff_base).delay(state.attempts);
            RetryOutcome::Backoff
        }
    }

    /// Resynchronize `v` out of band (e.g. the recovery layer's
    /// reconciliation delivered the assignment reliably). Returns whether
    /// `v` was actually desynchronized.
    fn resync(&mut self, v: NodeId) -> bool {
        let was = self.desynced.remove(&v);
        if was {
            self.retries.remove(&v);
            self.stats.resyncs += 1;
        }
        was
    }

    /// Bump epoch-granularity staleness counters: `silent` holds the
    /// members that produced no heartbeat this epoch. Members in an active
    /// retry exchange are being healed, not suspected — their counters do
    /// not advance. Returns the members whose silence outlived the timeout
    /// (the caller evicts them).
    fn observe_epoch(&mut self, members: &[NodeId], silent: &BTreeSet<NodeId>) -> Vec<NodeId> {
        let mut evict = Vec::new();
        for &v in members {
            if silent.contains(&v) && !self.retries.contains_key(&v) {
                let c = self.staleness.entry(v).or_insert(0);
                *c += 1;
                if *c >= self.timeout_epochs.saturating_mul(self.timeout_factor.max(1)) {
                    evict.push(v);
                }
            } else {
                self.staleness.remove(&v);
            }
        }
        for v in &evict {
            self.forget(*v);
        }
        evict
    }

    /// Drop all state about `v` (evicted or crashed).
    fn forget(&mut self, v: NodeId) {
        self.staleness.remove(&v);
        self.retries.remove(&v);
        self.desynced.remove(&v);
    }
}

/// The round-stepped overlay interface the healing runner drives: both
/// group families ([`crate::dos::overlay::DosOverlay`] and
/// [`crate::churndos::overlay::ChurnDosOverlay`]) expose exactly this
/// shape, with the impls living next to each overlay. The epoch-level
/// expander family has its own runner ([`ExpanderFaultRun`]).
pub trait HealableOverlay {
    /// Current members in ascending id order.
    fn members_sorted(&self) -> Vec<NodeId>;
    /// Member count.
    fn len(&self) -> usize;
    /// True when no members remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Rounds executed so far.
    fn round(&self) -> u64;
    /// Rounds per epoch.
    fn epoch_len(&self) -> u64;
    /// Completed epochs (successful or failed).
    fn epochs(&self) -> u64;
    /// Epochs that failed the availability precondition.
    fn failed_epochs(&self) -> u64;
    /// Topology snapshot for the (late) adversary.
    fn snapshot(&self, round: u64) -> TopologySnapshot;
    /// Execute one overlay round under the given block set.
    fn step_overlay(&mut self, blocked: &BlockSet) -> DosRoundMetrics;
    /// Remove a member (graceful degradation).
    fn evict(&mut self, v: NodeId);
    /// Re-admit a recovered node via the family's join path (may be
    /// deferred to the next reconfiguration).
    fn rejoin(&mut self, v: NodeId);
    /// Family-specific structural check beyond connectivity; `None` = ok.
    fn structure_violation(&self) -> Option<String>;
}

/// Drives a round-stepped overlay through a composite fault schedule with
/// (or, as a control, without) self-healing, checking the invariants every
/// round.
pub struct FaultyRunner<O: HealableOverlay> {
    /// The overlay under test.
    pub overlay: O,
    schedule: FaultSchedule,
    tracker: HealthTracker,
    /// Per-round invariant verdicts.
    pub monitor: InvariantMonitor,
    healing: bool,
    /// Declared adversary budget, checked as the blocking-budget invariant.
    dos_bound: Option<f64>,
    /// Crashed nodes -> recovery round (`u64::MAX` = crash-stop).
    down: BTreeMap<NodeId, u64>,
    /// Crashed nodes whose membership was evicted while they were down.
    evicted_while_down: BTreeSet<NodeId>,
    /// Pure observability: mirrors the healing protocol's decisions as
    /// events and `heal.*` counters; never consulted by the protocol.
    tel: Telemetry,
}

impl<O: HealableOverlay> FaultyRunner<O> {
    /// Wrap an overlay. `healing = false` is the degradation control: the
    /// same faults are injected but nobody re-requests, evicts or rejoins.
    pub fn new(overlay: O, schedule: FaultSchedule, params: HealingParams, healing: bool) -> Self {
        let epoch_len = overlay.epoch_len();
        let monitor = InvariantMonitor::new()
            // Availability gets one epoch of grace: a transiently starved
            // group only matters if it stays starved long enough to fail
            // the epoch's precondition.
            .with_grace(Invariant::Availability, epoch_len)
            .with_grace(Invariant::StaleBound, epoch_len);
        Self {
            overlay,
            schedule,
            tracker: HealthTracker::new(params),
            monitor,
            healing,
            dos_bound: None,
            down: BTreeMap::new(),
            evicted_while_down: BTreeSet::new(),
            tel: Telemetry::disabled(),
        }
    }

    /// Declare the adversary's blocking budget so the monitor can check it.
    pub fn with_dos_bound(mut self, bound: f64) -> Self {
        self.dos_bound = Some(bound);
        self
    }

    /// Attach a telemetry recorder (builder-style). The recorder also
    /// propagates to the invariant monitor; attaching one never changes a
    /// protocol decision or an overlay digest.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.monitor.set_telemetry(tel.clone());
        self.tel = tel;
        self
    }

    /// One healing decision: event plus a matching `heal.<what>` counter.
    fn heal_event(&self, round: u64, kind: EventKind, what: &'static str, v: NodeId, value: u64) {
        if self.tel.enabled() {
            self.tel.counter("heal.events", &[("what", what)]).inc();
            self.tel.emit(round, kind, Some(v.raw()), value, String::new);
        }
    }

    /// Healing statistics accumulated so far.
    pub fn stats(&self) -> HealingStats {
        self.tracker.stats
    }

    /// Members currently crashed.
    pub fn down_len(&self) -> usize {
        self.down.len()
    }

    /// Members currently desynchronized.
    pub fn desynced_len(&self) -> usize {
        self.tracker.desynced_len()
    }

    // -- recovery-layer hooks ------------------------------------------------
    //
    // The catastrophic-recovery layer (`crate::recovery`) owns *when* burst
    // victims crash and return; these hooks let it act through the same
    // bookkeeping the schedule-driven path uses, so stats, telemetry and
    // digests stay coherent. None of them is called on the ordinary path —
    // a runner that never sees them behaves bit-identically to before.

    /// Crash-stop `v` right now (burst injection). The node stays down
    /// until [`Self::return_node`] or [`Self::abandon`]; the internal
    /// schedule-driven recovery never fires for it. No-op when `v` is
    /// already down.
    pub fn force_crash(&mut self, v: NodeId) {
        if self.down.contains_key(&v) {
            return;
        }
        let round = self.overlay.round();
        self.down.insert(v, u64::MAX);
        self.tracker.stats.crashes += 1;
        self.tracker.forget(v);
        self.heal_event(round, EventKind::Crash, "crash", v, u64::MAX);
    }

    /// Return a crashed node to the overlay: a rejoin if its membership
    /// was evicted while it was down, otherwise a desynchronized comeback
    /// (its state is lost either way). The caller — not the healing
    /// flag — decides that the join happens; use [`Self::abandon`] for the
    /// no-recovery arm's rejected joiners.
    pub fn return_node(&mut self, v: NodeId) -> ReturnOutcome {
        if self.down.remove(&v).is_none() {
            return ReturnOutcome::Ignored;
        }
        let round = self.overlay.round();
        if self.evicted_while_down.remove(&v) {
            self.overlay.rejoin(v);
            self.tracker.stats.rejoins += 1;
            self.heal_event(round, EventKind::Rejoin, "rejoin", v, 0);
            ReturnOutcome::Rejoined
        } else {
            self.tracker.mark_desynced(v, round, self.healing);
            self.heal_event(round, EventKind::Desync, "desync", v, 0);
            ReturnOutcome::Desynced
        }
    }

    /// Forget a crashed node entirely: it neither returns nor rejoins
    /// (a permanently orphaned storm victim in the no-recovery control).
    pub fn abandon(&mut self, v: NodeId) {
        self.down.remove(&v);
        self.evicted_while_down.remove(&v);
        self.tracker.forget(v);
    }

    /// Mark a live member desynchronized right now (partition-heal: the
    /// minority side missed reconfigurations during the window).
    pub fn mark_desynced_now(&mut self, v: NodeId) {
        let round = self.overlay.round();
        self.tracker.mark_desynced(v, round, self.healing);
        self.heal_event(round, EventKind::Desync, "desync", v, 2);
    }

    /// Resynchronize a member out of band (reconciliation delivered the
    /// assignment reliably). Returns whether it was desynchronized.
    pub fn force_resync(&mut self, v: NodeId) -> bool {
        let was = self.tracker.resync(v);
        if was {
            self.heal_event(self.overlay.round(), EventKind::Resync, "resync", v, 1);
        }
        was
    }

    /// Widen (or restore) the heartbeat timeout: silence is tolerated for
    /// `factor * heartbeat_epochs` epochs. SafeMode sets this above 1 so
    /// storm victims due back shortly are not evicted mid-storm.
    pub fn set_heartbeat_factor(&mut self, factor: u64) {
        self.tracker.timeout_factor = factor.max(1);
    }

    /// Is `v` currently crashed?
    pub fn is_down(&self, v: NodeId) -> bool {
        self.down.contains_key(&v)
    }

    /// Was the crashed `v`'s membership evicted while it was down (so a
    /// return needs the join path)?
    pub fn was_evicted_while_down(&self, v: NodeId) -> bool {
        self.evicted_while_down.contains(&v)
    }

    /// The declared adversary blocking budget, if any.
    pub fn dos_bound(&self) -> Option<f64> {
        self.dos_bound
    }

    /// Is the self-healing layer active (vs the degradation control)?
    pub fn healing_enabled(&self) -> bool {
        self.healing
    }

    /// Execute one round: inject recoveries and fresh crashes, run the
    /// healing protocol, step the overlay under the *effective* block set
    /// (adversary ∪ crashed ∪ desynced — a desynchronized node cannot
    /// participate: it does not know the current structure), then draw
    /// reconfiguration-broadcast losses if an epoch boundary resampled,
    /// and feed the invariant monitor.
    pub fn step(&mut self, dos_blocked: &BlockSet) -> DosRoundMetrics {
        let round = self.overlay.round(); // round about to execute
        let epochs_before = self.overlay.epochs();
        let failed_before = self.overlay.failed_epochs();
        let healing_phase = self.tel.phase(Phase::Healing);

        // Crash-recoveries due this round.
        let due: Vec<NodeId> =
            self.down.iter().filter(|&(_, &r)| r <= round).map(|(&v, _)| v).collect();
        for v in due {
            self.down.remove(&v);
            if self.evicted_while_down.remove(&v) {
                // Its membership is gone; only healing re-admits it.
                if self.healing {
                    self.overlay.rejoin(v);
                    self.tracker.stats.rejoins += 1;
                    self.heal_event(round, EventKind::Rejoin, "rejoin", v, 0);
                }
            } else {
                // Still a member, but its state is lost: it no longer
                // knows the current group structure.
                self.tracker.mark_desynced(v, round, self.healing);
                self.heal_event(round, EventKind::Desync, "desync", v, 0);
            }
        }

        // Fresh crashes among live members.
        let members = self.overlay.members_sorted();
        let up: Vec<NodeId> =
            members.iter().copied().filter(|v| !self.down.contains_key(v)).collect();
        for v in self.schedule.draw_crashes(&up, members.len()) {
            let back = self.schedule.recover_after().map_or(u64::MAX, |k| round + k);
            self.down.insert(v, back);
            self.tracker.stats.crashes += 1;
            // Whatever retry conversation it had is lost with its state.
            self.tracker.forget(v);
            self.heal_event(round, EventKind::Crash, "crash", v, back);
        }

        if self.healing {
            // Due re-requests: each attempt is one message exchange,
            // itself subject to loss.
            for v in self.tracker.due_retries(round) {
                let success = !self.schedule.lose_message();
                self.heal_event(round, EventKind::RetryAttempt, "retry", v, u64::from(success));
                match self.tracker.note_retry(v, round, success) {
                    RetryOutcome::Resynced => {
                        self.heal_event(round, EventKind::Resync, "resync", v, 0);
                    }
                    RetryOutcome::Backoff => {}
                    RetryOutcome::Exhausted => {
                        self.tracker.forget(v);
                        self.overlay.evict(v);
                        self.tracker.stats.evictions += 1;
                        self.heal_event(round, EventKind::RetryExhausted, "exhausted", v, 0);
                        self.heal_event(round, EventKind::Eviction, "eviction", v, 0);
                    }
                }
            }
            // Heartbeat staleness, bumped once per epoch: from the group's
            // point of view a crashed, desynced or blocked member is just
            // silent; retrying members are exempt (the healing exchange is
            // their heartbeat).
            if round > 0 && round % self.overlay.epoch_len() == 0 {
                let mut silent: BTreeSet<NodeId> = self.down.keys().copied().collect();
                silent.extend(dos_blocked.iter());
                silent.extend(self.tracker.desynced());
                let members_now = self.overlay.members_sorted();
                for v in self.tracker.observe_epoch(&members_now, &silent) {
                    self.overlay.evict(v);
                    self.tracker.stats.evictions += 1;
                    if self.down.contains_key(&v) {
                        self.evicted_while_down.insert(v);
                    }
                    self.heal_event(round, EventKind::Eviction, "eviction", v, 1);
                }
            }
        }
        drop(healing_phase);

        // Effective silence: adversary blocking plus crashed plus
        // desynchronized members.
        let mut eff = dos_blocked.clone();
        for &v in self.down.keys() {
            eff.insert(v);
        }
        for v in self.tracker.desynced() {
            eff.insert(v);
        }

        let m = self.overlay.step_overlay(&eff);

        // If the boundary just resampled (epochs advanced, no new failed
        // epoch), every live member must learn its fresh assignment; each
        // broadcast is subject to loss. A failed epoch keeps the stale
        // structure, so there is nothing new to miss — and nothing that
        // would resynchronize anyone either.
        if self.overlay.epochs() > epochs_before && self.overlay.failed_epochs() == failed_before {
            for v in self.overlay.members_sorted() {
                if !self.down.contains_key(&v) && self.schedule.lose_message() {
                    self.tracker.mark_desynced(v, m.round, self.healing);
                    self.heal_event(m.round, EventKind::Desync, "desync", v, 1);
                }
            }
        }

        let _monitor_phase = self.tel.phase(Phase::Monitor);
        self.monitor.begin_round();
        self.monitor.check(Invariant::Connectivity, m.round, m.connected, || {
            format!("effective block set of {} silences a cut", eff.len())
        });
        self.monitor.check(Invariant::Availability, m.round, m.min_group_available > 0, || {
            "a group has no available member".to_string()
        });
        let structure = self.overlay.structure_violation();
        self.monitor.check(Invariant::GroupSizeBand, m.round, structure.is_none(), || {
            structure.clone().unwrap_or_default()
        });
        let stale = self.tracker.desynced_len()
            + self.down.keys().filter(|v| !self.evicted_while_down.contains(v)).count();
        let n_now = self.overlay.len().max(1);
        self.monitor.check(Invariant::StaleBound, m.round, stale * 2 <= n_now, || {
            format!("{stale} of {n_now} members crashed or desynchronized")
        });
        m
    }

    /// Drive the overlay against any [`Attacker`] — oblivious or adaptive —
    /// for `rounds` rounds. The blocking budget is judged here, against the
    /// population the adversary was given — healing may shrink the
    /// membership inside the subsequent step without retroactively
    /// delegitimizing the block set.
    pub fn run<A: Attacker>(&mut self, adversary: &mut A, rounds: u64) {
        for _ in 0..rounds {
            let round = self.overlay.round();
            adversary.observe(self.overlay.snapshot(round));
            let n = self.overlay.len();
            let blocked = adversary.block(round, n);
            if let Some(bound) = self.dos_bound {
                self.monitor.check(
                    Invariant::BlockingBudget,
                    round,
                    blocked.within_bound(bound, n),
                    || format!("{} blocked of {n} (bound {bound:.3})", blocked.len()),
                );
            }
            self.step(&blocked);
        }
    }
}

/// Epoch-level fault runner for the expander family: crash and loss events
/// are drawn per epoch, retries are compressed into the epoch they belong
/// to (the epoch is `Theta(log log n)` rounds — room for a full backoff
/// ladder), and connectivity is judged on the H-graph minus the silent
/// members.
pub struct ExpanderFaultRun {
    /// The overlay under test.
    pub overlay: ExpanderOverlay,
    schedule: FaultSchedule,
    params: HealingParams,
    /// Per-epoch invariant verdicts (`round` = epoch number).
    pub monitor: InvariantMonitor,
    healing: bool,
    /// Crashed nodes -> recovery epoch (`u64::MAX` = crash-stop).
    down: BTreeMap<NodeId, u64>,
    desynced: BTreeSet<NodeId>,
    evicted_while_down: BTreeSet<NodeId>,
    staleness: BTreeMap<NodeId, u64>,
    /// Rounds of the last completed epoch (converts crash-recovery
    /// downtimes from rounds to epochs).
    last_epoch_rounds: u64,
    /// Aggregate healing counters.
    pub stats: HealingStats,
}

impl ExpanderFaultRun {
    /// Wrap an overlay; `healing = false` is the degradation control.
    pub fn new(
        overlay: ExpanderOverlay,
        schedule: FaultSchedule,
        params: HealingParams,
        healing: bool,
    ) -> Self {
        Self {
            overlay,
            schedule,
            params,
            monitor: InvariantMonitor::new(),
            healing,
            down: BTreeMap::new(),
            desynced: BTreeSet::new(),
            evicted_while_down: BTreeSet::new(),
            staleness: BTreeMap::new(),
            last_epoch_rounds: 16,
            stats: HealingStats::default(),
        }
    }

    /// Members currently desynchronized.
    pub fn desynced_len(&self) -> usize {
        self.desynced.len()
    }

    /// Members currently crashed or desynchronized (the functionally dead).
    fn dead(&self) -> BTreeSet<NodeId> {
        let mut dead: BTreeSet<NodeId> = self.down.keys().copied().collect();
        dead.extend(self.desynced.iter().copied());
        dead
    }

    /// Run one reconfiguration epoch under the fault schedule.
    pub fn run_epoch(&mut self) {
        let epoch = self.overlay.epoch();

        // Crash-recoveries due this epoch.
        let due: Vec<NodeId> =
            self.down.iter().filter(|&(_, &e)| e <= epoch).map(|(&v, _)| v).collect();
        for v in due {
            self.down.remove(&v);
            if self.evicted_while_down.remove(&v) {
                if self.healing {
                    self.overlay.rejoin(v);
                    self.stats.rejoins += 1;
                }
            } else if self.desynced.insert(v) {
                self.stats.desync_events += 1;
            }
        }

        // Fresh crashes among live members.
        let mut members: Vec<NodeId> = self.overlay.members().to_vec();
        members.sort_unstable();
        let up: Vec<NodeId> =
            members.iter().copied().filter(|v| !self.down.contains_key(v)).collect();
        let epochs_down =
            self.schedule.recover_after().map(|rounds| 1 + rounds / self.last_epoch_rounds.max(1));
        for v in self.schedule.draw_crashes(&up, members.len()) {
            self.down.insert(v, epochs_down.map_or(u64::MAX, |k| epoch + k));
            self.stats.crashes += 1;
        }

        // Heartbeat staleness: crashed members go silent; desynced ones
        // are in the retry exchange (their heartbeat) unless healing is
        // off, in which case nobody watches anyway.
        if self.healing {
            for &v in &members {
                if self.down.contains_key(&v) {
                    let c = self.staleness.entry(v).or_insert(0);
                    *c += 1;
                    if *c >= self.params.heartbeat_epochs {
                        self.overlay.evict(v);
                        self.evicted_while_down.insert(v);
                        self.staleness.remove(&v);
                        self.stats.evictions += 1;
                    }
                } else {
                    self.staleness.remove(&v);
                }
            }
        }

        let metrics = self.overlay.reconfigure();
        self.last_epoch_rounds = metrics.rounds.max(1);

        // The epoch's closing broadcast announces the fresh topology to
        // each synchronized live member independently, subject to loss.
        // Desync is *sticky*: a member that missed an earlier broadcast no
        // longer tracks the structure later announcements are routed
        // through, so it cannot hear them either — recovering it is
        // exactly what the healing re-request does.
        self.desynced.retain(|v| self.overlay.graph().contains(*v));
        let mut now_members: Vec<NodeId> = self.overlay.members().to_vec();
        now_members.sort_unstable();
        for v in now_members {
            if self.down.contains_key(&v) || self.desynced.contains(&v) {
                continue;
            }
            if self.schedule.lose_message() && self.desynced.insert(v) {
                self.stats.desync_events += 1;
            }
        }
        // Healing: compressed retry ladder within the epoch, covering
        // every desynchronized live member — fresh broadcast losses and
        // just-recovered nodes alike. Exhaustion evicts for good.
        if self.healing {
            let pending: Vec<NodeId> =
                self.desynced.iter().copied().filter(|v| !self.down.contains_key(v)).collect();
            for v in pending {
                let mut synced = false;
                for _ in 0..self.params.max_retries {
                    self.stats.retries += 1;
                    if !self.schedule.lose_message() {
                        synced = true;
                        break;
                    }
                }
                self.desynced.remove(&v);
                if synced {
                    self.stats.resyncs += 1;
                } else {
                    self.stats.exhausted += 1;
                    self.overlay.evict(v);
                    self.stats.evictions += 1;
                }
            }
        }

        // Invariants, judged per epoch on the functional graph: members
        // minus the crashed and desynchronized.
        let dead = self.dead();
        let e = self.overlay.epoch();
        self.monitor.begin_round();
        self.monitor.check(Invariant::Connectivity, e, self.connected_minus_dead(&dead), || {
            format!("graph minus {} dead members is disconnected", dead.len())
        });
        let d = self.overlay.graph().degree();
        let degree_ok =
            self.overlay.members().iter().all(|&v| self.overlay.graph().neighbors(v).len() == d);
        self.monitor.check(Invariant::DegreeBound, e, degree_ok, || {
            format!("a member's degree deviates from d = {d}")
        });
        let n = self.overlay.members().len().max(1);
        let stale = self.overlay.members().iter().filter(|v| dead.contains(v)).count();
        self.monitor.check(Invariant::StaleBound, e, stale * 2 <= n, || {
            format!("{stale} of {n} members crashed or desynchronized")
        });
    }

    /// Is the H-graph restricted to non-dead members connected? Vacuously
    /// true when fewer than two live members remain.
    fn connected_minus_dead(&self, dead: &BTreeSet<NodeId>) -> bool {
        let graph = self.overlay.graph();
        let live: Vec<NodeId> =
            self.overlay.members().iter().copied().filter(|v| !dead.contains(v)).collect();
        if live.len() <= 1 {
            return true;
        }
        let live_set: BTreeSet<NodeId> = live.iter().copied().collect();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue = vec![live[0]];
        seen.insert(live[0]);
        while let Some(v) = queue.pop() {
            for w in graph.neighbors(v) {
                if live_set.contains(&w) && seen.insert(w) {
                    queue.push(w);
                }
            }
        }
        seen.len() == live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churndos::overlay::{ChurnDosOverlay, ChurnDosParams};
    use crate::config::SamplingParams;
    use crate::dos::overlay::{DosOverlay, DosParams};
    use overlay_adversary::dos::{DosAdversary, DosStrategy};

    fn sched(seed: u64, loss: f64, hazard: f64, recover: Option<u64>) -> FaultSchedule {
        FaultSchedule::new(seed, loss, hazard, recover, 0.1)
    }

    #[test]
    fn faultless_schedule_is_the_identity() {
        // A null schedule with healing on must reproduce the plain run.
        let mut plain = DosOverlay::new(512, DosParams::default(), 1);
        let mut runner = FaultyRunner::new(
            DosOverlay::new(512, DosParams::default(), 1),
            sched(9, 0.0, 0.0, None),
            HealingParams::default(),
            true,
        );
        for _ in 0..3 * plain.epoch_len() {
            let b = BlockSet::none();
            plain.step(&b);
            runner.step(&b);
        }
        assert_eq!(plain.state_digest(), runner.overlay.state_digest());
        assert!(runner.monitor.ok(), "{}", runner.monitor.report());
        let s = runner.stats();
        assert_eq!(
            (s.crashes, s.desync_events, s.evictions, s.rejoins, s.retries),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn healing_survives_loss_and_crashes() {
        let ov = DosOverlay::new(512, DosParams::default(), 2);
        let epoch_len = ov.epoch_len();
        let mut runner = FaultyRunner::new(
            ov,
            sched(3, 0.25, 0.001, Some(2 * epoch_len)),
            HealingParams::default(),
            true,
        )
        .with_dos_bound(0.3);
        let mut adv = DosAdversary::new(DosStrategy::Random, 0.3, 2 * epoch_len, 5);
        runner.run(&mut adv, 6 * epoch_len);
        assert_eq!(runner.monitor.count(Invariant::Connectivity), 0, "{}", runner.monitor.report());
        assert_eq!(runner.monitor.count(Invariant::GroupSizeBand), 0);
        let s = runner.stats();
        assert!(s.desync_events > 0, "loss at 0.25 must desync someone");
        assert!(s.resyncs > 0, "retries must succeed sometimes");
    }

    #[test]
    fn no_healing_control_degrades() {
        // Same fault pressure, no healing: desync is sticky, corpses stay
        // members, and the stale-membership bound must eventually fall.
        let ov = DosOverlay::new(512, DosParams::default(), 2);
        let epoch_len = ov.epoch_len();
        let mut runner =
            FaultyRunner::new(ov, sched(3, 0.35, 0.002, None), HealingParams::default(), false);
        let mut adv = DosAdversary::new(DosStrategy::Random, 0.3, 2 * epoch_len, 5);
        runner.run(&mut adv, 10 * epoch_len);
        assert!(!runner.monitor.ok(), "control run should violate an invariant");
        assert_eq!(runner.stats().retries, 0, "control must not heal");
    }

    #[test]
    fn recovered_node_rejoins_via_join_path() {
        // Crash one era long enough for the heartbeat to evict, then watch
        // the node rejoin after recovery.
        let ov = ChurnDosOverlay::new(600, ChurnDosParams::default(), 3);
        let epoch_len = ov.epoch_len();
        let params = HealingParams { heartbeat_epochs: 1, ..HealingParams::default() };
        let mut runner =
            FaultyRunner::new(ov, sched(11, 0.0, 0.004, Some(4 * epoch_len)), params, true);
        for _ in 0..8 * epoch_len {
            runner.step(&BlockSet::none());
        }
        let s = runner.stats();
        assert!(s.crashes > 0, "hazard 0.004 over 8 epochs must crash someone");
        assert!(s.evictions > 0, "1-epoch heartbeat must evict crashed members");
        assert!(s.rejoins > 0, "recovered nodes must rejoin");
        assert!(runner.monitor.count(Invariant::Connectivity) == 0, "{}", runner.monitor.report());
    }

    #[test]
    fn retry_exhaustion_fires_exactly_at_the_cap() {
        // attempts == max_retries is the first exhausted attempt — not one
        // earlier, not one later.
        let params = HealingParams { heartbeat_epochs: 3, max_retries: 3, backoff_base: 1 };
        let mut t = HealthTracker::new(params);
        let v = NodeId(7);
        t.mark_desynced(v, 0, true);
        // Attempts 1 and 2 fail: still backing off.
        for k in 1..3u64 {
            match t.note_retry(v, k, false) {
                RetryOutcome::Backoff => {}
                _ => panic!("attempt {k} of 3 must back off"),
            }
        }
        // Attempt 3 == max_retries: exhausted even though it also failed.
        assert!(matches!(t.note_retry(v, 3, false), RetryOutcome::Exhausted));
        assert_eq!(t.stats.exhausted, 1);
        assert_eq!(t.stats.retries, 3);
        // A success on the final attempt resyncs instead of exhausting.
        let mut t2 = HealthTracker::new(params);
        t2.mark_desynced(v, 0, true);
        let _ = t2.note_retry(v, 1, false);
        let _ = t2.note_retry(v, 2, false);
        assert!(matches!(t2.note_retry(v, 3, true), RetryOutcome::Resynced));
        assert_eq!(t2.stats.exhausted, 0);
        assert_eq!(t2.desynced_len(), 0);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let params = HealingParams { heartbeat_epochs: 3, max_retries: 5, backoff_base: 2 };
        let mut t = HealthTracker::new(params);
        let v = NodeId(1);
        t.mark_desynced(v, 10, true);
        // First retry due at 10 + base.
        assert_eq!(t.due_retries(11), vec![] as Vec<NodeId>);
        assert_eq!(t.due_retries(12), vec![v]);
        // Failed attempt k reschedules base << k rounds out.
        let _ = t.note_retry(v, 12, false);
        assert_eq!(t.due_retries(15), vec![] as Vec<NodeId>);
        assert_eq!(t.due_retries(16), vec![v]); // 12 + (2 << 1)
        let _ = t.note_retry(v, 16, false);
        assert_eq!(t.due_retries(23), vec![] as Vec<NodeId>);
        assert_eq!(t.due_retries(24), vec![v]); // 16 + (2 << 2)
    }

    #[test]
    fn double_eviction_is_a_noop_everywhere() {
        use crate::healing::HealableOverlay as _;
        // DosOverlay: evicting an evicted (now unknown) node changes nothing.
        let mut dos = DosOverlay::new(256, DosParams::default(), 4);
        let victim = dos.members_sorted()[0];
        dos.evict(victim);
        let digest = dos.state_digest();
        let n = dos.len();
        dos.evict(victim);
        assert_eq!((dos.len(), dos.state_digest()), (n, digest));

        // ChurnDosOverlay likewise.
        let mut cd = ChurnDosOverlay::new(600, ChurnDosParams::default(), 4);
        let victim = cd.members()[0];
        cd.evict(victim);
        let digest = cd.state_digest();
        cd.evict(victim);
        assert_eq!(cd.state_digest(), digest);

        // ExpanderOverlay: pending-leave dedup plus non-member no-op.
        let mut ex = ExpanderOverlay::new(16, 8, crate::config::SamplingParams::default(), 4);
        let victim = ex.members()[0];
        ex.evict(victim);
        let digest = ex.state_digest();
        ex.evict(victim);
        assert_eq!(ex.state_digest(), digest);
        ex.evict(NodeId(999_999)); // never a member
        assert_eq!(ex.state_digest(), digest);
    }

    #[test]
    fn rejoin_racing_a_fresh_crash_does_not_double_enqueue() {
        // A node is evicted, rejoins, and "crashes + rejoins" again within
        // the same epoch: the join path must hold exactly one entry for it,
        // and a rejoin of a still-standing member must be a no-op.
        let mut cd = ChurnDosOverlay::new(600, ChurnDosParams::default(), 5);
        let v = cd.members()[0];
        cd.evict(v);
        cd.rejoin(v);
        let digest = cd.state_digest();
        cd.rejoin(v); // second rejoin in the same epoch: already pending
        assert_eq!(cd.state_digest(), digest);
        let member = cd.members()[0];
        cd.rejoin(member); // still a member: no-op
        assert_eq!(cd.state_digest(), digest);

        let mut ex = ExpanderOverlay::new(16, 8, crate::config::SamplingParams::default(), 5);
        let v = ex.members()[0];
        ex.evict(v);
        ex.rejoin(v);
        let digest = ex.state_digest();
        ex.rejoin(v);
        assert_eq!(ex.state_digest(), digest);
        let staying = *ex.members().iter().find(|u| **u != v).unwrap();
        ex.rejoin(staying);
        assert_eq!(ex.state_digest(), digest);

        // DosOverlay rejoins immediately; a member rejoin must not draw RNG
        // or double-insert.
        let mut dos = DosOverlay::new(256, DosParams::default(), 5);
        use crate::healing::HealableOverlay as _;
        let v = dos.members_sorted()[0];
        dos.evict(v);
        dos.rejoin(v);
        let digest = dos.state_digest();
        let n = dos.len();
        dos.rejoin(v);
        assert_eq!((dos.len(), dos.state_digest()), (n, digest));
    }

    #[test]
    fn telemetry_mirrors_healing_stats_and_violations() {
        let ov = DosOverlay::new(512, DosParams::default(), 2);
        let epoch_len = ov.epoch_len();
        let tel = Telemetry::new(telemetry::Config::default());
        let mut runner = FaultyRunner::new(
            ov,
            sched(3, 0.25, 0.001, Some(2 * epoch_len)),
            HealingParams::default(),
            true,
        )
        .with_telemetry(tel.clone());
        let mut adv = DosAdversary::new(DosStrategy::Random, 0.3, 2 * epoch_len, 5);
        runner.run(&mut adv, 6 * epoch_len);
        let snap = tel.snapshot();
        let s = runner.stats();
        assert_eq!(snap.counter("heal.events{what=retry}"), s.retries);
        assert_eq!(snap.counter("heal.events{what=resync}"), s.resyncs);
        assert_eq!(snap.counter("heal.events{what=crash}"), s.crashes);
        assert!(s.retries > 0, "loss at 0.25 must trigger retries");
        let (events, _) = tel.events();
        let retry_events = events.iter().filter(|e| e.kind == EventKind::RetryAttempt).count();
        assert!(retry_events > 0);
        // The healing phase was profiled (work-free but entered each round).
        let prof = tel.profile();
        assert_eq!(prof.stat(Phase::Healing).enters, 6 * epoch_len);
        assert_eq!(prof.stat(Phase::Monitor).enters, 6 * epoch_len);
        // Violations mirror into the monitor counters 1:1.
        assert_eq!(snap.counters.keys().filter(|k| k.starts_with("monitor.")).count(), 0);
        assert!(runner.monitor.ok(), "{}", runner.monitor.report());
    }

    #[test]
    fn backoff_caps_the_exponential() {
        let b = Backoff::capped(2, 16);
        assert_eq!(b.delay(0), 2);
        assert_eq!(b.delay(2), 8);
        assert_eq!(b.delay(3), 16);
        assert_eq!(b.delay(40), 16, "capped");
        assert_eq!(Backoff::uncapped(1).delay(3), 8);
        assert_eq!(Backoff::uncapped(1).delay(200), u64::MAX, "overflow saturates");
        assert_eq!(Backoff::uncapped(0).delay(0), 1, "base floored to 1");
    }

    #[test]
    fn force_crash_and_return_round_trip() {
        let ov = DosOverlay::new(256, DosParams::default(), 6);
        let mut runner =
            FaultyRunner::new(ov, sched(1, 0.0, 0.0, None), HealingParams::default(), true);
        let v = runner.overlay.members_sorted()[0];
        assert!(!runner.is_down(v));
        runner.force_crash(v);
        assert!(runner.is_down(v));
        let crashes = runner.stats().crashes;
        runner.force_crash(v); // idempotent
        assert_eq!(runner.stats().crashes, crashes);
        // Still a member (nothing evicted it): it returns desynchronized.
        assert_eq!(runner.return_node(v), ReturnOutcome::Desynced);
        assert!(!runner.is_down(v));
        assert_eq!(runner.desynced_len(), 1);
        assert!(runner.force_resync(v));
        assert_eq!(runner.desynced_len(), 0);
        assert!(!runner.force_resync(v), "second resync is a no-op");
        // Returning a node that is not down is ignored.
        assert_eq!(runner.return_node(v), ReturnOutcome::Ignored);
    }

    #[test]
    fn returning_an_evicted_victim_rejoins_and_abandon_forgets() {
        let ov = DosOverlay::new(256, DosParams::default(), 7);
        let epoch_len = ov.epoch_len();
        let mut runner =
            FaultyRunner::new(ov, sched(2, 0.0, 0.0, None), HealingParams::default(), true);
        let members = runner.overlay.members_sorted();
        let (a, b) = (members[0], members[1]);
        runner.force_crash(a);
        runner.force_crash(b);
        // Stay down past the heartbeat timeout so both are evicted.
        for _ in 0..4 * epoch_len {
            runner.step(&BlockSet::none());
        }
        assert!(runner.was_evicted_while_down(a), "3-epoch heartbeat must evict");
        let n = runner.overlay.len();
        assert_eq!(runner.return_node(a), ReturnOutcome::Rejoined);
        assert_eq!(runner.overlay.len(), n + 1);
        assert!(runner.stats().rejoins >= 1);
        // Abandoning the other leaves it gone for good.
        runner.abandon(b);
        assert!(!runner.is_down(b));
        assert_eq!(runner.overlay.len(), n + 1);
        assert_eq!(runner.return_node(b), ReturnOutcome::Ignored);
    }

    #[test]
    fn widened_heartbeat_tolerates_longer_silence() {
        // Same crash, same silence; factor 4 outlives a timeout that the
        // default factor 1 does not.
        let run = |factor: u64| {
            let ov = DosOverlay::new(256, DosParams::default(), 8);
            let epoch_len = ov.epoch_len();
            let mut runner =
                FaultyRunner::new(ov, sched(3, 0.0, 0.0, None), HealingParams::default(), true);
            runner.set_heartbeat_factor(factor);
            let v = runner.overlay.members_sorted()[0];
            runner.force_crash(v);
            for _ in 0..4 * epoch_len {
                runner.step(&BlockSet::none());
            }
            runner.was_evicted_while_down(v)
        };
        assert!(run(1), "default heartbeat evicts after 3 epochs of silence");
        assert!(!run(4), "widened heartbeat (12 epochs) must not");
    }

    #[test]
    fn expander_healing_beats_control() {
        let mk = || ExpanderOverlay::new(64, 8, SamplingParams::default(), 4);
        let mut healed =
            ExpanderFaultRun::new(mk(), sched(7, 0.3, 0.01, None), HealingParams::default(), true);
        let mut control =
            ExpanderFaultRun::new(mk(), sched(7, 0.3, 0.01, None), HealingParams::default(), false);
        for _ in 0..8 {
            healed.run_epoch();
            control.run_epoch();
        }
        assert_eq!(
            healed.monitor.count(Invariant::Connectivity)
                + healed.monitor.count(Invariant::DegreeBound),
            0,
            "{}",
            healed.monitor.report()
        );
        // Healing resolves desync (resync or evict); the control's is
        // sticky and accumulates.
        assert!(healed.stats.resyncs > 0, "retries must land sometimes");
        assert!(control.desynced_len() > healed.desynced_len());
        assert!(
            !control.monitor.ok(),
            "sticky desync plus corpses must break an invariant: {}",
            control.monitor.report()
        );
    }
}
