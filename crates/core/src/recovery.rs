//! Catastrophic-failure recovery: beyond-budget bursts, a degraded-mode
//! state machine, and partition-heal reconciliation.
//!
//! The healing layer ([`crate::healing`]) assumes faults arrive within the
//! adversary's budget: losses and crashes trickle in, retries and
//! heartbeats absorb them, and the monitor stays green. This module is
//! about the day that assumption breaks — a rack dies, a zone partitions,
//! and a correlated slice of the overlay vanishes at once, then floods
//! back as a rejoin storm. Three pieces:
//!
//! * **burst injection** — a [`BurstSchedule`] crash-stops a seed-chosen
//!   correlated slice (whole supernode groups, or a contiguous id range)
//!   at a scheduled round, with every victim due back inside a storm
//!   window, and cuts finite-duration partitions with an explicit heal
//!   round;
//! * **the mode machine** — `Normal → Degraded → SafeMode → Recovering →
//!   Normal`, driven purely by the invariant monitor's per-round health
//!   with enter/exit hysteresis. SafeMode sheds non-essential work (the
//!   caller suspends sampling/app probes via [`RecoveryRunner::shedding`])
//!   and widens heartbeat timeouts so storm victims due back shortly are
//!   not evicted mid-storm; Recovering drains the storm through
//!   token-bucket admission with capped exponential backoff and jittered
//!   retry on rejected rejoins;
//! * **partition-heal reconciliation** — when a partition heals, minority
//!   members that missed a reconfiguration are *reconciled* (marked
//!   desynchronized, then resynchronized through a rate-limited reliable
//!   exchange) and members evicted during the window re-enter through the
//!   join path — instead of the healed half being treated as strangers.
//!
//! The central modeling line, documented in DESIGN.md §12: **the join path
//! has per-round capacity** ([`RecoveryParams::join_capacity`], the
//! introducer-handshake budget), shared by both arms. Without the recovery
//! protocol a rejoiner rejected at the storm peak holds a stale introducer
//! pointer and is *permanently orphaned*; with it, rejections back off and
//! retry until admitted. That — plus SafeMode keeping victims as members
//! so their returns need no join at all — is why the recovery arm survives
//! bursts that disconnect the control.
//!
//! Everything is digest-neutral when inactive: a [`RecoveryRunner`] with a
//! null schedule draws nothing, transitions nowhere (streaks are tracked,
//! modes only move when `enabled`), and steps the wrapped runner with the
//! adversary's block set untouched.

use crate::healing::{Backoff, FaultyRunner, HealableOverlay, ReturnOutcome};
use crate::metrics::DosRoundMetrics;
use crate::monitor::Invariant;
use overlay_adversary::adaptive::Attacker;
use overlay_adversary::knobs::{env_u64_knob, KnobError, KnobReason};
use simnet::rng::NodeRng;
use simnet::{BlockSet, BurstSchedule, NodeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use telemetry::{EventKind, Telemetry};

/// Pseudo-node id keying the recovery layer's jitter stream (distinct
/// from every other reserved stream).
const JITTER_STREAM: u64 = u64::MAX - 5;
/// Purpose tag of the jitter stream.
const JITTER_PURPOSE: u64 = 0x4EC0;

/// The recovery state machine's modes, in escalation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryMode {
    /// All invariants green; full service.
    Normal,
    /// Health has been failing for a short streak; watching.
    Degraded,
    /// Sustained failure: non-essential work is shed and heartbeat
    /// timeouts widen so the storm does not evict its own victims.
    SafeMode,
    /// Draining a rejoin storm / reconciliation queue under token-bucket
    /// admission.
    Recovering,
}

impl RecoveryMode {
    /// Stable lower-kebab name used in telemetry labels and transition
    /// streams.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryMode::Normal => "normal",
            RecoveryMode::Degraded => "degraded",
            RecoveryMode::SafeMode => "safe-mode",
            RecoveryMode::Recovering => "recovering",
        }
    }
}

/// Tuning knobs of the recovery layer.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryParams {
    /// Consecutive unhealthy rounds before `Normal -> Degraded`.
    pub degraded_after: u64,
    /// *Additional* unhealthy rounds (beyond `degraded_after`) before
    /// `Degraded -> SafeMode`.
    pub safe_after: u64,
    /// Consecutive healthy rounds required to exit back to `Normal`
    /// (the `G` of the A8 time-to-recover metric).
    pub exit_hysteresis: u64,
    /// Heartbeat-timeout multiplier applied while in SafeMode/Recovering.
    pub safe_heartbeat_factor: u64,
    /// Token-bucket refill: rejoin admissions granted per round.
    pub admit_rate: u64,
    /// Token-bucket capacity (burst admissions after a quiet stretch).
    pub admit_burst: u64,
    /// Base of the capped exponential backoff on rejected rejoins.
    pub retry_base: u64,
    /// Cap on any single backoff delay, in rounds.
    pub retry_cap: u64,
    /// Joins the overlay can take per round — introducer-handshake
    /// capacity, shared by the recovery arm and the control.
    pub join_capacity: usize,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        Self {
            degraded_after: 2,
            safe_after: 3,
            exit_hysteresis: 8,
            safe_heartbeat_factor: 4,
            admit_rate: 2,
            admit_burst: 4,
            retry_base: 2,
            retry_cap: 64,
            join_capacity: 4,
        }
    }
}

impl RecoveryParams {
    /// Defaults overridden by validated environment knobs:
    /// `RECOVERY_HYSTERESIS` (exit hysteresis, `[1, 100000]`),
    /// `SAFEMODE_AFTER` (`[1, 10000]`), `SAFEMODE_HEARTBEAT_FACTOR`
    /// (`[1, 64]`), `STORM_ADMIT_RATE` and `STORM_ADMIT_BURST`
    /// (`[1, 1000000]`, burst >= rate). Invalid or out-of-range values
    /// are rejected with a named error, never clamped.
    pub fn from_env() -> Result<Self, KnobError> {
        let mut p = Self::default();
        p.exit_hysteresis = env_u64_knob("RECOVERY_HYSTERESIS", p.exit_hysteresis, 1, 100_000)?;
        p.safe_after = env_u64_knob("SAFEMODE_AFTER", p.safe_after, 1, 10_000)?;
        p.safe_heartbeat_factor =
            env_u64_knob("SAFEMODE_HEARTBEAT_FACTOR", p.safe_heartbeat_factor, 1, 64)?;
        p.admit_rate = env_u64_knob("STORM_ADMIT_RATE", p.admit_rate, 1, 1_000_000)?;
        p.admit_burst = env_u64_knob("STORM_ADMIT_BURST", p.admit_burst, 1, 1_000_000)?;
        if p.admit_burst < p.admit_rate {
            // A bucket smaller than its refill silently discards tokens —
            // reject it as out of band rather than quietly throttling.
            return Err(KnobError {
                name: "STORM_ADMIT_BURST".into(),
                value: p.admit_burst.to_string(),
                reason: KnobReason::OutOfRange { lo: p.admit_rate as usize, hi: 1_000_000 },
            });
        }
        Ok(p)
    }
}

/// Aggregate counters of one recovery run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Rejoin/return admissions granted.
    pub admitted: u64,
    /// Admission rejections (the joiner backs off and retries).
    pub rejected: u64,
    /// Nodes permanently lost (control arm: rejected with no retry
    /// protocol).
    pub orphaned: u64,
    /// Members reconciled (resynchronized) after a partition heal.
    pub reconciled: u64,
    /// Rounds spent shedding non-essential work (SafeMode + Recovering).
    pub shed_rounds: u64,
    /// Burst events fired.
    pub bursts_fired: u64,
    /// Partitions healed.
    pub partitions_healed: u64,
}

/// Why a node is waiting in the arrival queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ArrivalKind {
    /// A burst victim due back from its crash.
    CrashReturn,
    /// A node orphaned on a partition's minority side (evicted during the
    /// window) re-entering through the join path.
    OrphanJoin,
}

#[derive(Clone, Copy, Debug)]
struct Arrival {
    due: u64,
    attempts: u32,
    kind: ArrivalKind,
}

/// A partition currently in force.
struct ActivePartition {
    side: BTreeSet<NodeId>,
    heal_at: u64,
    /// Successful resamples completed while the partition was up — the
    /// minority side missed these, so a positive count means it must be
    /// reconciled at heal.
    resamples: u64,
}

/// Wraps a [`FaultyRunner`] with burst injection, the recovery mode
/// machine, storm admission and partition-heal reconciliation.
///
/// `enabled = false` is the control arm: the same bursts and partitions
/// are injected (streaks are even tracked, so time-to-recover is
/// measurable), but the mode machine never leaves Normal, no work is
/// shed, heartbeats stay narrow, and a rejoiner rejected at the join
/// capacity is permanently orphaned instead of retrying.
pub struct RecoveryRunner<O: HealableOverlay> {
    /// The wrapped healing runner (overlay and monitor are reachable
    /// through it).
    pub runner: FaultyRunner<O>,
    schedule: BurstSchedule,
    params: RecoveryParams,
    enabled: bool,
    mode: RecoveryMode,
    unhealthy_streak: u64,
    healthy_streak: u64,
    transitions: Vec<(u64, RecoveryMode)>,
    arrivals: BTreeMap<NodeId, Arrival>,
    tokens: u64,
    resync_queue: VecDeque<NodeId>,
    partitions: Vec<ActivePartition>,
    jitter: NodeRng,
    stats: RecoveryStats,
    /// Burst crashes actually injected, per round — the raw material of a
    /// catastrophe repro trace.
    crash_log: Vec<(u64, Vec<NodeId>)>,
    tel: Telemetry,
}

impl<O: HealableOverlay> RecoveryRunner<O> {
    /// Wrap `runner` under `schedule`. `seed` keys the retry-jitter
    /// stream (conventionally the same seed that keyed the schedule).
    pub fn new(
        runner: FaultyRunner<O>,
        schedule: BurstSchedule,
        params: RecoveryParams,
        enabled: bool,
        seed: u64,
    ) -> Self {
        let tokens = params.admit_burst;
        Self {
            runner,
            schedule,
            params,
            enabled,
            mode: RecoveryMode::Normal,
            unhealthy_streak: 0,
            healthy_streak: 0,
            transitions: Vec::new(),
            arrivals: BTreeMap::new(),
            tokens,
            resync_queue: VecDeque::new(),
            partitions: Vec::new(),
            jitter: simnet::rng::stream(seed, JITTER_STREAM, JITTER_PURPOSE),
            stats: RecoveryStats::default(),
            crash_log: Vec::new(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry recorder (builder-style); propagates to the
    /// wrapped runner and monitor. Pure observability.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.runner = self.runner.with_telemetry(tel.clone());
        self.tel = tel;
        self
    }

    /// Current mode.
    pub fn mode(&self) -> RecoveryMode {
        self.mode
    }

    /// The full `(round, mode)` transition stream, in order.
    pub fn transitions(&self) -> &[(u64, RecoveryMode)] {
        &self.transitions
    }

    /// Consecutive healthy rounds as of the last step.
    pub fn healthy_streak(&self) -> u64 {
        self.healthy_streak
    }

    /// Aggregate recovery counters.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// True while non-essential work (sampling probes, app traffic)
    /// should be suspended.
    pub fn shedding(&self) -> bool {
        matches!(self.mode, RecoveryMode::SafeMode | RecoveryMode::Recovering)
    }

    /// Nodes still waiting to be admitted (pending arrivals).
    pub fn pending_arrivals(&self) -> usize {
        self.arrivals.len()
    }

    /// Burst crashes injected so far, grouped by round (repro capture).
    pub fn crash_trace(&self) -> &[(u64, Vec<NodeId>)] {
        &self.crash_log
    }

    fn goto(&mut self, round: u64, mode: RecoveryMode) {
        if mode == self.mode {
            return;
        }
        self.mode = mode;
        self.transitions.push((round, mode));
        if self.tel.enabled() {
            self.tel.counter("recovery.mode_transitions", &[("to", mode.name())]).inc();
            self.tel.emit(round, EventKind::ModeTransition, None, 0, || mode.name().to_string());
        }
        match mode {
            RecoveryMode::SafeMode => {
                self.runner.set_heartbeat_factor(self.params.safe_heartbeat_factor);
            }
            RecoveryMode::Normal => {
                self.runner.set_heartbeat_factor(1);
            }
            _ => {}
        }
    }

    /// Fire due schedule events: bursts crash their victims and queue the
    /// storm arrivals; partitions draw their side; heals reconcile.
    fn apply_due_events(&mut self, round: u64) {
        for idx in self.schedule.bursts_due(round) {
            let members = self.runner.overlay.members_sorted();
            let snap = self.runner.overlay.snapshot(round);
            let victims = self.schedule.draw_burst(idx, &members, &snap.groups, &snap.group_edges);
            let mut crashed = Vec::with_capacity(victims.len());
            for (v, back) in victims {
                self.runner.force_crash(v);
                self.arrivals
                    .insert(v, Arrival { due: back, attempts: 0, kind: ArrivalKind::CrashReturn });
                crashed.push(v);
            }
            self.stats.bursts_fired += 1;
            if self.tel.enabled() {
                self.tel.counter("recovery.bursts", &[]).add(crashed.len() as u64);
            }
            self.crash_log.push((round, crashed));
        }
        for idx in self.schedule.partitions_due(round) {
            let members = self.runner.overlay.members_sorted();
            let side = self.schedule.draw_partition_side(idx, &members);
            let heal_at = self.schedule.partitions()[idx].heal_at;
            self.partitions.push(ActivePartition { side, heal_at, resamples: 0 });
        }

        let healing_now: Vec<ActivePartition> = {
            let mut due = Vec::new();
            let mut keep = Vec::new();
            for p in self.partitions.drain(..) {
                if p.heal_at <= round {
                    due.push(p);
                } else {
                    keep.push(p);
                }
            }
            self.partitions = keep;
            due
        };
        for p in healing_now {
            self.stats.partitions_healed += 1;
            let member_set: BTreeSet<NodeId> =
                self.runner.overlay.members_sorted().into_iter().collect();
            for v in p.side {
                if member_set.contains(&v) {
                    // Still a member. If reconfiguration resampled while it
                    // was cut off, its view of the structure is stale:
                    // reconcile instead of letting staleness fester.
                    if p.resamples > 0 {
                        self.runner.mark_desynced_now(v);
                        if self.enabled {
                            self.resync_queue.push_back(v);
                        }
                    }
                } else if self.enabled {
                    // Evicted during the window: orphaned on the minority
                    // side. Reconciliation re-runs the join path for it.
                    self.arrivals.insert(
                        v,
                        Arrival { due: round, attempts: 0, kind: ArrivalKind::OrphanJoin },
                    );
                } else {
                    // Control: one immediate join attempt, queued for this
                    // round's capacity gate; losers are orphaned there.
                    self.arrivals.insert(
                        v,
                        Arrival { due: round, attempts: 0, kind: ArrivalKind::OrphanJoin },
                    );
                }
            }
        }
    }

    /// Process due arrivals through the admission gate and drain the
    /// reconciliation queue.
    fn process_arrivals(&mut self, round: u64) {
        self.tokens = (self.tokens + self.params.admit_rate).min(self.params.admit_burst);
        let mut join_budget = self.params.join_capacity;

        let due: Vec<(NodeId, Arrival)> =
            self.arrivals.iter().filter(|(_, a)| a.due <= round).map(|(&v, &a)| (v, a)).collect();
        for (v, a) in due {
            let needs_join =
                a.kind == ArrivalKind::OrphanJoin || self.runner.was_evicted_while_down(v);
            if !needs_join {
                // Crash victim still on the membership: its return is a
                // free desynchronized comeback — healing resyncs it.
                let out = self.runner.return_node(v);
                debug_assert_ne!(out, ReturnOutcome::Rejoined);
                self.arrivals.remove(&v);
                self.stats.admitted += 1;
                continue;
            }
            if self.enabled {
                if self.tokens > 0 && join_budget > 0 {
                    self.tokens -= 1;
                    join_budget -= 1;
                    match a.kind {
                        ArrivalKind::CrashReturn => {
                            let out = self.runner.return_node(v);
                            debug_assert_eq!(out, ReturnOutcome::Rejoined);
                        }
                        ArrivalKind::OrphanJoin => self.runner.overlay.rejoin(v),
                    }
                    self.arrivals.remove(&v);
                    self.stats.admitted += 1;
                    if self.tel.enabled() {
                        self.tel.counter("recovery.admitted", &[]).inc();
                    }
                } else {
                    // Rejected: capped exponential backoff plus seeded
                    // jitter *proportional to the delay* (each retry is
                    // spread over a window as wide as its own backoff).
                    // Constant jitter would leave a rejected flash crowd
                    // in lockstep — everyone sleeps the capped delay,
                    // wakes in the same round, loses again, and the
                    // admission slot idles between herd arrivals.
                    let backoff = Backoff::capped(self.params.retry_base, self.params.retry_cap);
                    let entry = self.arrivals.get_mut(&v).expect("arrival exists");
                    let delay = backoff.delay(entry.attempts);
                    let jit = {
                        use rand::RngExt;
                        self.jitter.random_range(0..=delay)
                    };
                    entry.due = round + 1 + delay + jit;
                    entry.attempts += 1;
                    self.stats.rejected += 1;
                    if self.tel.enabled() {
                        self.tel.counter("recovery.rejected", &[]).inc();
                    }
                }
            } else {
                // Control arm: no admission protocol. First-come joins up
                // to the capacity; everyone else holds a stale introducer
                // pointer and is permanently orphaned.
                if join_budget > 0 {
                    join_budget -= 1;
                    match a.kind {
                        ArrivalKind::CrashReturn => {
                            let _ = self.runner.return_node(v);
                        }
                        ArrivalKind::OrphanJoin => self.runner.overlay.rejoin(v),
                    }
                    self.stats.admitted += 1;
                } else {
                    self.runner.abandon(v);
                    self.stats.orphaned += 1;
                }
                self.arrivals.remove(&v);
            }
        }

        // Reconciliation resyncs are a reliable exchange, rate-limited by
        // the same refill rate (they spend no join capacity — the member
        // never left).
        let drain = (self.params.admit_rate as usize).min(self.resync_queue.len());
        for _ in 0..drain {
            if let Some(v) = self.resync_queue.pop_front() {
                if self.runner.force_resync(v) {
                    self.stats.reconciled += 1;
                    if self.tel.enabled() {
                        self.tel.counter("recovery.reconciled", &[]).inc();
                    }
                }
            }
        }
    }

    /// Post-step health bookkeeping and mode transitions.
    fn update_mode(&mut self, round: u64) {
        if self.runner.monitor.healthy_round() {
            self.healthy_streak += 1;
            self.unhealthy_streak = 0;
        } else {
            self.unhealthy_streak += 1;
            self.healthy_streak = 0;
        }
        if !self.enabled {
            return;
        }
        let p = self.params;
        let drained = self.arrivals.is_empty() && self.resync_queue.is_empty();
        match self.mode {
            RecoveryMode::Normal => {
                if self.unhealthy_streak >= p.degraded_after {
                    self.goto(round, RecoveryMode::Degraded);
                }
            }
            RecoveryMode::Degraded => {
                if self.unhealthy_streak >= p.degraded_after + p.safe_after {
                    self.goto(round, RecoveryMode::SafeMode);
                } else if self.healthy_streak >= p.exit_hysteresis {
                    self.goto(round, RecoveryMode::Normal);
                }
            }
            RecoveryMode::SafeMode | RecoveryMode::Recovering => {
                if drained && self.healthy_streak >= p.exit_hysteresis {
                    self.goto(round, RecoveryMode::Normal);
                }
            }
        }
    }

    /// Execute one round: fire due catastrophe events, admit arrivals,
    /// compose active partition sides into the effective block set, step
    /// the wrapped runner, and advance the mode machine.
    pub fn step(&mut self, dos_blocked: &BlockSet) -> DosRoundMetrics {
        let round = self.runner.overlay.round();
        self.apply_due_events(round);

        // SafeMode flips to Recovering the moment drain work is due — the
        // admission gate below runs in the same round.
        if self.enabled && self.mode == RecoveryMode::SafeMode {
            let work_due =
                !self.resync_queue.is_empty() || self.arrivals.values().any(|a| a.due <= round);
            if work_due {
                self.goto(round, RecoveryMode::Recovering);
            }
        }

        self.process_arrivals(round);

        let mut eff = dos_blocked.clone();
        for p in &self.partitions {
            for &v in &p.side {
                eff.insert(v);
            }
        }

        let epochs_before = self.runner.overlay.epochs();
        let failed_before = self.runner.overlay.failed_epochs();
        let m = self.runner.step(&eff);
        if self.runner.overlay.epochs() > epochs_before
            && self.runner.overlay.failed_epochs() == failed_before
        {
            for p in &mut self.partitions {
                p.resamples += 1;
            }
        }

        if self.shedding() {
            self.stats.shed_rounds += 1;
        }
        self.update_mode(m.round);
        m
    }

    /// Drive the overlay against any [`Attacker`] for `rounds` rounds,
    /// judging the blocking budget exactly as [`FaultyRunner::run`] does.
    pub fn run<A: Attacker>(&mut self, adversary: &mut A, rounds: u64) {
        for _ in 0..rounds {
            let round = self.runner.overlay.round();
            adversary.observe(self.runner.overlay.snapshot(round));
            let n = self.runner.overlay.len();
            let blocked = adversary.block(round, n);
            if let Some(bound) = self.runner.dos_bound() {
                self.runner.monitor.check(
                    Invariant::BlockingBudget,
                    round,
                    blocked.within_bound(bound, n),
                    || format!("{} blocked of {n} (bound {bound:.3})", blocked.len()),
                );
            }
            self.step(&blocked);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::overlay::{DosOverlay, DosParams};
    use crate::healing::HealingParams;
    use overlay_adversary::faults::FaultSchedule;
    use simnet::{Burst, BurstTarget, TimedPartition};

    fn small_params() -> DosParams {
        DosParams { group_c: 1.0, ..DosParams::default() }
    }

    fn mk_runner(seed: u64) -> FaultyRunner<DosOverlay> {
        FaultyRunner::new(
            DosOverlay::new(256, small_params(), seed),
            FaultSchedule::new(seed, 0.0, 0.0, None, 0.1),
            HealingParams::default(),
            true,
        )
    }

    #[test]
    fn null_schedule_is_digest_neutral() {
        // Recovery plumbing compiled in but inactive == bare runner,
        // digest for digest, with zero transitions.
        let mut bare = mk_runner(5);
        let mut wrapped = RecoveryRunner::new(
            mk_runner(5),
            BurstSchedule::null(),
            RecoveryParams::default(),
            true,
            5,
        );
        let epoch_len = bare.overlay.epoch_len();
        for _ in 0..4 * epoch_len {
            bare.step(&BlockSet::none());
            wrapped.step(&BlockSet::none());
        }
        assert_eq!(bare.overlay.state_digest(), wrapped.runner.overlay.state_digest());
        assert!(wrapped.transitions().is_empty());
        assert_eq!(wrapped.mode(), RecoveryMode::Normal);
        let s = wrapped.stats();
        assert_eq!((s.admitted, s.rejected, s.orphaned, s.bursts_fired), (0, 0, 0, 0));
    }

    #[test]
    fn burst_crashes_and_storm_returns_drain() {
        let ov = DosOverlay::new(256, small_params(), 9);
        let epoch_len = ov.epoch_len();
        let schedule = BurstSchedule::new(9).with_burst(Burst {
            at: epoch_len + 1,
            frac: 0.15,
            target: BurstTarget::Groups,
            storm_window: 3,
        });
        let mut r = RecoveryRunner::new(mk_runner(9), schedule, RecoveryParams::default(), true, 9);
        let n0 = r.runner.overlay.len();
        for _ in 0..6 * epoch_len {
            r.step(&BlockSet::none());
        }
        let s = r.stats();
        assert_eq!(s.bursts_fired, 1);
        assert!(s.admitted > 0, "storm victims must come back");
        assert_eq!(r.pending_arrivals(), 0, "storm fully drained");
        assert_eq!(s.orphaned, 0, "recovery arm never orphans");
        assert_eq!(r.runner.overlay.len(), n0, "membership restored");
        assert_eq!(r.crash_trace().len(), 1);
        assert!(!r.crash_trace()[0].1.is_empty());
    }

    #[test]
    fn mode_machine_escalates_and_exits_with_hysteresis() {
        // A big group-targeted burst with a long storm must push the
        // machine through Degraded/SafeMode and back to Normal.
        let ov = DosOverlay::new(256, small_params(), 11);
        let epoch_len = ov.epoch_len();
        let schedule = BurstSchedule::new(11).with_burst(Burst {
            at: 2 * epoch_len,
            frac: 0.3,
            target: BurstTarget::Groups,
            storm_window: 4 * epoch_len,
        });
        let mut r =
            RecoveryRunner::new(mk_runner(11), schedule, RecoveryParams::default(), true, 11);
        for _ in 0..16 * epoch_len {
            r.step(&BlockSet::none());
        }
        let modes: Vec<RecoveryMode> = r.transitions().iter().map(|&(_, m)| m).collect();
        assert!(modes.contains(&RecoveryMode::Degraded), "transitions: {modes:?}");
        assert_eq!(r.mode(), RecoveryMode::Normal, "must settle back: {modes:?}");
        assert!(r.healthy_streak() >= RecoveryParams::default().exit_hysteresis);
        assert!(r.stats().shed_rounds > 0 || !modes.contains(&RecoveryMode::SafeMode));
    }

    #[test]
    fn control_arm_orphans_at_the_join_capacity() {
        // Same burst, recovery disabled, long storm so victims are
        // evicted: the flash crowd exceeds the per-round join capacity
        // and the overflow is orphaned forever.
        let ov = DosOverlay::new(256, small_params(), 13);
        let epoch_len = ov.epoch_len();
        // Storm window longer than the 3-epoch heartbeat: victims are
        // evicted while down, so every return needs a join slot.
        let schedule = BurstSchedule::new(13).with_burst(Burst {
            at: epoch_len,
            frac: 0.35,
            target: BurstTarget::Groups,
            storm_window: 5 * epoch_len,
        });
        // One join slot per round: the post-eviction tail of the storm
        // (about two victims a round) overflows it.
        let tight = RecoveryParams { join_capacity: 1, ..RecoveryParams::default() };
        let mut control = RecoveryRunner::new(mk_runner(13), schedule, tight, false, 13);
        let n0 = control.runner.overlay.len();
        for _ in 0..12 * epoch_len {
            control.step(&BlockSet::none());
        }
        let s = control.stats();
        assert_eq!(control.transitions().len(), 0, "control never changes mode");
        assert!(s.orphaned > 0, "overflow beyond join capacity must orphan");
        assert!(control.runner.overlay.len() < n0, "membership stays short");
    }

    #[test]
    fn partition_heal_reconciles_instead_of_rejoining() {
        let ov = DosOverlay::new(256, small_params(), 17);
        let epoch_len = ov.epoch_len();
        // Short partition (under the heartbeat timeout): nobody is
        // evicted, so heal must produce reconciliations and no joins.
        let schedule = BurstSchedule::new(17).with_partition(TimedPartition {
            at: epoch_len + 1,
            heal_at: 3 * epoch_len + 1,
            side_frac: 0.2,
        });
        let mut r =
            RecoveryRunner::new(mk_runner(17), schedule, RecoveryParams::default(), true, 17);
        for _ in 0..8 * epoch_len {
            r.step(&BlockSet::none());
        }
        let s = r.stats();
        assert_eq!(s.partitions_healed, 1);
        assert!(s.reconciled > 0, "minority side missed resamples and must reconcile");
        assert_eq!(s.orphaned, 0);
        assert_eq!(r.runner.desynced_len(), 0, "reconciliation drains");
    }

    #[test]
    fn from_env_rejects_bad_knobs() {
        // Pure parse-path checks (raw values, no env mutation).
        use overlay_adversary::knobs::parse_u64_knob;
        assert!(parse_u64_knob("RECOVERY_HYSTERESIS", Some("0"), 8, 1, 100_000).is_err());
        assert!(parse_u64_knob("SAFEMODE_HEARTBEAT_FACTOR", Some("65"), 4, 1, 64).is_err());
        assert_eq!(parse_u64_knob("STORM_ADMIT_RATE", Some("3"), 2, 1, 1_000_000), Ok(3));
        // The cross-field burst >= rate constraint.
        let p = RecoveryParams { admit_rate: 8, admit_burst: 2, ..RecoveryParams::default() };
        assert!(p.admit_burst < p.admit_rate, "fixture sanity");
    }
}
