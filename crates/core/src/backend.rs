//! Simulation-backend selection for the overlay runners.
//!
//! All core runners that instantiate a simnet engine go through
//! [`select`], so one knob switches the whole stack between the legacy
//! boxed-slot engine and the sharded `simnet-xl` engine:
//!
//! * the `SIMNET_BACKEND` environment variable (`legacy`, `xl`,
//!   `xl:<shards>`, `xl:fast`, `xl:fast:<shards>`) picks the process-wide
//!   default;
//! * [`with_backend`] overrides it for one scope on the current thread —
//!   the mechanism tests and benchmarks use, since mutating the process
//!   environment is racy under a multi-threaded test harness.
//!
//! The parity engines (`legacy`, `xl`) produce the identical digest stream
//! (see the `simnet-xl` crate docs), so between them the knob is a pure
//! performance choice. `xl:fast` relaxes delivery order: runs stay
//! deterministic per `(seed, shards)` but are only statistically
//! equivalent to the parity stream — see [`ExecMode`] and DESIGN.md §10.

pub use simnet_xl::{default_shards, AnyNet, Backend, ExecMode, XlNetwork, BACKEND_ENV};
use std::cell::Cell;

thread_local! {
    static OVERRIDE: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The backend new simulation runs on this thread should use: the
/// innermost [`with_backend`] override if any, else [`Backend::from_env`].
pub fn select() -> Backend {
    OVERRIDE.with(Cell::get).unwrap_or_else(Backend::from_env)
}

/// Run `f` with [`select`] returning `backend` on this thread; the
/// previous override (if any) is restored on exit, including on panic.
pub fn with_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(backend))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_nests_and_restores() {
        // Note: no assertion on the un-overridden value — the process
        // environment may legitimately set SIMNET_BACKEND.
        with_backend(Backend::Xl { shards: 3 }, || {
            assert_eq!(select(), Backend::Xl { shards: 3 });
            with_backend(Backend::Legacy, || {
                assert_eq!(select(), Backend::Legacy);
            });
            assert_eq!(select(), Backend::Xl { shards: 3 });
        });
    }

    #[test]
    fn override_survives_panic() {
        with_backend(Backend::Xl { shards: 2 }, || {
            let caught = std::panic::catch_unwind(|| {
                with_backend(Backend::Legacy, || panic!("boom"));
            });
            assert!(caught.is_err());
            assert_eq!(select(), Backend::Xl { shards: 2 });
        });
    }
}
