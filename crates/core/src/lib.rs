//! # reconfig-core — the paper's primary contribution
//!
//! Rapid node sampling and constant network reconfiguration, yielding three
//! robust overlay networks (Drees/Gmyr/Scheideler, SPAA 2016):
//!
//! * [`sampling`] — the rapid node sampling primitives (Algorithms 1 and 2)
//!   that sample `β log n` nodes (almost) uniformly at random in
//!   `O(log log n)` rounds by combining random walks with pointer doubling,
//!   plus the plain-random-walk baseline they improve upon exponentially.
//! * [`reconfig`] — Algorithm 3: reconfiguring an H-graph into a fresh
//!   uniformly random H-graph every `O(log log n)` rounds, which maintains
//!   connectivity under omniscient adversarial churn at any constant rate
//!   (Section 4, Theorems 4 and 5).
//! * [`dos`] — the hypercube-of-groups network that survives
//!   `(1/2 - ε)`-bounded `Ω(log log n)`-late DoS attacks (Section 5,
//!   Theorem 6).
//! * [`churndos`] — the split/merge extension handling DoS attacks and
//!   churn simultaneously (Section 6, Theorem 7).
//!
//! Beyond the paper, [`healing`] adds self-healing (heartbeat eviction,
//! re-request with backoff, rejoin after crash-recovery) under the
//! composite fault schedules of `overlay_adversary::faults`,
//! [`monitor`] provides the per-round invariant monitor the robustness
//! harnesses report through, and [`recovery`] adds catastrophic-failure
//! recovery: correlated burst faults, a degraded-mode state machine with
//! storm admission, and partition-heal reconciliation.

pub mod backend;
pub mod byzantine;
pub mod churndos;
pub mod config;
pub mod dos;
pub mod healing;
pub mod metrics;
pub mod monitor;
pub mod reconfig;
pub mod recovery;
pub mod sampling;
