//! The epoch loop of the combined churn+DoS overlay.

use crate::churndos::splitmerge::{target_dim, LabeledGroups, SizeBand};
use crate::config::{SamplingParams, Schedule};
use crate::metrics::{DosRoundMetrics, DosRunMetrics};
use overlay_adversary::churn::ChurnEvent;
use overlay_adversary::lateness::TopologySnapshot;
use overlay_graphs::prefix::Label;
use simnet::rng::NodeRng;
use simnet::{BlockSet, NodeId};
use std::collections::HashSet;
use telemetry::{EventKind, Telemetry};

/// Parameters of the Section 6 overlay.
#[derive(Clone, Copy, Debug)]
pub struct ChurnDosParams {
    /// The Equation 1 constant `c`.
    pub band_c: usize,
    /// Sampling parameters (epoch length derivation).
    pub sampling: SamplingParams,
}

impl Default for ChurnDosParams {
    fn default() -> Self {
        Self { band_c: 8, sampling: SamplingParams::default() }
    }
}

/// The churn- and DoS-resistant overlay of Theorem 7: variable-dimension
/// supernodes with split/merge, groups resampled every epoch with
/// probability `2^-d(x)` per supernode, joins/leaves applied at epoch
/// boundaries.
pub struct ChurnDosOverlay {
    groups: LabeledGroups,
    band: SizeBand,
    epoch_len: u64,
    round: u64,
    epochs_done: u64,
    /// Epochs that failed the Lemma 14 availability precondition.
    pub failed_epochs: u64,
    epoch_ok: bool,
    prev_blocked: BlockSet,
    pending_joins: Vec<(NodeId, NodeId)>,
    pending_leaves: Vec<NodeId>,
    rng: NodeRng,
    /// Pure observability: never consulted by the protocol, excluded from
    /// `state_digest` and from checkpoints.
    tel: Telemetry,
}

impl ChurnDosOverlay {
    /// Build the overlay over nodes `0..n`.
    pub fn new(n: usize, params: ChurnDosParams, seed: u64) -> Self {
        let nodes: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let dim = target_dim(n, params.band_c);
        let mut rng = simnet::rng::stream(seed, 2, 0xCD05);
        let mut groups = LabeledGroups::random(&nodes, dim.max(1), &mut rng);
        let band = SizeBand { c: params.band_c };
        groups.rebalance(band, &mut rng).expect("initial population fits Equation 1");
        // Epoch length from the Algorithm 2 schedule on the supernode
        // dimension (power-of-two rounding), doubled for simulate +
        // synchronize, plus the reorganization and a constant number of
        // rounds for the organized split/merge phase (Lemma 18).
        let sched_dim = (dim.max(2) as usize).next_power_of_two() as u32;
        let schedule = Schedule::algorithm2(sched_dim, &params.sampling);
        let epoch_len = 2 * schedule.rounds() as u64 + 4 + 4;
        Self {
            groups,
            band,
            epoch_len,
            round: 0,
            epochs_done: 0,
            failed_epochs: 0,
            epoch_ok: true,
            prev_blocked: BlockSet::none(),
            pending_joins: Vec::new(),
            pending_leaves: Vec::new(),
            rng,
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry recorder. Observability only — the overlay never
    /// draws randomness or branches on the recorder, so attaching one
    /// leaves every `state_digest` unchanged.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Rounds per epoch (`Theta(log log n)`).
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Current members.
    pub fn members(&self) -> Vec<NodeId> {
        self.groups.nodes()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if the overlay has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The current group structure.
    pub fn groups(&self) -> &LabeledGroups {
        &self.groups
    }

    /// Completed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs_done
    }

    /// Current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Record churn; it takes effect at the next epoch boundary. A join is
    /// broadcast into the introducer's group (the paper's join operation),
    /// a leaver informs its group.
    pub fn apply_churn(&mut self, event: &ChurnEvent) {
        let members: HashSet<NodeId> = self.groups.nodes().into_iter().collect();
        for j in &event.joins {
            assert!(members.contains(&j.introduced_to), "introducer not a member");
            self.pending_joins.push((j.new_node, j.introduced_to));
        }
        for &l in &event.leaves {
            assert!(members.contains(&l), "leaver {l} is not a member");
            self.pending_leaves.push(l);
        }
    }

    /// Evict a member immediately (self-healing graceful degradation).
    /// Unlike a churn leave — which waits for the epoch boundary — an
    /// eviction removes the node from its group mid-epoch: the remaining
    /// members simply stop treating it as one of them. Any pending leave
    /// for the node becomes a no-op at the boundary.
    pub fn evict(&mut self, v: NodeId) {
        self.groups.remove(v);
        self.tel.emit(self.round, EventKind::Eviction, Some(v.raw()), 0, String::new);
    }

    /// Re-admit a node after crash-recovery via the ordinary join path:
    /// the smallest-id live member acts as introducer, and the join
    /// materializes at the next successful reconfiguration like any other.
    /// A no-op for current members and for nodes already waiting to join
    /// (a rejoin racing a fresh crash in the same epoch must not enqueue
    /// the node twice).
    pub fn rejoin(&mut self, v: NodeId) {
        let members = self.groups.nodes();
        if members.contains(&v) || self.pending_joins.iter().any(|&(j, _)| j == v) {
            return;
        }
        let introducer =
            crate::healing::smallest_live_introducer(&members, &self.pending_leaves, v)
                .expect("overlay has members");
        self.tel.emit(self.round, EventKind::Rejoin, Some(v.raw()), introducer.raw(), String::new);
        self.pending_joins.push((v, introducer));
    }

    /// Is the non-blocked subgraph connected? Reduces to connectivity of
    /// the Section 6 supernode graph (prefix rule) restricted to
    /// supernodes with a non-blocked member.
    pub fn connected_under(&self, blocked: &BlockSet) -> bool {
        let alive: Vec<Label> = self
            .groups
            .iter()
            .filter(|(_, g)| g.iter().any(|v| !blocked.contains(*v)))
            .map(|(l, _)| *l)
            .collect();
        if alive.len() <= 1 {
            return true;
        }
        let index: std::collections::HashMap<Label, usize> =
            alive.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let mut seen = vec![false; alive.len()];
        seen[0] = true;
        let mut queue = vec![alive[0]];
        let mut reached = 1;
        while let Some(x) = queue.pop() {
            for y in &alive {
                if !seen[index[y]] && x.connected(y) {
                    seen[index[y]] = true;
                    reached += 1;
                    queue.push(*y);
                }
            }
        }
        reached == alive.len()
    }

    /// Execute one round under the given block set.
    pub fn step(&mut self, blocked: &BlockSet) -> DosRoundMetrics {
        self.round += 1;
        // Empty groups (possible only after self-healing evictions) are
        // skipped: a group with no members cannot starve.
        let min_avail = self
            .groups
            .iter()
            .filter(|(_, g)| !g.is_empty())
            .map(|(_, g)| {
                g.iter()
                    .filter(|v| !self.prev_blocked.contains(**v) && !blocked.contains(**v))
                    .count()
            })
            .min()
            .unwrap_or(0);
        if min_avail == 0 {
            self.epoch_ok = false;
        }
        let (min_size, max_size) = self.groups.size_range();
        let metrics = DosRoundMetrics {
            round: self.round,
            blocked: blocked.len(),
            connected: self.connected_under(blocked),
            min_group_available: min_avail,
            min_group_size: min_size,
            max_group_size: max_size,
        };
        self.prev_blocked = blocked.clone();
        if self.tel.enabled() {
            self.tel.counter("overlay.rounds", &[]).inc();
            if !metrics.connected {
                self.tel.counter("overlay.disconnected_rounds", &[]).inc();
            }
            if min_avail == 0 {
                self.tel.counter("overlay.starved_rounds", &[]).inc();
            }
            self.tel.histogram("overlay.blocked", &[]).record(metrics.blocked as u64);
            self.tel.gauge("overlay.max_group_size", &[]).record_max(max_size as u64);
        }

        if self.round % self.epoch_len == 0 {
            self.epochs_done += 1;
            let ok = self.epoch_ok;
            if ok {
                self.reconfigure();
            } else {
                self.failed_epochs += 1;
                // Leavers cannot depart while the reconfiguration is
                // stalled; joins also wait (monotonic membership).
            }
            self.epoch_ok = true;
            self.tel.counter("overlay.epochs", &[]).inc();
            if !ok {
                self.tel.counter("overlay.failed_epochs", &[]).inc();
            }
            let epoch = self.epochs_done;
            self.tel.emit(self.round, EventKind::EpochFinished, None, u64::from(ok), || {
                format!("epoch {epoch} {}", if ok { "reconfigured" } else { "stalled" })
            });
        }
        metrics
    }

    /// Epoch-boundary reconfiguration: apply pending churn, resample every
    /// node's supernode with probability `2^-d(x)`, then split/merge back
    /// into the Equation 1 band.
    fn reconfigure(&mut self) {
        let leaves: HashSet<NodeId> = self.pending_leaves.drain(..).collect();
        let mut population: Vec<NodeId> =
            self.groups.nodes().into_iter().filter(|v| !leaves.contains(v)).collect();
        population.extend(self.pending_joins.drain(..).map(|(new, _)| new));

        let cover = self.groups.cover().clone();
        let assign: Vec<(NodeId, Label)> =
            population.iter().map(|&v| (v, cover.sample(&mut self.rng))).collect();
        self.groups = LabeledGroups::from_assignment(cover, &assign);
        self.groups
            .rebalance(self.band, &mut self.rng)
            .expect("population within Equation 1's reachable regime");
    }

    /// Stable fingerprint of the full overlay state: round/epoch counters,
    /// the labeled group structure (labels in sorted order, members sorted
    /// within each group), pending churn, and the previous block set.
    /// Golden tests pin the sequence of these across rounds.
    pub fn state_digest(&self) -> u64 {
        let mut d = simnet::Digest::new();
        d.write_u64(self.round)
            .write_u64(self.epochs_done)
            .write_u64(self.failed_epochs)
            .write_bool(self.epoch_ok);
        let mut entries: Vec<(u8, u64, Vec<NodeId>)> = self
            .groups
            .iter()
            .map(|(l, g)| {
                let mut members = g.clone();
                members.sort_unstable();
                (l.dim(), l.prefix_bits(l.dim()), members)
            })
            .collect();
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        d.write_usize(entries.len());
        for (dim, bits, members) in entries {
            d.write_u8(dim).write_u64(bits).write_usize(members.len());
            for v in members {
                d.write_u64(v.raw());
            }
        }
        d.write_usize(self.pending_joins.len());
        for &(new, delegate) in &self.pending_joins {
            d.write_u64(new.raw()).write_u64(delegate.raw());
        }
        d.write_usize(self.pending_leaves.len());
        for &l in &self.pending_leaves {
            d.write_u64(l.raw());
        }
        let mut prev: Vec<u64> = self.prev_blocked.iter().map(|v| v.raw()).collect();
        prev.sort_unstable();
        d.write_usize(prev.len());
        for v in prev {
            d.write_u64(v);
        }
        d.finish()
    }

    /// Topology snapshot for the adversary (groups + supernode adjacency).
    pub fn snapshot(&self, round: u64) -> TopologySnapshot {
        let labels: Vec<&Label> = self.groups.iter().map(|(l, _)| l).collect();
        let groups: Vec<Vec<NodeId>> = self.groups.iter().map(|(_, g)| g.clone()).collect();
        let mut group_edges = Vec::new();
        for (i, a) in labels.iter().enumerate() {
            for (j, b) in labels.iter().enumerate().skip(i + 1) {
                if a.connected(b) {
                    group_edges.push((i as u32, j as u32));
                }
            }
        }
        TopologySnapshot {
            round,
            nodes: self.groups.nodes(),
            edges: Vec::new(),
            groups,
            group_edges,
        }
    }

    /// Drive the overlay against a DoS adversary and a churn schedule.
    /// Churn is injected once per epoch (rate `gamma` per epoch =
    /// `gamma^(1/epoch_len)` per round, the paper's formulation).
    pub fn run_under_attack(
        &mut self,
        adversary: &mut overlay_adversary::dos::DosAdversary,
        churn: &mut overlay_adversary::churn::ChurnSchedule,
        epochs: u64,
        churn_rng: &mut NodeRng,
    ) -> DosRunMetrics {
        let mut out = DosRunMetrics { n: self.len(), ..Default::default() };
        for _ in 0..epochs {
            let ev = churn.next(&self.members(), churn_rng);
            self.apply_churn(&ev);
            for _ in 0..self.epoch_len {
                adversary.observe(self.snapshot(self.round));
                let blocked = adversary.block(self.round, self.len());
                out.absorb(self.step(&blocked));
            }
        }
        out.epochs = self.epochs_done;
        out
    }
}

impl simnet::Checkpoint for ChurnDosOverlay {
    fn save(&self) -> serde_json::Value {
        let joins: Vec<serde_json::Value> = self
            .pending_joins
            .iter()
            .map(|&(new, delegate)| serde_json::json!({ "new": new.raw(), "via": delegate.raw() }))
            .collect();
        serde_json::json!({
            "format": "churndos-overlay-checkpoint",
            "groups": self.groups.save(),
            "band": self.band.save(),
            "epoch_len": self.epoch_len,
            "round": self.round,
            "epochs_done": self.epochs_done,
            "failed_epochs": self.failed_epochs,
            "epoch_ok": self.epoch_ok,
            "prev_blocked": self.prev_blocked.save(),
            "pending_joins": joins,
            "pending_leaves": simnet::checkpoint::save_slice(&self.pending_leaves),
            "rng": self.rng.save(),
            "digest_stamp": self.state_digest(),
        })
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::{field, get_array, get_bool, get_str, get_u64, get_vec};
        match get_str(v, "format")? {
            "churndos-overlay-checkpoint" => {}
            other => {
                return Err(simnet::CkptError::Corrupt(format!(
                    "not a churndos overlay checkpoint: `{other}`"
                )))
            }
        }
        let mut pending_joins = Vec::new();
        for j in get_array(v, "pending_joins")? {
            pending_joins.push((NodeId(get_u64(j, "new")?), NodeId(get_u64(j, "via")?)));
        }
        let ov = Self {
            groups: LabeledGroups::load(field(v, "groups")?)?,
            band: SizeBand::load(field(v, "band")?)?,
            epoch_len: get_u64(v, "epoch_len")?,
            round: get_u64(v, "round")?,
            epochs_done: get_u64(v, "epochs_done")?,
            failed_epochs: get_u64(v, "failed_epochs")?,
            epoch_ok: get_bool(v, "epoch_ok")?,
            prev_blocked: BlockSet::load(field(v, "prev_blocked")?)?,
            pending_joins,
            pending_leaves: get_vec(v, "pending_leaves")?,
            rng: NodeRng::load(field(v, "rng")?)?,
            tel: Telemetry::disabled(),
        };
        let stamped = get_u64(v, "digest_stamp")?;
        let restored = ov.state_digest();
        if restored != stamped {
            return Err(simnet::CkptError::DigestMismatch { stamped, restored });
        }
        Ok(ov)
    }
}

impl crate::healing::HealableOverlay for ChurnDosOverlay {
    fn members_sorted(&self) -> Vec<NodeId> {
        let mut m = self.members();
        m.sort_unstable();
        m
    }
    fn len(&self) -> usize {
        self.len()
    }
    fn round(&self) -> u64 {
        self.round()
    }
    fn epoch_len(&self) -> u64 {
        self.epoch_len()
    }
    fn epochs(&self) -> u64 {
        self.epochs()
    }
    fn failed_epochs(&self) -> u64 {
        self.failed_epochs
    }
    fn snapshot(&self, round: u64) -> TopologySnapshot {
        self.snapshot(round)
    }
    fn step_overlay(&mut self, blocked: &BlockSet) -> DosRoundMetrics {
        self.step(blocked)
    }
    fn evict(&mut self, v: NodeId) {
        self.evict(v);
    }
    fn rejoin(&mut self, v: NodeId) {
        self.rejoin(v);
    }
    fn structure_violation(&self) -> Option<String> {
        // The label cover itself must stay a prefix cover (Lemma 18's
        // structural half); sizes may dip below the band mid-epoch while
        // evictions outpace reconfiguration.
        (!self.groups().lemma18_holds()).then(|| "label cover out of Lemma 18 shape".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_adversary::churn::{ChurnSchedule, ChurnStrategy};
    use overlay_adversary::dos::{DosAdversary, DosStrategy};

    #[test]
    fn overlay_initializes_in_band() {
        let ov = ChurnDosOverlay::new(2000, ChurnDosParams::default(), 1);
        assert!(ov.groups().lemma18_holds());
        let band = SizeBand { c: 8 };
        for (l, g) in ov.groups().iter() {
            assert!(band.ok(l.dim(), g.len()), "{l:?} size {}", g.len());
        }
    }

    #[test]
    fn churn_applies_at_epoch_boundary() {
        let mut ov = ChurnDosOverlay::new(1000, ChurnDosParams::default(), 2);
        let n0 = ov.len();
        let mut sched = ChurnSchedule::new(ChurnStrategy::Random, 1.3, 1.0, 100_000);
        let mut rng = simnet::rng::stream(2, 9, 9);
        let ev = sched.next(&ov.members(), &mut rng);
        let (j, l) = (ev.joins.len(), ev.leaves.len());
        ov.apply_churn(&ev);
        // Mid-epoch: membership unchanged.
        ov.step(&BlockSet::none());
        assert_eq!(ov.len(), n0);
        // Run to the boundary.
        for _ in 1..ov.epoch_len() {
            ov.step(&BlockSet::none());
        }
        assert_eq!(ov.len(), n0 + j - l);
        assert!(ov.groups().lemma18_holds());
    }

    #[test]
    fn survives_simultaneous_churn_and_late_dos() {
        let mut ov = ChurnDosOverlay::new(2000, ChurnDosParams::default(), 3);
        let lateness = 2 * ov.epoch_len();
        let mut adv = DosAdversary::new(DosStrategy::GroupTargeted, 0.3, lateness, 5);
        let mut churn = ChurnSchedule::new(ChurnStrategy::Random, 1.3, 0.5, 100_000);
        let mut rng = simnet::rng::stream(3, 1, 1);
        let run = ov.run_under_attack(&mut adv, &mut churn, 4, &mut rng);
        assert_eq!(run.connected_rounds, run.rounds, "Theorem 7 regime must stay connected");
        assert_eq!(run.starved_rounds, 0);
        assert_eq!(ov.failed_epochs, 0);
        assert!(ov.groups().lemma18_holds());
    }

    #[test]
    fn dimensions_track_population_growth() {
        let mut ov = ChurnDosOverlay::new(1000, ChurnDosParams::default(), 4);
        let (_, d_hi_before) = ov.groups().cover().dim_range().unwrap();
        // Grow the population by 4x over several epochs (gamma ~ 1.4).
        let mut next_id = 100_000u64;
        for _ in 0..4 {
            let members = ov.members();
            let joins: Vec<_> = (0..members.len() / 2)
                .map(|k| {
                    let j = overlay_adversary::churn::Join {
                        new_node: NodeId(next_id),
                        introduced_to: members[k % members.len()],
                    };
                    next_id += 1;
                    j
                })
                .collect();
            ov.apply_churn(&ChurnEvent { joins, leaves: Vec::new() });
            for _ in 0..ov.epoch_len() {
                ov.step(&BlockSet::none());
            }
        }
        let (d_lo, d_hi) = ov.groups().cover().dim_range().unwrap();
        assert!(ov.len() > 4000);
        assert!(d_hi > d_hi_before, "groups must have split as n grew");
        assert!(d_hi - d_lo <= 2, "Lemma 18 spread violated");
    }

    #[test]
    fn zero_late_adversary_breaks_the_combined_network_too() {
        let mut ov = ChurnDosOverlay::new(2000, ChurnDosParams::default(), 5);
        let mut adv = DosAdversary::new(DosStrategy::GroupTargeted, 0.3, 0, 6);
        let mut churn = ChurnSchedule::new(ChurnStrategy::Random, 1.1, 0.2, 200_000);
        let mut rng = simnet::rng::stream(5, 1, 1);
        let run = ov.run_under_attack(&mut adv, &mut churn, 2, &mut rng);
        assert!(run.connected_rounds < run.rounds);
    }
}
