//! Crash failures vs DoS blocking (the closing discussion of Section 6).
//!
//! The paper observes that the churn rate of Theorem 7 extends to crash
//! failures **only if** a crash can be distinguished from a node under
//! DoS attack:
//!
//! * *Distinguishable*: the groupmates of a crashed node emulate its
//!   departure (it leaves at the next reconfiguration) and the overlay
//!   stays healthy.
//! * *Indistinguishable*: the group cannot know how long to emulate a
//!   silent member. Give up too early and a merely-blocked node is
//!   evicted; once evicted, it must rejoin through the nodes it knows and
//!   that know it — but after `O(log log n)` rounds the adversary has
//!   learned exactly that contact set from the topology, so a dedicated
//!   attack isolates the returning node.
//!
//! This module makes the dilemma executable: a population with silent
//! members (crashed or blocked — the observer cannot tell), a group
//! emulation policy with finite patience, and an adversary that blocks
//! the known contacts of evicted nodes when they try to return.

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use simnet::rng::NodeRng;
use simnet::NodeId;
use std::collections::{HashMap, HashSet};

/// Whether the system can tell a crash from a DoS-blocked node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashVisibility {
    /// Crashes are announced (e.g. by failure detectors): groupmates
    /// emulate the departure immediately.
    Distinguishable,
    /// Silence is ambiguous: the group emulates a silent member for
    /// `patience` epochs, then evicts.
    Indistinguishable {
        /// Epochs of silence tolerated before eviction.
        patience: u32,
    },
}

/// Outcome of a crash-failure scenario.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CrashOutcome {
    /// Nodes that actually crashed and were cleanly removed.
    pub crashes_handled: usize,
    /// Live nodes wrongly evicted while they were merely blocked.
    pub wrong_evictions: usize,
    /// Wrongly evicted nodes that later rejoined successfully.
    pub rejoined: usize,
    /// Wrongly evicted nodes isolated by the adversary on return.
    pub isolated: usize,
}

/// A population where members can crash (permanently) or be blocked
/// (temporarily) and the observer only sees *silence*.
#[derive(Clone, Debug)]
pub struct CrashScenario {
    members: Vec<NodeId>,
    crashed: HashSet<NodeId>,
    /// Silent-epochs counter per member.
    silent_for: HashMap<NodeId, u32>,
    /// Contacts each evicted node still knows (its last group).
    contacts_of_evicted: HashMap<NodeId, Vec<NodeId>>,
    visibility: CrashVisibility,
    rng: NodeRng,
}

impl CrashScenario {
    /// A population of `n` members under the given visibility model.
    pub fn new(n: usize, visibility: CrashVisibility, seed: u64) -> Self {
        Self {
            members: (0..n as u64).map(NodeId).collect(),
            crashed: HashSet::new(),
            silent_for: HashMap::new(),
            contacts_of_evicted: HashMap::new(),
            visibility,
            rng: simnet::rng::stream(seed, 6, 0xC2A5),
        }
    }

    /// Current live membership.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Crash `count` random members (they go permanently silent).
    pub fn crash_random(&mut self, count: usize) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> =
            self.members.iter().copied().filter(|m| !self.crashed.contains(m)).collect();
        pool.shuffle(&mut self.rng);
        let victims: Vec<NodeId> = pool.into_iter().take(count).collect();
        self.crashed.extend(victims.iter().copied());
        victims
    }

    /// Run one reconfiguration epoch. `blocked` are live members the DoS
    /// adversary silenced for this whole epoch; `group_of` assigns each
    /// member its current groupmates (the contacts it would rejoin
    /// through). Returns what the epoch did.
    pub fn epoch<FG: Fn(NodeId) -> Vec<NodeId>>(
        &mut self,
        blocked: &HashSet<NodeId>,
        group_of: FG,
    ) -> CrashOutcome {
        let mut out = CrashOutcome::default();
        let mut evict: Vec<NodeId> = Vec::new();
        for &m in &self.members {
            let silent = self.crashed.contains(&m) || blocked.contains(&m);
            match self.visibility {
                CrashVisibility::Distinguishable => {
                    // Only true crashes are announced; blocked nodes are
                    // left alone.
                    if self.crashed.contains(&m) {
                        evict.push(m);
                        out.crashes_handled += 1;
                    }
                }
                CrashVisibility::Indistinguishable { patience } => {
                    if silent {
                        let c = self.silent_for.entry(m).or_insert(0);
                        *c += 1;
                        if *c > patience {
                            if self.crashed.contains(&m) {
                                out.crashes_handled += 1;
                            } else {
                                out.wrong_evictions += 1;
                                self.contacts_of_evicted.insert(m, group_of(m));
                            }
                            evict.push(m);
                        }
                    } else {
                        self.silent_for.remove(&m);
                    }
                }
            }
        }
        for m in &evict {
            self.members.retain(|x| x != m);
            self.silent_for.remove(m);
        }
        out
    }

    /// A wrongly evicted node becomes unblocked and tries to rejoin via
    /// any of its remembered contacts. The adversary — which by now has
    /// read the (stale but sufficient) topology — blocks up to `budget`
    /// nodes of its choosing; since the contact set has only logarithmic
    /// size, it blocks exactly those, isolating the victim (the paper's
    /// "dedicated DoS-attack can easily isolate v").
    pub fn attempt_rejoin(&mut self, v: NodeId, adversary_budget: usize) -> bool {
        let Some(contacts) = self.contacts_of_evicted.remove(&v) else {
            return false; // nothing known about the network anymore
        };
        let live_contacts: Vec<NodeId> = contacts
            .into_iter()
            .filter(|c| self.members.contains(c) && !self.crashed.contains(c))
            .collect();
        // The adversary blocks the victim's known contacts first.
        let reachable = live_contacts.len().saturating_sub(adversary_budget);
        if reachable > 0 {
            self.members.push(v);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_of_stub(groupmates: usize) -> impl Fn(NodeId) -> Vec<NodeId> {
        move |v: NodeId| (1..=groupmates as u64).map(|i| NodeId((v.raw() + i) % 1000)).collect()
    }

    #[test]
    fn distinguishable_crashes_are_handled_cleanly() {
        let mut sc = CrashScenario::new(100, CrashVisibility::Distinguishable, 1);
        let victims = sc.crash_random(10);
        assert_eq!(victims.len(), 10);
        // Heavy blocking alongside: must NOT cause evictions.
        let blocked: HashSet<NodeId> = (50..90).map(NodeId).collect();
        let out = sc.epoch(&blocked, group_of_stub(8));
        assert_eq!(out.crashes_handled, 10);
        assert_eq!(out.wrong_evictions, 0);
        assert_eq!(sc.members().len(), 90);
    }

    #[test]
    fn indistinguishable_blocking_beyond_patience_evicts_live_nodes() {
        let mut sc = CrashScenario::new(100, CrashVisibility::Indistinguishable { patience: 2 }, 2);
        // Block the same 20 live nodes for 3 epochs: patience exceeded.
        let blocked: HashSet<NodeId> = (0..20).map(NodeId).collect();
        let mut wrong = 0;
        for _ in 0..3 {
            wrong += sc.epoch(&blocked, group_of_stub(8)).wrong_evictions;
        }
        assert_eq!(wrong, 20, "sustained blocking must trigger wrong evictions");
        assert_eq!(sc.members().len(), 80);
    }

    #[test]
    fn short_blocking_within_patience_is_tolerated() {
        let mut sc = CrashScenario::new(100, CrashVisibility::Indistinguishable { patience: 3 }, 3);
        let blocked: HashSet<NodeId> = (0..20).map(NodeId).collect();
        for _ in 0..2 {
            let out = sc.epoch(&blocked, group_of_stub(8));
            assert_eq!(out.wrong_evictions, 0);
        }
        // Silence ends: counters reset.
        let out = sc.epoch(&HashSet::new(), group_of_stub(8));
        assert_eq!(out.wrong_evictions, 0);
        assert_eq!(sc.members().len(), 100);
    }

    #[test]
    fn adversary_with_contact_budget_isolates_returning_nodes() {
        let mut sc = CrashScenario::new(100, CrashVisibility::Indistinguishable { patience: 1 }, 4);
        let blocked: HashSet<NodeId> = (0..5).map(NodeId).collect();
        for _ in 0..2 {
            sc.epoch(&blocked, group_of_stub(8));
        }
        // Contacts are known to the adversary; budget >= contact-set size
        // isolates, smaller budget lets the node back in.
        assert!(!sc.attempt_rejoin(NodeId(0), 8), "full contact blocking isolates");
        assert!(sc.attempt_rejoin(NodeId(1), 4), "partial blocking fails to isolate");
        assert!(sc.members().contains(&NodeId(1)));
        assert!(!sc.members().contains(&NodeId(0)));
    }

    #[test]
    fn crashed_nodes_eventually_evicted_even_when_indistinguishable() {
        let mut sc = CrashScenario::new(50, CrashVisibility::Indistinguishable { patience: 2 }, 5);
        sc.crash_random(7);
        let mut handled = 0;
        for _ in 0..4 {
            handled += sc.epoch(&HashSet::new(), group_of_stub(8)).crashes_handled;
        }
        assert_eq!(handled, 7);
        assert_eq!(sc.members().len(), 43);
    }
}
