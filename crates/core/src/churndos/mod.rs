//! The combined churn- and DoS-resistant overlay (Section 6, Theorem 7).
//!
//! Extends the Section 5 network to a *dynamic* node set: supernodes carry
//! variable-length labels forming a prefix-free cover of the binary label
//! space ([`overlay_graphs::prefix`]), and they **split** and **merge** to
//! keep every group size inside the band of Equation 1,
//! `c * d(x) - c < |R(x)| < 2 c * d(x)`, where `d(x)` is the label length
//! (the supernode's *dimension*). Lemma 18 shows the dimensions then stay
//! within a window of width 2 and track `log n`.
//!
//! Joins are broadcast into the introducer's group and take effect at the
//! next reconfiguration; leavers inform their group and are dropped at the
//! next reconfiguration — both operations complete in `O(log log n)`
//! rounds, supporting a churn rate of `gamma^(1/Theta(log log n))` per
//! round (i.e. a constant factor `gamma` per epoch).

pub mod crash;
pub mod overlay;
pub mod splitmerge;

pub use crash::{CrashOutcome, CrashScenario, CrashVisibility};
pub use overlay::{ChurnDosOverlay, ChurnDosParams};
pub use splitmerge::{target_dim, LabeledGroups, SizeBand};
