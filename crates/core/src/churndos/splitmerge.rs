//! Split/merge machinery for variable-dimension supernodes.

use overlay_graphs::prefix::{Label, PrefixCover};
use rand::{Rng, RngExt};
use simnet::NodeId;
use std::collections::BTreeMap;

/// The group-size band of Equation 1 with the paper's split/merge rules:
/// `x` splits if `|R(x)| > 2 c d(x)` and merges if `|R(x)| < c d(x) - c`
/// (both strict). The *stable* set is therefore the closed band
/// `[c d(x) - c, 2 c d(x)]` — using the open band as the stability
/// criterion livelocks at the boundary size `2 c d(x)`, whose split
/// children land exactly on the merge threshold and re-merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeBand {
    /// The positive constant `c`.
    pub c: usize,
}

impl SizeBand {
    /// A supernode of dimension `dim` splits when its group size strictly
    /// exceeds `2 c d(x)`.
    pub fn split_at(&self, dim: u8) -> usize {
        2 * self.c * dim as usize
    }

    /// A supernode of dimension `dim` merges when its group size falls
    /// strictly below `c d(x) - c`.
    pub fn merge_at(&self, dim: u8) -> usize {
        (self.c * dim as usize).saturating_sub(self.c)
    }

    /// Whether `size` is stable (neither split nor merge fires).
    pub fn ok(&self, dim: u8, size: usize) -> bool {
        size >= self.merge_at(dim) && size <= self.split_at(dim)
    }
}

/// The dimension `d` the Lemma 18 proof works with: the unique integer
/// with `2^d * 2cd < n <= 2^(d+1) * 2c(d+1)`.
pub fn target_dim(n: usize, c: usize) -> u8 {
    assert!(n > 4 * c, "population too small for any supernode");
    let mut d = 1u8;
    while (1u64 << (d + 1)) * 2 * c as u64 * (d as u64 + 1) < n as u64 {
        d += 1;
        assert!(d < 60, "dimension runaway");
    }
    d
}

/// Groups of representatives keyed by prefix-free supernode labels, with
/// split and merge restoring the Equation 1 band.
#[derive(Clone, Debug)]
pub struct LabeledGroups {
    cover: PrefixCover,
    groups: BTreeMap<Label, Vec<NodeId>>,
}

impl LabeledGroups {
    /// Assign every node a label of the cover `uniform(dim)` uniformly at
    /// random.
    pub fn random<R: Rng + ?Sized>(nodes: &[NodeId], dim: u8, rng: &mut R) -> Self {
        let cover = PrefixCover::uniform(dim);
        let mut groups: BTreeMap<Label, Vec<NodeId>> =
            cover.iter().map(|&l| (l, Vec::new())).collect();
        for &v in nodes {
            let l = cover.sample(rng);
            groups.get_mut(&l).expect("sampled label is in cover").push(v);
        }
        Self { cover, groups }
    }

    /// Rebuild from an explicit assignment over an existing cover.
    pub fn from_assignment(cover: PrefixCover, assign: &[(NodeId, Label)]) -> Self {
        let mut groups: BTreeMap<Label, Vec<NodeId>> =
            cover.iter().map(|&l| (l, Vec::new())).collect();
        for &(v, l) in assign {
            groups.get_mut(&l).expect("label must be in the cover").push(v);
        }
        Self { cover, groups }
    }

    /// The label cover.
    pub fn cover(&self) -> &PrefixCover {
        &self.cover
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    /// True when no nodes are assigned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The group of a label.
    pub fn group(&self, l: &Label) -> &[NodeId] {
        self.groups.get(l).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over `(label, group)` in label order. Groups live in a
    /// `BTreeMap` so the order — and therefore the RNG consumption order
    /// of everything that walks the groups — is stable across processes
    /// (deterministic replay).
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &Vec<NodeId>)> {
        self.groups.iter()
    }

    /// All member nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.groups.values().flatten().copied().collect()
    }

    /// Remove a node from whichever group holds it (self-healing
    /// eviction). Returns false if the node is not a member. The label
    /// cover is left untouched — mid-epoch departures do not re-shape
    /// supernodes; the next reconfiguration's split/merge pass restores
    /// the Equation 1 band.
    pub fn remove(&mut self, v: NodeId) -> bool {
        for g in self.groups.values_mut() {
            if let Some(i) = g.iter().position(|&u| u == v) {
                g.remove(i);
                return true;
            }
        }
        false
    }

    /// Split supernode `l`: its members are divided uniformly at random
    /// between the two children (the paper's split operation).
    pub fn split<R: Rng + ?Sized>(&mut self, l: Label, rng: &mut R) {
        let members = self.groups.remove(&l).expect("split of unknown label");
        let (c0, c1) = self.cover.split(l);
        let mut g0 = Vec::with_capacity(members.len() / 2 + 1);
        let mut g1 = Vec::with_capacity(members.len() / 2 + 1);
        for v in members {
            if rng.random::<bool>() {
                g1.push(v);
            } else {
                g0.push(v);
            }
        }
        self.groups.insert(c0, g0);
        self.groups.insert(c1, g1);
    }

    /// Merge supernode `l` with its sibling, forcing the sibling's subtree
    /// to merge first if it was split deeper (the paper's forced merge).
    pub fn merge(&mut self, l: Label) {
        let sib = l.sibling();
        // If the sibling was split deeper, merge its subtree bottom-up
        // until it exists: the deepest label under `sib` always has its
        // own sibling present (the cover is exact), so pairs align.
        while !self.cover.contains(&sib) {
            let deepest = *self
                .cover
                .iter()
                .filter(|x| sib.is_prefix_of(x))
                .max_by_key(|x| x.dim())
                .expect("subtree of a missing sibling is non-empty");
            self.merge_pair(deepest);
        }
        self.merge_pair(l);
    }

    /// Merge `l` with its (present) sibling into the parent.
    fn merge_pair(&mut self, l: Label) {
        let sib = l.sibling();
        let mut a = self.groups.remove(&l).expect("merge of unknown label");
        let b = self.groups.remove(&sib).expect("sibling group exists");
        a.extend(b);
        let p = self.cover.merge(l);
        self.groups.insert(p, a);
    }

    /// Run split/merge until every group satisfies Equation 1's band, or
    /// report the label that cannot be fixed (a too-small total population
    /// can make the band unsatisfiable at dimension 1).
    pub fn rebalance<R: Rng + ?Sized>(
        &mut self,
        band: SizeBand,
        rng: &mut R,
    ) -> Result<u32, Label> {
        let mut ops = 0u32;
        loop {
            let violator = self
                .groups
                .iter()
                .filter(|(l, g)| !band.ok(l.dim(), g.len()))
                .map(|(l, g)| (*l, g.len()))
                .min_by_key(|(l, _)| (l.dim(), l.prefix_bits(l.dim())));
            let Some((l, size)) = violator else { return Ok(ops) };
            ops += 1;
            assert!(ops < 100_000, "rebalance did not converge");
            if size > band.split_at(l.dim()) {
                if l.dim() >= Label::MAX_LEN - 1 {
                    return Err(l);
                }
                self.split(l, rng);
            } else {
                debug_assert!(l.dim() > 0, "the root never merges (merge_at(0) = 0)");
                self.merge(l);
            }
        }
    }

    /// Lemma 18's invariants: dimension spread at most 2, and (loosely)
    /// `0.5 log2 n < d(x) < log2 n + 2` for every supernode.
    pub fn lemma18_holds(&self) -> bool {
        let Some((min_d, max_d)) = self.cover.dim_range() else { return false };
        if max_d - min_d > 2 {
            return false;
        }
        let n = self.len().max(2) as f64;
        let logn = n.log2();
        (min_d as f64) > 0.25 * logn - 2.0 && (max_d as f64) < logn + 2.0
    }

    /// Group-size range.
    pub fn size_range(&self) -> (usize, usize) {
        let min = self.groups.values().map(Vec::len).min().unwrap_or(0);
        let max = self.groups.values().map(Vec::len).max().unwrap_or(0);
        (min, max)
    }
}

impl simnet::Checkpoint for SizeBand {
    fn save(&self) -> serde_json::Value {
        serde_json::json!({ "c": self.c as u64 })
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        Ok(Self { c: simnet::checkpoint::get_usize(v, "c")? })
    }
}

impl simnet::Checkpoint for LabeledGroups {
    fn save(&self) -> serde_json::Value {
        // `(label, members)` pairs in BTreeMap order; member order within a
        // group is preserved verbatim. The cover is exactly the label set.
        let entries: Vec<serde_json::Value> = self
            .groups
            .iter()
            .map(|(l, g)| {
                serde_json::json!({ "label": l.save(), "members": simnet::checkpoint::save_slice(g) })
            })
            .collect();
        serde_json::Value::Array(entries)
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::{field, get_vec, missing};
        let entries = v.as_array().ok_or_else(|| missing("labeled groups"))?;
        let mut groups: BTreeMap<Label, Vec<NodeId>> = BTreeMap::new();
        for e in entries {
            let l = Label::load(field(e, "label")?)?;
            let members: Vec<NodeId> = get_vec(e, "members")?;
            if groups.insert(l, members).is_some() {
                return Err(simnet::CkptError::Corrupt(format!("duplicate label {l:?}")));
            }
        }
        let cover = PrefixCover::from_labels(groups.keys().copied());
        if !cover.is_exact_cover() {
            return Err(simnet::CkptError::Corrupt(
                "labels do not form an exact prefix cover".into(),
            ));
        }
        Ok(Self { cover, groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn band_boundaries_follow_the_strict_rules() {
        let band = SizeBand { c: 4 };
        // dim 3: split above 24, merge below 8; [8, 24] is stable.
        assert!(!band.ok(3, 7));
        assert!(band.ok(3, 8));
        assert!(band.ok(3, 24));
        assert!(!band.ok(3, 25));
    }

    #[test]
    fn target_dim_is_logarithmic() {
        let d1 = target_dim(1 << 10, 4);
        let d2 = target_dim(1 << 20, 4);
        assert!(d2 > d1);
        assert!((d2 - d1) as i32 >= 8, "doubling the exponent should nearly double d");
    }

    #[test]
    fn split_partitions_members() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut lg = LabeledGroups::random(&nodes(200), 2, &mut rng);
        let l = *lg.cover().iter().next().unwrap();
        let before = lg.group(&l).len();
        lg.split(l, &mut rng);
        let (c0, c1) = (l.child(0), l.child(1));
        assert_eq!(lg.group(&c0).len() + lg.group(&c1).len(), before);
        assert!(lg.cover().is_exact_cover());
        assert_eq!(lg.len(), 200);
    }

    #[test]
    fn merge_absorbs_sibling() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut lg = LabeledGroups::random(&nodes(100), 3, &mut rng);
        let l = Label::new(0b010, 3);
        let total = lg.group(&l).len() + lg.group(&l.sibling()).len();
        lg.merge(l);
        assert_eq!(lg.group(&l.parent()).len(), total);
        assert!(lg.cover().is_exact_cover());
    }

    #[test]
    fn forced_merge_collapses_deeper_sibling_subtree() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut lg = LabeledGroups::random(&nodes(100), 2, &mut rng);
        // Split sibling of 01 (i.e. 00) twice so it is deeper.
        lg.split(Label::new(0b00, 2), &mut rng);
        lg.split(Label::new(0b000, 3), &mut rng);
        assert!(!lg.cover().contains(&Label::new(0b00, 2)));
        // Merging 01 must force 00's subtree back together first.
        lg.merge(Label::new(0b01, 2));
        assert!(lg.cover().contains(&Label::new(0b0, 1)));
        assert!(lg.cover().is_exact_cover());
        assert_eq!(lg.len(), 100);
    }

    #[test]
    fn rebalance_restores_the_band() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let band = SizeBand { c: 4 };
        let n = 2000u64;
        let dim = target_dim(n as usize, band.c);
        // Start deliberately coarse: dimension dim - 2 (oversized groups).
        let mut lg = LabeledGroups::random(&nodes(n), dim.saturating_sub(2).max(1), &mut rng);
        let ops = lg.rebalance(band, &mut rng).expect("rebalance succeeds");
        assert!(ops > 0);
        for (l, g) in lg.iter() {
            assert!(band.ok(l.dim(), g.len()), "group {l:?} size {} out of band", g.len());
        }
        assert!(lg.lemma18_holds(), "dim range {:?}", lg.cover().dim_range());
        assert_eq!(lg.len(), n as usize);
    }

    #[test]
    fn boundary_size_does_not_livelock() {
        // Exactly 2*c*d members at one supernode: under the strict rules
        // this is stable (no split fires), so rebalance terminates with
        // zero operations.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let band = SizeBand { c: 4 };
        let cover = PrefixCover::uniform(2);
        let assign: Vec<(NodeId, Label)> = nodes(4 * 16)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, Label::new(i as u64 % 4, 2)))
            .collect();
        let mut lg = LabeledGroups::from_assignment(cover, &assign);
        // Every group has 16 = 2 * 4 * 2 members: exactly split_at(2).
        let ops = lg.rebalance(band, &mut rng).expect("stable");
        assert_eq!(ops, 0);
    }
}
