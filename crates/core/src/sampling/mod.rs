//! Rapid node sampling (Section 3).
//!
//! The goal: every node samples at least `beta log n` nodes uniformly at
//! random from the network in `O(log log n)` communication rounds — an
//! exponential improvement over plain random walks, achieved by combining
//! random walks with pointer doubling.
//!
//! * [`hgraph`] — Algorithm 1 for H-graphs (almost-uniform samples), as a
//!   message-level [`simnet`] protocol.
//! * [`hypercube`] — Algorithm 2 for hypercubes (exactly uniform samples).
//! * [`baseline`] — the plain random-walk sampler (`Theta(log n)` rounds)
//!   that Section 3 improves upon; the E3 comparison baseline.
//! * [`direct`] — a vectorized, rayon-parallel execution of Algorithm 1
//!   for large-`n` sweeps (same algorithm, same schedule, array storage
//!   instead of envelopes; used by the benches).
//! * [`lower_bound`] — the knowledge-spread bound of Lemma 4: no sampler
//!   can beat `Omega(log diameter)` rounds.

pub mod baseline;
pub mod direct;
pub mod hgraph;
pub mod hypercube;
pub mod lower_bound;

pub use baseline::{run_baseline, run_baseline_observed, BaselineNode, WalkMsg};
pub use direct::{run_alg1_direct, run_alg1_direct_observed, DirectRun};
pub use hgraph::{
    run_alg1, run_alg1_digested, run_alg1_digested_observed, run_alg1_observed, Alg1Node, SampleMsg,
};
pub use hypercube::{run_alg2, run_alg2_observed, Alg2Node, CubeMsg};
pub use lower_bound::knowledge_spread_rounds;
