//! Algorithm 2: rapid node sampling in the hypercube.
//!
//! Each node `u` of the `d`-dimensional hypercube (`d = log2 n`, a power of
//! two) keeps one multiset `M_j` per coordinate `j in 1..=d`. Phase 1
//! fills every `M_j` with `m_0` entries, each being `n_j(u)` or `u` by a
//! fair coin — i.e. endpoints of one-round token walks along coordinate
//! `j`. Iteration `i` doubles the randomized coordinate range: for every
//! `j ≡ 1 (mod 2^i)` the node pops `m_i` entries `v` from `M_j` and asks
//! each `v` for an entry of *its* `M_{j + 2^(i-1)}`; the concatenation has
//! coordinates `j .. j + 2^i - 1` uniformly random (Lemma 8). After
//! `T = log2 d` iterations, `M_1` holds ids with *all* coordinates random:
//! exactly uniform samples (Theorem 3).
//!
//! Sizes follow Lemma 9: `m_i = (1 + eps)^(T-i) c log n`. The requester
//! pops from sets `M_j` with `j ≡ 1 (mod 2^i)` while responders pop from
//! the disjoint class `j ≡ 1 + 2^(i-1) (mod 2^i)`, which is why the slimmer
//! base `1 + eps` suffices here (compare Lemma 7's `2 + eps`).

use crate::backend::AnyNet;
use crate::config::{SamplingParams, Schedule};
use crate::metrics::SamplingMetrics;
use overlay_graphs::Hypercube;
use rand::RngExt;
use simnet::{Ctx, NodeId, Payload, Protocol, SimEngine};
use std::sync::Arc;
use telemetry::{EventKind, Phase, Telemetry};

/// Messages of Algorithm 2.
#[derive(Clone, Debug)]
pub enum CubeMsg {
    /// "Give me an entry of your `M_{j + 2^(i-1)}`" — `j` identifies the
    /// requester's target set; the responder derives the source set from
    /// the current iteration.
    Request { j: u16 },
    /// An endpoint for the requester's `M_j`.
    Response { id: NodeId, j: u16 },
}

impl Payload for CubeMsg {
    fn size_bits(&self) -> u64 {
        match self {
            CubeMsg::Request { .. } => 8 + 16,
            CubeMsg::Response { .. } => 8 + 16 + NodeId::SIZE_BITS,
        }
    }
}

/// Per-node state of Algorithm 2.
pub struct Alg2Node {
    schedule: Arc<Schedule>,
    cube: Hypercube,
    /// `M_1..M_d`; index `j-1` holds `M_j`.
    m: Vec<Vec<NodeId>>,
    /// Iterations completed.
    iter: usize,
    /// Pop-from-empty events.
    pub failures: u64,
    /// Final samples (`M_1` after the last iteration).
    pub samples: Option<Vec<NodeId>>,
}

impl Alg2Node {
    /// Create the node state for a node of the given hypercube.
    pub fn new(schedule: Arc<Schedule>, cube: Hypercube) -> Self {
        Self { schedule, cube, m: Vec::new(), iter: 0, failures: 0, samples: None }
    }

    fn pop(&mut self, j: usize, me: NodeId, rng: &mut simnet::NodeRng) -> NodeId {
        let set = &mut self.m[j - 1];
        if set.is_empty() {
            self.failures += 1;
            return me;
        }
        let k = rng.random_range(0..set.len());
        set.swap_remove(k)
    }

    /// Phase 2 of iteration `self.iter + 1`: fire requests for every
    /// active set `j ≡ 1 (mod 2^(iter+1))`.
    fn send_requests(&mut self, ctx: &mut Ctx<'_, CubeMsg>) {
        let i = self.iter + 1;
        let step = 1usize << i;
        let k = self.schedule.m_at(i);
        let me = ctx.me();
        let dim = self.cube.dim() as usize;
        let mut j = 1;
        while j <= dim {
            for _ in 0..k {
                let v = self.pop(j, me, ctx.rng());
                ctx.send(v, CubeMsg::Request { j: j as u16 });
            }
            j += step;
        }
    }
}

impl Protocol for Alg2Node {
    type Msg = CubeMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, CubeMsg>) {
        let round = ctx.round();
        if round == 0 {
            // Phase 1 (local): every M_j gets m_0 one-step token walks
            // along coordinate j.
            let m0 = self.schedule.m_at(0);
            let me = ctx.me();
            let dim = self.cube.dim();
            self.m = (1..=dim)
                .map(|j| {
                    (0..m0)
                        .map(|_| {
                            if ctx.rng().random::<bool>() {
                                NodeId(self.cube.neighbor(me.raw(), j))
                            } else {
                                me
                            }
                        })
                        .collect()
                })
                .collect();
            if self.schedule.iterations > 0 {
                self.send_requests(ctx);
            } else {
                self.samples = Some(self.m[0].clone());
            }
            return;
        }
        if self.samples.is_some() {
            return;
        }
        let inbox = ctx.take_inbox();
        if round % 2 == 1 {
            // Phase 3: responder pops from M_{j + 2^(i-1)} for iteration
            // i = iter + 1 (the iteration currently in flight).
            let half = 1usize << self.iter; // 2^(i-1)
            let me = ctx.me();
            for env in inbox {
                if let CubeMsg::Request { j } = env.msg {
                    let src = j as usize + half;
                    debug_assert!(src <= self.cube.dim() as usize);
                    let v = self.pop(src, me, ctx.rng());
                    ctx.send(env.from, CubeMsg::Response { id: v, j });
                }
            }
        } else {
            // Phase 4: clear all sets (the paper's lines 17-18 — sets not
            // refilled by responses are dead from here on), then file the
            // responses.
            for set in self.m.iter_mut() {
                set.clear();
            }
            for env in inbox {
                if let CubeMsg::Response { id, j } = env.msg {
                    self.m[j as usize - 1].push(id);
                }
            }
            self.iter += 1;
            if self.iter < self.schedule.iterations {
                self.send_requests(ctx);
            } else {
                self.samples = Some(std::mem::take(&mut self.m[0]));
            }
        }
    }
}

/// Run Algorithm 2 on a hypercube of dimension `dim` (a power of two):
/// every node samples `m_T` exactly-uniform node ids.
pub fn run_alg2(
    dim: u32,
    params: &SamplingParams,
    seed: u64,
) -> (Vec<(NodeId, Vec<NodeId>)>, SamplingMetrics) {
    run_alg2_observed(dim, params, seed, &Telemetry::disabled())
}

/// [`run_alg2`] that folds the run's telemetry into `tel`.
pub fn run_alg2_observed(
    dim: u32,
    params: &SamplingParams,
    seed: u64,
    tel: &Telemetry,
) -> (Vec<(NodeId, Vec<NodeId>)>, SamplingMetrics) {
    let cube = Hypercube::new(dim);
    let n = cube.len() as usize;
    let schedule = Arc::new(Schedule::algorithm2(dim, params));
    let collector =
        Telemetry::new(telemetry::Config { timing: tel.timing(), ..Default::default() });
    let sampling = collector.phase(Phase::Sampling);
    let iterations = schedule.iterations;
    collector.emit(0, EventKind::SamplingStarted, None, n as u64, || {
        format!("alg2 dim={dim} T={iterations}")
    });
    let mut net: AnyNet<Alg2Node> = crate::backend::select().build(seed);
    net.set_telemetry(collector.clone());
    for v in cube.vertices() {
        net.add_node(NodeId(v), Alg2Node::new(Arc::clone(&schedule), cube));
    }
    let rounds = schedule.rounds() as u64;
    net.run(rounds);

    let mut out = Vec::with_capacity(n);
    let mut failures = 0;
    let mut min_samples = usize::MAX;
    for v in cube.vertices() {
        let node = net.node(NodeId(v)).expect("present");
        failures += node.failures;
        let samples = node.samples.clone().expect("finished");
        min_samples = min_samples.min(samples.len());
        out.push((NodeId(v), samples));
    }
    collector.emit(rounds, EventKind::SamplingFinished, None, failures, || {
        format!("alg2 dim={dim} failures={failures}")
    });
    let metrics = SamplingMetrics::from_snapshot(
        &collector.snapshot(),
        n,
        rounds,
        schedule.iterations,
        min_samples,
        failures,
    );
    drop(sampling);
    tel.absorb(&collector);
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_sample_and_finish() {
        // dim 8 (power of two), n = 256.
        let p = SamplingParams::default();
        let (samples, metrics) = run_alg2(8, &p, 3);
        assert_eq!(samples.len(), 256);
        assert_eq!(metrics.iterations, 3); // log2(8)
        assert_eq!(metrics.rounds, 7);
        for (_, s) in &samples {
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn no_failures_in_the_lemma9_regime() {
        let p = SamplingParams { c: 3.0, ..SamplingParams::default() };
        let (_, metrics) = run_alg2(8, &p, 5);
        assert_eq!(metrics.failures, 0);
    }

    #[test]
    fn samples_are_near_uniform() {
        // Pool all samples of all nodes; chi-square against uniform over
        // the 2^4 = 16 vertices.
        let p = SamplingParams { c: 4.0, ..SamplingParams::default() };
        let (samples, _) = run_alg2(4, &p, 11);
        let mut counts = vec![0u64; 16];
        for (_, s) in &samples {
            for id in s {
                counts[id.raw() as usize] += 1;
            }
        }
        let (_, pval) = overlay_stats::uniform_fit(&counts);
        assert!(pval > 1e-4, "uniformity rejected: p = {pval}");
    }

    #[test]
    fn per_source_samples_are_uniform_not_local() {
        // A single node's samples should cover far vertices, not just its
        // neighborhood — the signature of full-coordinate randomization.
        let p = SamplingParams { c: 4.0, ..SamplingParams::default() };
        let (samples, _) = run_alg2(4, &p, 13);
        let cube = Hypercube::new(4);
        let (src, s) = &samples[0];
        let far = s.iter().filter(|v| cube.distance(src.raw(), v.raw()) >= 2).count();
        assert!(far * 2 >= s.len(), "samples clustered near the source");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SamplingParams::default();
        let (a, _) = run_alg2(4, &p, 99);
        let (b, _) = run_alg2(4, &p, 99);
        assert_eq!(a.len(), b.len());
        for ((va, sa), (vb, sb)) in a.iter().zip(&b) {
            assert_eq!(va, vb);
            assert_eq!(sa, sb);
        }
    }
}
