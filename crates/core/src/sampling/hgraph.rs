//! Algorithm 1: rapid node sampling in H-graphs.
//!
//! Each node keeps a multiset `M` of node ids. Phase 1 fills `M` with
//! `m_0` uniformly random neighbors (walks of length 1). Each iteration
//! `i` then *doubles* every walk: the node sends `m_i` requests, each to a
//! walk endpoint popped from `M`; a node answering a request pops another
//! endpoint from its own `M` and returns it. Since the responder's entries
//! are themselves endpoints of independent length-`2^(i-1)` walks starting
//! at the responder, the concatenation is an independent walk of length
//! `2^i` (Lemma 5). After `T = ceil(log2 t)` iterations the entries are
//! endpoints of walks of length `>= t`, which are almost-uniform samples
//! by Lemma 2.
//!
//! One iteration costs two communication rounds (requests travel, then
//! responses travel), so the whole primitive takes `2T + 1 = O(log log n)`
//! rounds.
//!
//! The multiset sizes follow Lemma 7: `m_i = (2 + eps)^(T-i) c log n`, so
//! that w.h.p. `M` never runs empty: popping `m_i` own requests plus the
//! (Binomial, mean `m_i`) incoming requests stays below `m_{i-1}`.
//! A pop from an empty `M` is counted as a *failure* and answered with the
//! node's own id so the protocol can proceed; experiments report the count
//! (E5 probes the parameter boundary where failures appear).

use crate::backend::AnyNet;
use crate::config::{SamplingParams, Schedule};
use crate::metrics::SamplingMetrics;
use overlay_graphs::HGraph;
use rand::RngExt;
use simnet::{Ctx, NodeId, Payload, Protocol, SimEngine};
use std::sync::Arc;
use telemetry::{EventKind, Phase, Telemetry};

/// Messages of Algorithm 1.
#[derive(Clone, Debug)]
pub enum SampleMsg {
    /// "Give me one of your walk endpoints."
    Request,
    /// A walk endpoint.
    Response(NodeId),
}

impl Payload for SampleMsg {
    fn size_bits(&self) -> u64 {
        match self {
            SampleMsg::Request => 8,
            SampleMsg::Response(_) => 8 + NodeId::SIZE_BITS,
        }
    }

    fn digest(&self, digest: &mut simnet::Digest) {
        match self {
            SampleMsg::Request => {
                digest.write_u8(0);
            }
            SampleMsg::Response(v) => {
                digest.write_u8(1).write_u64(v.raw());
            }
        }
    }
}

/// Per-node state of Algorithm 1.
pub struct Alg1Node {
    schedule: Arc<Schedule>,
    neighbors: Vec<NodeId>,
    m: Vec<NodeId>,
    /// Iterations completed.
    iter: usize,
    /// Pop-from-empty events.
    pub failures: u64,
    /// Final samples, set after iteration `T` completes.
    pub samples: Option<Vec<NodeId>>,
}

impl Alg1Node {
    /// Create the node state. `neighbors` are the node's `d` H-graph
    /// neighbors with multiplicity (two per Hamilton cycle).
    pub fn new(schedule: Arc<Schedule>, neighbors: Vec<NodeId>) -> Self {
        assert!(!neighbors.is_empty(), "a sampler node needs neighbors");
        Self { schedule, neighbors, m: Vec::new(), iter: 0, failures: 0, samples: None }
    }

    /// Pop a uniformly random element of `M`; on underflow count a failure
    /// and fall back to the node's own id (`me`).
    fn pop(&mut self, me: NodeId, rng: &mut simnet::NodeRng) -> NodeId {
        if self.m.is_empty() {
            self.failures += 1;
            return me;
        }
        let k = rng.random_range(0..self.m.len());
        self.m.swap_remove(k)
    }

    /// Send the `m_{iter+1}` requests that start the next iteration.
    fn send_requests(&mut self, ctx: &mut Ctx<'_, SampleMsg>) {
        let k = self.schedule.m_at(self.iter + 1);
        let me = ctx.me();
        for _ in 0..k {
            let target = self.pop(me, ctx.rng());
            ctx.send(target, SampleMsg::Request);
        }
    }
}

impl Protocol for Alg1Node {
    type Msg = SampleMsg;

    fn digest(&self, digest: &mut simnet::Digest) {
        digest.write_usize(self.iter).write_u64(self.failures);
        digest.write_usize(self.m.len());
        for v in &self.m {
            digest.write_u64(v.raw());
        }
        match &self.samples {
            None => {
                digest.write_u8(0);
            }
            Some(s) => {
                digest.write_u8(1).write_usize(s.len());
                for v in s {
                    digest.write_u64(v.raw());
                }
            }
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, SampleMsg>) {
        let round = ctx.round();
        if round == 0 {
            // Phase 1 (local): m_0 uniformly random neighbors = walks of
            // length 1. Then immediately fire iteration 1's requests.
            let m0 = self.schedule.m_at(0);
            self.m = (0..m0)
                .map(|_| self.neighbors[ctx.rng().random_range(0..self.neighbors.len())])
                .collect();
            if self.schedule.iterations > 0 {
                self.send_requests(ctx);
            } else {
                self.samples = Some(self.m.clone());
            }
            return;
        }
        if self.samples.is_some() {
            return; // done; ignore stray traffic
        }
        let inbox = ctx.take_inbox();
        if round % 2 == 1 {
            // Phase 3: answer every request with a popped endpoint.
            let me = ctx.me();
            for env in inbox {
                if let SampleMsg::Request = env.msg {
                    let v = self.pop(me, ctx.rng());
                    ctx.send(env.from, SampleMsg::Response(v));
                }
            }
        } else {
            // Phase 4: collect responses into the new M; they are endpoints
            // of walks of doubled length.
            let mut new_m = Vec::with_capacity(self.schedule.m_at(self.iter + 1));
            for env in inbox {
                if let SampleMsg::Response(v) = env.msg {
                    new_m.push(v);
                }
            }
            self.m = new_m;
            self.iter += 1;
            if self.iter < self.schedule.iterations {
                self.send_requests(ctx);
            } else {
                self.samples = Some(self.m.clone());
            }
        }
    }
    /// A finished sampler ignores all traffic forever (`on_round` early
    /// returns on `samples.is_some()`), so the sharded backend may drop it
    /// from the per-round worklist.
    fn quiescent(&self) -> bool {
        self.samples.is_some()
    }
}

impl simnet::Checkpoint for SampleMsg {
    fn save(&self) -> serde_json::Value {
        match self {
            SampleMsg::Request => serde_json::json!({ "kind": "request" }),
            SampleMsg::Response(v) => serde_json::json!({ "kind": "response", "v": v.raw() }),
        }
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::{get_str, get_u64};
        match get_str(v, "kind")? {
            "request" => Ok(SampleMsg::Request),
            "response" => Ok(SampleMsg::Response(NodeId(get_u64(v, "v")?))),
            other => Err(simnet::CkptError::Corrupt(format!("unknown SampleMsg `{other}`"))),
        }
    }
}

impl simnet::Checkpoint for Alg1Node {
    fn save(&self) -> serde_json::Value {
        use simnet::checkpoint::save_slice;
        serde_json::json!({
            "schedule": self.schedule.save(),
            "neighbors": save_slice(&self.neighbors),
            "m": save_slice(&self.m),
            "iter": self.iter as u64,
            "failures": self.failures,
            "samples": match &self.samples {
                None => serde_json::Value::Null,
                Some(s) => save_slice(s),
            },
        })
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::{field, get_u64, get_usize, get_vec, load_vec};
        let samples = match field(v, "samples")? {
            serde_json::Value::Null => None,
            s => Some(load_vec(s)?),
        };
        Ok(Self {
            schedule: Arc::new(Schedule::load(field(v, "schedule")?)?),
            neighbors: get_vec(v, "neighbors")?,
            m: get_vec(v, "m")?,
            iter: get_usize(v, "iter")?,
            failures: get_u64(v, "failures")?,
            samples,
        })
    }
}

/// Run Algorithm 1 on the given H-graph: every node samples
/// `m_T >= beta log n` nodes. Returns per-node samples and run metrics.
pub fn run_alg1(
    graph: &HGraph,
    params: &SamplingParams,
    seed: u64,
) -> (Vec<(NodeId, Vec<NodeId>)>, SamplingMetrics) {
    let (out, metrics, _) = run_alg1_inner(graph, params, seed, false, &Telemetry::disabled());
    (out, metrics)
}

/// [`run_alg1`] that folds the run's telemetry (engine work metrics,
/// sampling events, phase profile) into `tel`.
pub fn run_alg1_observed(
    graph: &HGraph,
    params: &SamplingParams,
    seed: u64,
    tel: &Telemetry,
) -> (Vec<(NodeId, Vec<NodeId>)>, SamplingMetrics) {
    let (out, metrics, _) = run_alg1_inner(graph, params, seed, false, tel);
    (out, metrics)
}

/// Per-node samples, run metrics, and the engine's per-round digest stream.
pub type DigestedRun = (Vec<(NodeId, Vec<NodeId>)>, SamplingMetrics, Vec<simnet::RoundDigest>);

/// [`run_alg1`] with per-round state digests: returns the digest stream
/// recorded by the simnet engine (one [`simnet::RoundDigest`] per round)
/// alongside the usual outputs. Replaying with identical graph, params and
/// seed yields an identical stream; golden tests pin it.
pub fn run_alg1_digested(graph: &HGraph, params: &SamplingParams, seed: u64) -> DigestedRun {
    run_alg1_inner(graph, params, seed, true, &Telemetry::disabled())
}

/// [`run_alg1_digested`] that also folds the run's telemetry into `tel`.
/// The determinism guard uses this combination to prove that observing a
/// run leaves its digest stream byte-identical.
pub fn run_alg1_digested_observed(
    graph: &HGraph,
    params: &SamplingParams,
    seed: u64,
    tel: &Telemetry,
) -> DigestedRun {
    run_alg1_inner(graph, params, seed, true, tel)
}

fn run_alg1_inner(
    graph: &HGraph,
    params: &SamplingParams,
    seed: u64,
    digests: bool,
    tel: &Telemetry,
) -> DigestedRun {
    let n = graph.len();
    let schedule = Arc::new(Schedule::algorithm1(n, graph.degree(), params));
    // Every run records into a private collector; the work fields of
    // `SamplingMetrics` derive from its snapshot, and callers observing the
    // run absorb it wholesale. Attaching it never perturbs the engine's
    // digest stream (observability guarantee of `Network::set_telemetry`).
    let collector =
        Telemetry::new(telemetry::Config { timing: tel.timing(), ..Default::default() });
    let _sampling = collector.phase(Phase::Sampling);
    let iterations = schedule.iterations;
    collector.emit(0, EventKind::SamplingStarted, None, n as u64, || {
        format!("alg1 n={n} T={iterations}")
    });
    let mut net: AnyNet<Alg1Node> = crate::backend::select().build(seed);
    net.set_telemetry(collector.clone());
    if digests {
        net.enable_digests();
        net.set_manifest(format!(
            "alg1 n={n} d={} alpha={} beta={} epsilon={} c={}",
            graph.degree(),
            params.alpha,
            params.beta,
            params.epsilon,
            params.c
        ));
    }
    for &v in graph.nodes() {
        net.add_node(v, Alg1Node::new(Arc::clone(&schedule), graph.neighbors(v)));
    }
    let rounds = schedule.rounds() as u64;
    net.run(rounds);

    let mut out = Vec::with_capacity(n);
    let mut failures = 0;
    let mut min_samples = usize::MAX;
    for &v in graph.nodes() {
        let node = net.node(v).expect("node still present");
        failures += node.failures;
        let samples = node.samples.clone().expect("sampler finished");
        min_samples = min_samples.min(samples.len());
        out.push((v, samples));
    }
    collector.emit(rounds, EventKind::SamplingFinished, None, failures, || {
        format!("alg1 n={n} failures={failures}")
    });
    let metrics = SamplingMetrics::from_snapshot(
        &collector.snapshot(),
        n,
        rounds,
        schedule.iterations,
        if n == 0 { 0 } else { min_samples },
        failures,
    );
    drop(_sampling);
    tel.absorb(&collector);
    (out, metrics, net.trace().digests().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: u64, seed: u64) -> HGraph {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        HGraph::random(&nodes, 8, &mut rng)
    }

    #[test]
    fn all_nodes_get_enough_samples() {
        let g = graph(64, 1);
        let p = SamplingParams::default();
        let (samples, metrics) = run_alg1(&g, &p, 42);
        assert_eq!(samples.len(), 64);
        let need = p.samples_needed(64);
        for (_, s) in &samples {
            assert!(s.len() >= need, "{} < {need}", s.len());
        }
        assert_eq!(metrics.rounds as usize, 2 * metrics.iterations + 1);
    }

    #[test]
    fn no_failures_with_default_parameters() {
        let g = graph(128, 2);
        let (_, metrics) = run_alg1(&g, &SamplingParams::default(), 7);
        assert_eq!(metrics.failures, 0, "Lemma 7 regime must not underflow");
    }

    #[test]
    fn undersized_schedule_fails() {
        // c far below the Chernoff sizing and epsilon tiny: pops collide.
        let g = graph(128, 3);
        let p = SamplingParams { epsilon: 0.01, c: 0.2, ..SamplingParams::default() };
        let (_, metrics) = run_alg1(&g, &p, 7);
        assert!(metrics.failures > 0, "deliberately broken schedule should underflow");
    }

    #[test]
    fn samples_cover_the_graph() {
        // Aggregate samples from all nodes should hit most of the graph.
        let n = 64;
        let g = graph(n, 4);
        let (samples, _) = run_alg1(&g, &SamplingParams::default(), 9);
        let mut seen = std::collections::HashSet::new();
        for (_, s) in &samples {
            seen.extend(s.iter().copied());
        }
        assert!(seen.len() as u64 >= n * 9 / 10, "coverage {} of {n}", seen.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = graph(32, 5);
        let p = SamplingParams::default();
        let (a, ma) = run_alg1(&g, &p, 123);
        let (b, mb) = run_alg1(&g, &p, 123);
        assert_eq!(ma.total_msgs, mb.total_msgs);
        for ((va, sa), (vb, sb)) in a.iter().zip(&b) {
            assert_eq!(va, vb);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn rounds_are_loglog_scale() {
        let p = SamplingParams::default();
        let (_, m_small) = run_alg1(&graph(32, 6), &p, 1);
        let (_, m_big) = run_alg1(&graph(256, 7), &p, 1);
        // 8x the nodes adds at most 2 rounds (one doubling iteration).
        assert!(m_big.rounds <= m_small.rounds + 2);
    }
}
