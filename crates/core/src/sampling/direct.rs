//! Vectorized execution of Algorithm 1 for large-`n` sweeps.
//!
//! Runs the *same* algorithm and schedule as [`crate::sampling::hgraph`]
//! but with dense-index array storage and rayon-parallel phases instead of
//! per-message envelopes, so experiment sweeps can reach `n` in the
//! hundreds of thousands. Work accounting is derived from the exact
//! message counts the envelope version would have produced (same message
//! types, same sizes), so metrics remain comparable; a cross-validation
//! test checks both versions produce statistically indistinguishable
//! sample distributions.

use crate::config::{SamplingParams, Schedule};
use crate::metrics::SamplingMetrics;
use overlay_graphs::HGraph;
use rand::RngExt;
use rayon::prelude::*;
use simnet::rng::stream;
use telemetry::{EventKind, Phase, Telemetry};

/// Bit sizes matching [`crate::sampling::hgraph::SampleMsg`].
const REQUEST_BITS: u64 = 8;
const RESPONSE_BITS: u64 = 8 + 64;

/// Result of a direct-mode run.
#[derive(Clone, Debug)]
pub struct DirectRun {
    /// Per-node samples, indexed densely in `graph.nodes()` order.
    pub samples: Vec<Vec<u32>>,
    /// Run metrics (rounds, failures, work) equivalent to the
    /// envelope-level implementation.
    pub metrics: SamplingMetrics,
}

/// Run Algorithm 1 in direct mode on `graph` with dense node indices.
pub fn run_alg1_direct(graph: &HGraph, params: &SamplingParams, seed: u64) -> DirectRun {
    run_alg1_direct_observed(graph, params, seed, &Telemetry::disabled())
}

/// [`run_alg1_direct`] that folds the run's telemetry into `tel`. There is
/// no simulated network here, so the analytic work accounting is recorded
/// under the same `net.*` metric names the envelope runners use, keeping
/// [`SamplingMetrics::from_snapshot`] the single derivation path.
pub fn run_alg1_direct_observed(
    graph: &HGraph,
    params: &SamplingParams,
    seed: u64,
    tel: &Telemetry,
) -> DirectRun {
    let n = graph.len();
    let d = graph.degree();
    let schedule = Schedule::algorithm1(n, d, params);
    let collector =
        Telemetry::new(telemetry::Config { timing: tel.timing(), ..Default::default() });
    let sampling = collector.phase(Phase::Sampling);
    let iterations = schedule.iterations;
    collector.emit(0, EventKind::SamplingStarted, None, n as u64, || {
        format!("alg1-direct n={n} T={iterations}")
    });

    // Dense neighbor table: neighbors of node u at [u*d .. (u+1)*d].
    let mut dense: std::collections::HashMap<simnet::NodeId, u32> =
        std::collections::HashMap::with_capacity(n);
    for (i, &v) in graph.nodes().iter().enumerate() {
        dense.insert(v, i as u32);
    }
    let mut nbr: Vec<u32> = Vec::with_capacity(n * d);
    for &v in graph.nodes() {
        for w in graph.neighbors(v) {
            nbr.push(dense[&w]);
        }
    }

    // Phase 1: m_0 uniform random neighbors per node.
    let m0 = schedule.m_at(0);
    let mut m: Vec<Vec<u32>> = (0..n)
        .into_par_iter()
        .map(|u| {
            let mut rng = stream(seed, u as u64, 1);
            (0..m0).map(|_| nbr[u * d + rng.random_range(0..d)]).collect()
        })
        .collect();

    let mut failures = 0u64;
    let mut max_node_msgs = 0u64;
    let mut max_node_bits = 0u64;
    let mut total_msgs = 0u64;

    for i in 1..=schedule.iterations {
        let mi = schedule.m_at(i);

        // Phase 2: every node pops m_i walk endpoints and targets them.
        let (requests, req_underflows): (Vec<Vec<u32>>, Vec<u64>) = m
            .par_iter_mut()
            .enumerate()
            .map(|(u, set)| {
                let mut rng = stream(seed, u as u64, 100 + i as u64);
                let mut under = 0u64;
                let targets: Vec<u32> = (0..mi)
                    .map(|_| {
                        if set.is_empty() {
                            under += 1;
                            u as u32 // fallback: self, like the envelope version
                        } else {
                            let k = rng.random_range(0..set.len());
                            set.swap_remove(k)
                        }
                    })
                    .collect();
                (targets, under)
            })
            .unzip();
        failures += req_underflows.iter().sum::<u64>();

        // Bucket requests by target (serial scatter; cheap relative to the
        // parallel pops around it).
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, targets) in requests.iter().enumerate() {
            for &t in targets {
                buckets[t as usize].push(u as u32);
            }
        }

        // Phase 3: every node answers its incoming requests by popping
        // from its own M. Buckets align with M, so this parallelizes.
        let (responses, resp_underflows): (Vec<Vec<(u32, u32)>>, Vec<u64>) = m
            .par_iter_mut()
            .zip(buckets.par_iter())
            .enumerate()
            .map(|(v, (set, bucket))| {
                let mut rng = stream(seed, v as u64, 200 + i as u64);
                let mut under = 0u64;
                let out: Vec<(u32, u32)> = bucket
                    .iter()
                    .map(|&from| {
                        let id = if set.is_empty() {
                            under += 1;
                            v as u32 // fallback: self
                        } else {
                            let k = rng.random_range(0..set.len());
                            set.swap_remove(k)
                        };
                        (from, id)
                    })
                    .collect();
                (out, under)
            })
            .unzip();
        failures += resp_underflows.iter().sum::<u64>();

        // Phase 4: regroup responses by requester.
        let mut new_m: Vec<Vec<u32>> = vec![Vec::with_capacity(mi); n];
        for resp in &responses {
            for &(from, id) in resp {
                new_m[from as usize].push(id);
            }
        }
        m = new_m;

        // Work accounting (matching the envelope implementation):
        // request round: each node sends m_i requests; response round: each
        // node receives its bucket and sends as many responses; final
        // round: receives m_i responses.
        let max_bucket = buckets.par_iter().map(Vec::len).max().unwrap_or(0) as u64;
        max_node_msgs = max_node_msgs.max(mi as u64).max(2 * max_bucket).max(mi as u64);
        max_node_bits = max_node_bits
            .max(mi as u64 * REQUEST_BITS)
            .max(max_bucket * (REQUEST_BITS + RESPONSE_BITS))
            .max(mi as u64 * RESPONSE_BITS);
        // n*m_i requests + n*m_i responses, each charged as one send event
        // and one receive event (matching CommStats conventions).
        total_msgs += 4 * (n * mi) as u64;
    }

    let min_samples = m.iter().map(Vec::len).min().unwrap_or(0);
    collector.gauge("net.max_node_bits", &[]).record_max(max_node_bits);
    collector.gauge("net.max_node_msgs", &[]).record_max(max_node_msgs);
    collector.counter("net.total_msgs", &[]).add(total_msgs);
    collector.add_work(Phase::Sampling, 0, total_msgs);
    let rounds = schedule.rounds() as u64;
    collector.emit(rounds, EventKind::SamplingFinished, None, failures, || {
        format!("alg1-direct n={n} failures={failures}")
    });
    let metrics = SamplingMetrics::from_snapshot(
        &collector.snapshot(),
        n,
        rounds,
        schedule.iterations,
        min_samples,
        failures,
    );
    drop(sampling);
    tel.absorb(&collector);
    DirectRun { samples: m, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simnet::NodeId;

    fn graph(n: u64, seed: u64) -> HGraph {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        HGraph::random(&nodes, 8, &mut rng)
    }

    #[test]
    fn direct_mode_delivers_full_sample_sets() {
        let g = graph(256, 1);
        let p = SamplingParams::default();
        let run = run_alg1_direct(&g, &p, 3);
        assert_eq!(run.samples.len(), 256);
        assert_eq!(run.metrics.failures, 0);
        let need = p.samples_needed(256);
        for s in &run.samples {
            assert!(s.len() >= need);
        }
    }

    #[test]
    fn direct_mode_scales_to_larger_n() {
        let g = graph(4096, 2);
        let run = run_alg1_direct(&g, &SamplingParams::default(), 5);
        assert_eq!(run.metrics.failures, 0);
        assert!(run.metrics.rounds <= 13, "rounds {}", run.metrics.rounds);
    }

    #[test]
    fn distribution_agrees_with_envelope_version() {
        // Pool all samples and compare both implementations against the
        // uniform distribution — both must pass at the same confidence.
        let g = graph(64, 3);
        let p = SamplingParams { c: 4.0, ..SamplingParams::default() };
        let direct = run_alg1_direct(&g, &p, 7);
        let mut counts = vec![0u64; 64];
        for s in &direct.samples {
            for &id in s {
                counts[id as usize] += 1;
            }
        }
        let (_, p_direct) = overlay_stats::uniform_fit(&counts);
        assert!(p_direct > 1e-4, "direct-mode uniformity rejected: {p_direct}");

        let (env_samples, _) = crate::sampling::run_alg1(&g, &p, 7);
        let mut counts2 = vec![0u64; 64];
        for (_, s) in &env_samples {
            for id in s {
                counts2[id.raw() as usize] += 1;
            }
        }
        let (_, p_env) = overlay_stats::uniform_fit(&counts2);
        assert!(p_env > 1e-4, "envelope uniformity rejected: {p_env}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = graph(128, 4);
        let p = SamplingParams::default();
        let a = run_alg1_direct(&g, &p, 11);
        let b = run_alg1_direct(&g, &p, 11);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn undersized_schedule_reports_failures() {
        let g = graph(128, 5);
        let p = SamplingParams { epsilon: 0.01, c: 0.15, ..SamplingParams::default() };
        let run = run_alg1_direct(&g, &p, 13);
        assert!(run.metrics.failures > 0);
    }
}
