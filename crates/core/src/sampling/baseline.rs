//! The plain random-walk sampler — the state of the art Section 3 improves
//! upon exponentially (cf. Das Sarma et al. and the lower bound of
//! Nanongkai et al., discussed in Section 1.2).
//!
//! Every node launches `k` tokens; each token performs a simple random
//! walk of length `t = ceil(2 alpha log_{d/4} n)` (the mixing length of
//! Lemma 2), one hop per communication round. The final holder reports its
//! id back to the origin in one extra round. Total: `t + 1 = Theta(log n)`
//! rounds, versus Algorithm 1's `2 log2(t) + 1 = Theta(log log n)`.

use crate::backend::AnyNet;
use crate::config::SamplingParams;
use crate::metrics::SamplingMetrics;
use overlay_graphs::HGraph;
use rand::RngExt;
use simnet::{Ctx, NodeId, Payload, Protocol, SimEngine};
use telemetry::{EventKind, Phase, Telemetry};

/// Messages of the baseline sampler.
#[derive(Clone, Debug)]
pub enum WalkMsg {
    /// A walking token: who launched it and how many hops remain.
    Token { origin: NodeId, remaining: u32 },
    /// Walk finished; the endpoint reports itself to the origin.
    Result { endpoint: NodeId },
}

impl Payload for WalkMsg {
    fn size_bits(&self) -> u64 {
        match self {
            WalkMsg::Token { .. } => 8 + NodeId::SIZE_BITS + 32,
            WalkMsg::Result { .. } => 8 + NodeId::SIZE_BITS,
        }
    }
}

/// Per-node state of the baseline sampler.
pub struct BaselineNode {
    neighbors: Vec<NodeId>,
    tokens_to_launch: usize,
    walk_length: u32,
    /// Uniform samples received back so far.
    pub results: Vec<NodeId>,
}

impl BaselineNode {
    /// A node launching `k` tokens of the given walk length.
    pub fn new(neighbors: Vec<NodeId>, k: usize, walk_length: u32) -> Self {
        assert!(!neighbors.is_empty());
        Self { neighbors, tokens_to_launch: k, walk_length, results: Vec::with_capacity(k) }
    }

    fn random_neighbor(&self, rng: &mut simnet::NodeRng) -> NodeId {
        self.neighbors[rng.random_range(0..self.neighbors.len())]
    }
}

impl Protocol for BaselineNode {
    type Msg = WalkMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, WalkMsg>) {
        if ctx.round() == 0 {
            let me = ctx.me();
            for _ in 0..self.tokens_to_launch {
                let first = self.random_neighbor(ctx.rng());
                let msg = WalkMsg::Token { origin: me, remaining: self.walk_length - 1 };
                ctx.send(first, msg);
            }
            self.tokens_to_launch = 0;
            return;
        }
        let inbox = ctx.take_inbox();
        let me = ctx.me();
        for env in inbox {
            match env.msg {
                WalkMsg::Token { origin, remaining } => {
                    if remaining == 0 {
                        ctx.send(origin, WalkMsg::Result { endpoint: me });
                    } else {
                        let next = self.random_neighbor(ctx.rng());
                        ctx.send(next, WalkMsg::Token { origin, remaining: remaining - 1 });
                    }
                }
                WalkMsg::Result { endpoint } => self.results.push(endpoint),
            }
        }
    }
}

/// Run the baseline sampler: every node of `graph` launches
/// `beta log n` tokens walking for the Lemma 2 mixing length. Returns the
/// per-node samples and metrics (note `rounds = Theta(log n)`).
pub fn run_baseline(
    graph: &HGraph,
    params: &SamplingParams,
    seed: u64,
) -> (Vec<(NodeId, Vec<NodeId>)>, SamplingMetrics) {
    run_baseline_observed(graph, params, seed, &Telemetry::disabled())
}

/// [`run_baseline`] that folds the run's telemetry into `tel`.
pub fn run_baseline_observed(
    graph: &HGraph,
    params: &SamplingParams,
    seed: u64,
    tel: &Telemetry,
) -> (Vec<(NodeId, Vec<NodeId>)>, SamplingMetrics) {
    let n = graph.len();
    let k = params.samples_needed(n);
    let t = params.walk_length(n, graph.degree()).max(1) as u32;
    let collector =
        Telemetry::new(telemetry::Config { timing: tel.timing(), ..Default::default() });
    let sampling = collector.phase(Phase::Sampling);
    collector
        .emit(0, EventKind::SamplingStarted, None, n as u64, || format!("baseline n={n} walk={t}"));
    let mut net: AnyNet<BaselineNode> = crate::backend::select().build(seed);
    net.set_telemetry(collector.clone());
    for &v in graph.nodes() {
        net.add_node(v, BaselineNode::new(graph.neighbors(v), k, t));
    }
    // t hop-rounds + 1 result round + 1 to process the final delivery.
    let rounds = t as u64 + 2;
    net.run(rounds);

    let mut out = Vec::with_capacity(n);
    let mut min_samples = usize::MAX;
    for &v in graph.nodes() {
        let node = net.node(v).expect("present");
        min_samples = min_samples.min(node.results.len());
        out.push((v, node.results.clone()));
    }
    collector.emit(rounds, EventKind::SamplingFinished, None, 0, || format!("baseline n={n}"));
    let metrics = SamplingMetrics::from_snapshot(
        &collector.snapshot(),
        n,
        rounds,
        t as usize,
        min_samples,
        0,
    );
    drop(sampling);
    tel.absorb(&collector);
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: u64, seed: u64) -> HGraph {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        HGraph::random(&nodes, 8, &mut rng)
    }

    #[test]
    fn every_token_comes_home() {
        let g = graph(64, 1);
        let p = SamplingParams::default();
        let (samples, metrics) = run_baseline(&g, &p, 2);
        let k = p.samples_needed(64);
        for (_, s) in &samples {
            assert_eq!(s.len(), k, "all launched tokens must return");
        }
        assert_eq!(metrics.samples_per_node, k);
    }

    #[test]
    fn baseline_needs_logarithmically_many_rounds() {
        let p = SamplingParams::default();
        let (_, m1) = run_baseline(&graph(32, 3), &p, 1);
        let (_, m2) = run_baseline(&graph(256, 4), &p, 1);
        // 8x nodes: walk length grows by a constant factor (log n), much
        // more than the <= 2 extra rounds of Algorithm 1.
        assert!(m2.rounds >= m1.rounds + 4, "{} vs {}", m2.rounds, m1.rounds);
    }

    #[test]
    fn endpoints_spread_over_the_graph() {
        let g = graph(32, 5);
        let p = SamplingParams::default();
        let (samples, _) = run_baseline(&g, &p, 7);
        let mut seen = std::collections::HashSet::new();
        for (_, s) in &samples {
            seen.extend(s.iter().copied());
        }
        assert!(seen.len() >= 28, "coverage {}", seen.len());
    }
}
