//! The lower bound of Lemma 4.
//!
//! No algorithm can let a node `u` sample uniformly from `V` in
//! `o(log diameter)` rounds, because even the fastest possible information
//! spread — every node introduces everything it knows to everything it
//! knows, every round — needs `Omega(log D)` rounds before `u` can hold a
//! reference to a node at distance `D`. This module simulates exactly that
//! knowledge spread and reports how many rounds each node needs to know
//! the whole graph; experiment E4 compares the result against
//! `log2(diameter)` and against the round counts of Algorithms 1/2.

use overlay_graphs::Adjacency;

/// Bitset over node indices.
#[derive(Clone)]
struct Bits(Vec<u64>);

impl Bits {
    fn new(n: usize) -> Self {
        Bits(vec![0; n.div_ceil(64)])
    }
    #[inline]
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn or_with(&mut self, other: &Bits) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
    fn count(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }
    fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .flat_map(|(wi, &w)| (0..64).filter(move |b| w >> b & 1 == 1).map(move |b| wi * 64 + b))
    }
}

/// Simulate maximal knowledge spread ("introduce everyone to everyone")
/// and return, for each node, the first round by which it knows all of
/// `V`. Knowledge sets square each round, so the answer is
/// `ceil(log2(eccentricity))`-ish — the Lemma 4 bound made concrete.
///
/// Intended for moderate `n` (the sets are `n` bits per node).
pub fn knowledge_spread_rounds(adj: &Adjacency) -> Vec<u32> {
    let n = adj.len();
    assert!(n >= 1);
    // K_0[v] = {v} ∪ N(v).
    let mut know: Vec<Bits> = (0..n)
        .map(|v| {
            let mut b = Bits::new(n);
            b.set(v);
            for &w in adj.neighbors(v) {
                b.set(w as usize);
            }
            b
        })
        .collect();
    let mut done_at = vec![u32::MAX; n];
    for (v, k) in know.iter().enumerate() {
        if k.count() == n {
            done_at[v] = 0;
        }
    }
    let mut round = 0u32;
    while done_at.contains(&u32::MAX) {
        round += 1;
        assert!(round <= 64, "knowledge spread did not converge (disconnected graph?)");
        let prev = know.clone();
        for v in 0..n {
            if done_at[v] != u32::MAX {
                continue;
            }
            let members: Vec<usize> = prev[v].ones().collect();
            for w in members {
                know[v].or_with(&prev[w]);
            }
            if know[v].count() == n {
                done_at[v] = round;
            }
        }
    }
    done_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    fn path(n: u64) -> Adjacency {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let edges: Vec<_> = (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))).collect();
        Adjacency::from_edges(&nodes, &edges)
    }

    #[test]
    fn path_needs_log_diameter_rounds() {
        // Path of 65 nodes: diameter 64. Endpoint knowledge doubles its
        // radius each round: needs ceil(log2(64)) = 6 rounds.
        let rounds = knowledge_spread_rounds(&path(65));
        let end = rounds[0];
        assert_eq!(end, 6, "endpoint of a 64-diameter path needs log2(64) rounds");
        // The middle node has eccentricity 32: 5 rounds.
        let mid = rounds[32];
        assert_eq!(mid, 5);
    }

    #[test]
    fn clique_needs_zero_rounds() {
        let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut edges = Vec::new();
        for i in 0..5u64 {
            for j in i + 1..5 {
                edges.push((NodeId(i), NodeId(j)));
            }
        }
        let adj = Adjacency::from_edges(&nodes, &edges);
        assert!(knowledge_spread_rounds(&adj).iter().all(|&r| r == 0));
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn disconnected_graph_panics() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let adj = Adjacency::from_edges(&nodes, &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        knowledge_spread_rounds(&adj);
    }
}
