//! Parameters of the sampling and reconfiguration algorithms, and the
//! derived schedules (`T`, `m_0, ..., m_T`) of Section 3.

use serde::{Deserialize, Serialize};

/// `ceil(log2(n))` for `n >= 1`.
pub fn log2_ceil(n: usize) -> u32 {
    assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros()
}

/// `floor(log2(n))` for `n >= 1`.
pub fn log2_floor(n: usize) -> u32 {
    assert!(n >= 1);
    usize::BITS - 1 - n.leading_zeros()
}

/// Parameters of the rapid node sampling primitives (Section 3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Walk-length constant `alpha` of Lemma 2: walks have length at least
    /// `2 alpha log_{d/4} n`, giving pointwise deviation `n^-alpha`.
    pub alpha: f64,
    /// Required samples per node: at least `beta log2 n`.
    pub beta: f64,
    /// Slack `epsilon` of the multiset schedule (Lemmas 7 and 9):
    /// `m_i = (2+eps)^(T-i) c log n` for H-graphs,
    /// `m_i = (1+eps)^(loglog n - i) c log n` for hypercubes.
    pub epsilon: f64,
    /// Base multiset constant `c >= beta`. The paper sizes it by Chernoff
    /// bounds; experiments sweep it to probe the failure boundary.
    pub c: f64,
}

impl Default for SamplingParams {
    fn default() -> Self {
        // Laptop-scale defaults. epsilon = 1 makes the Algorithm 1 schedule
        // geometric with base 3, leaving a 2*m_i response reserve over the
        // mean m_i incoming requests — far enough into the Chernoff tail
        // that underflows are not observed at experiment sizes. alpha = 1
        // is conservative in practice: Lemma 2's log_{d/4} n bound is far
        // above the real mixing time of random H-graphs. E5 sweeps both
        // parameters to probe the failure boundary.
        Self { alpha: 1.0, beta: 1.0, epsilon: 1.0, c: 2.0 }
    }
}

impl SamplingParams {
    /// Paper-faithful parameters: `c` sized by the Chernoff bound of
    /// Lemma 7 so the per-node per-iteration failure probability is at
    /// most `n^-k`.
    pub fn paper_whp(k: f64) -> Self {
        let epsilon = 0.5;
        Self {
            alpha: 3.0,
            beta: 2.0,
            epsilon,
            c: overlay_stats::smallest_c_for_whp(epsilon, k).max(2.0),
        }
    }

    /// Walk length target `t = ceil(2 alpha log_{d/4} n)` (Lemma 2).
    pub fn walk_length(&self, n: usize, d: usize) -> usize {
        overlay_graphs::walk::mixing_length(n, d, self.alpha)
    }

    /// Required sample count `ceil(beta log2 n)`.
    pub fn samples_needed(&self, n: usize) -> usize {
        (self.beta * (n.max(2) as f64).log2()).ceil() as usize
    }
}

/// The derived per-iteration multiset sizes for Algorithm 1 (H-graphs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Number of doubling iterations `T`.
    pub iterations: usize,
    /// `m_0, m_1, ..., m_T` (length `iterations + 1`).
    pub m: Vec<usize>,
}

impl Schedule {
    /// Algorithm 1 schedule: `T = ceil(log2(t))` for walk-length target
    /// `t`, and `m_i = ceil((2+eps)^(T-i) c log2 n)`.
    pub fn algorithm1(n: usize, d: usize, p: &SamplingParams) -> Self {
        let t = p.walk_length(n, d).max(2);
        let iterations = log2_ceil(t) as usize;
        let base = 2.0 + p.epsilon;
        let logn = (n.max(2) as f64).log2();
        let m = (0..=iterations)
            .map(|i| (base.powi((iterations - i) as i32) * p.c * logn).ceil() as usize)
            .collect();
        Self { iterations, m }
    }

    /// Algorithm 2 schedule: `T = log2(dim)` iterations over a hypercube of
    /// dimension `dim` (power of two), `m_i = ceil((1+eps)^(T-i) c log2 n)`
    /// where `n = 2^dim`.
    pub fn algorithm2(dim: u32, p: &SamplingParams) -> Self {
        assert!(dim.is_power_of_two(), "Algorithm 2 assumes d = 2^k, got {dim}");
        let iterations = log2_floor(dim as usize) as usize;
        let base = 1.0 + p.epsilon;
        let logn = dim as f64; // log2 of n = 2^dim
        let m = (0..=iterations)
            .map(|i| (base.powi((iterations - i) as i32) * p.c * logn).ceil() as usize)
            .collect();
        Self { iterations, m }
    }

    /// `m_i`.
    pub fn m_at(&self, i: usize) -> usize {
        self.m[i]
    }

    /// The final multiset size `m_T` (the number of samples delivered).
    pub fn final_size(&self) -> usize {
        *self.m.last().expect("non-empty schedule")
    }

    /// Total communication rounds of the primitive: one local round plus
    /// two rounds (request + response) per iteration.
    pub fn rounds(&self) -> usize {
        2 * self.iterations + 1
    }

    /// Whether this schedule yields at least `beta log n` samples.
    pub fn satisfies(&self, n: usize, p: &SamplingParams) -> bool {
        self.final_size() >= p.samples_needed(n)
    }
}

impl simnet::Checkpoint for SamplingParams {
    fn save(&self) -> serde_json::Value {
        use simnet::checkpoint::f64_bits;
        serde_json::json!({
            "alpha": f64_bits(self.alpha),
            "beta": f64_bits(self.beta),
            "epsilon": f64_bits(self.epsilon),
            "c": f64_bits(self.c),
        })
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::get_f64_bits;
        Ok(Self {
            alpha: get_f64_bits(v, "alpha")?,
            beta: get_f64_bits(v, "beta")?,
            epsilon: get_f64_bits(v, "epsilon")?,
            c: get_f64_bits(v, "c")?,
        })
    }
}

impl simnet::Checkpoint for Schedule {
    fn save(&self) -> serde_json::Value {
        let m: Vec<u64> = self.m.iter().map(|&x| x as u64).collect();
        serde_json::json!({ "iterations": self.iterations as u64, "m": m })
    }
    fn load(v: &serde_json::Value) -> simnet::CkptResult<Self> {
        use simnet::checkpoint::{get_usize, get_vec};
        let m: Vec<u64> = get_vec(v, "m")?;
        Ok(Self {
            iterations: get_usize(v, "iterations")?,
            m: m.into_iter().map(|x| x as usize).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_helpers() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_floor(1023), 9);
        assert_eq!(log2_floor(1024), 10);
    }

    #[test]
    fn schedule1_monotone_decreasing_with_slack() {
        let p = SamplingParams::default();
        let s = Schedule::algorithm1(4096, 8, &p);
        assert_eq!(s.m.len(), s.iterations + 1);
        for i in 1..=s.iterations {
            // Lemma 7's success condition needs m_{i-1} > m_i comfortably.
            assert!(
                s.m[i - 1] as f64 >= (2.0 + p.epsilon) * s.m[i] as f64 - 1.0,
                "schedule not geometric at {i}"
            );
        }
        assert!(s.satisfies(4096, &p));
    }

    #[test]
    fn schedule1_iterations_grow_like_loglog() {
        let p = SamplingParams::default();
        let t_small = Schedule::algorithm1(1 << 8, 8, &p).iterations;
        let t_big = Schedule::algorithm1(1 << 16, 8, &p).iterations;
        // Squaring n adds at most ~1 iteration.
        assert!(t_big >= t_small);
        assert!(t_big - t_small <= 2);
    }

    #[test]
    fn schedule2_requires_power_of_two_dim() {
        let p = SamplingParams::default();
        let s = Schedule::algorithm2(16, &p);
        assert_eq!(s.iterations, 4);
        assert_eq!(s.rounds(), 9);
    }

    #[test]
    #[should_panic(expected = "d = 2^k")]
    fn schedule2_rejects_odd_dim() {
        Schedule::algorithm2(12, &SamplingParams::default());
    }

    #[test]
    fn paper_whp_params_have_large_c() {
        let p = SamplingParams::paper_whp(2.0);
        assert!(p.c >= overlay_stats::smallest_c_for_whp(0.5, 2.0));
        assert!(p.c >= p.beta);
    }

    #[test]
    fn walk_length_is_logarithmic() {
        let p = SamplingParams::default();
        let t1 = p.walk_length(1 << 10, 8);
        let t2 = p.walk_length(1 << 20, 8);
        assert!((t2 as f64 / t1 as f64 - 2.0).abs() < 0.3);
    }
}
