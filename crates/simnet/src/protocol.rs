//! The node-side protocol interface.

use crate::digest::Digest;
use crate::message::{Envelope, Payload};
use crate::rng::NodeRng;
use crate::NodeId;

/// A distributed protocol, executed locally by every node.
///
/// `on_round` is called once per synchronous round on every *non-blocked*
/// node. Within it, the node performs the three steps of the paper's model:
/// it reads the messages delivered this round via [`Ctx::take_inbox`],
/// performs arbitrary local computation, and queues outgoing messages via
/// [`Ctx::send`]; those are delivered at the start of the next round
/// (subject to the DoS blocking rule, see [`crate::fault`]).
pub trait Protocol: Send {
    /// The message type exchanged by this protocol.
    type Msg: Payload;

    /// Execute one round.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Feed this node's protocol state into a replay-verification digest
    /// (see [`crate::Network::round_digest`]).
    ///
    /// The default contributes nothing, which is always *sound* — the
    /// engine separately digests membership, RNG positions and in-flight
    /// messages — but protocols should override this to hash every field
    /// that defines their state, so that state divergence between two runs
    /// is caught at the round it happens rather than when it first affects
    /// a message.
    fn digest(&self, digest: &mut Digest) {
        let _ = digest;
    }

    /// Called when the node completes a crash-recovery fault with state
    /// loss (see [`crate::fault::NodeFault::CrashRecover`]).
    ///
    /// Protocols model the loss by resetting their fields here; the default
    /// keeps the state unchanged, which models a node whose protocol state
    /// survives on durable storage. The engine separately clears the inbox
    /// and re-keys the node's RNG stream in either case.
    fn on_crash_recover(&mut self) {}

    /// True when this node has gone permanently passive: for every future
    /// round and *any* inbox contents, [`Protocol::on_round`] would neither
    /// mutate protocol state, nor draw from the node RNG, nor send a
    /// message. The flag may only flip back to `false` through an external
    /// state change the engine can see ([`Protocol::on_crash_recover`] or
    /// direct mutation via `node_mut`).
    ///
    /// Backends with an active-set worklist (see `simnet-xl`) use this to
    /// skip the `on_round` call entirely — they still clear the inbox, as
    /// the round model requires — so quiescent rounds cost O(active)
    /// instead of O(n). Because a quiescent `on_round` touches nothing, a
    /// skipped call is indistinguishable from an executed one and the
    /// round-digest stream is unchanged. The legacy engine ignores the
    /// flag. The default is `false`: always step.
    fn quiescent(&self) -> bool {
        false
    }
}

/// Per-round execution context handed to [`Protocol::on_round`].
///
/// Borrows the node's inbox, outbox and private RNG stream from the engine.
pub struct Ctx<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) round: u64,
    pub(crate) inbox: &'a mut Vec<Envelope<M>>,
    pub(crate) outbox: &'a mut Vec<Envelope<M>>,
    pub(crate) rng: &'a mut NodeRng,
}

impl<'a, M: Payload> Ctx<'a, M> {
    /// Assemble a context from its parts.
    ///
    /// This is the backend-implementor entry point: an alternative engine
    /// (e.g. `simnet-xl`) borrows a node's inbox, a send buffer and the
    /// node's private RNG stream and hands the protocol exactly the same
    /// view the legacy engine would. `outbox` receives the envelopes queued
    /// by [`Ctx::send`]; the backend routes them after `on_round` returns.
    pub fn from_parts(
        me: NodeId,
        round: u64,
        inbox: &'a mut Vec<Envelope<M>>,
        outbox: &'a mut Vec<Envelope<M>>,
        rng: &'a mut NodeRng,
    ) -> Self {
        Self { me, round, inbox, outbox, rng }
    }

    /// This node's identifier.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current round number.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Messages delivered to this node this round (sent in the previous
    /// round). Taking the inbox leaves it empty; a second call within the
    /// same round returns nothing.
    pub fn take_inbox(&mut self) -> Vec<Envelope<M>> {
        std::mem::take(self.inbox)
    }

    /// Peek at the inbox without consuming it.
    pub fn inbox(&self) -> &[Envelope<M>] {
        self.inbox
    }

    /// Queue a message to `to`, delivered next round.
    ///
    /// Sending to oneself is allowed (the overlay model places no
    /// restriction on it) and delivers next round like any other message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Envelope { from: self.me, to, sent_round: self.round, msg });
    }

    /// The node's deterministic private RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut NodeRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    #[test]
    fn ctx_send_records_metadata() {
        let mut inbox = Vec::new();
        let mut outbox = Vec::new();
        let mut rng = stream(0, 1, 0);
        let mut ctx = Ctx::<NodeId> {
            me: NodeId(1),
            round: 5,
            inbox: &mut inbox,
            outbox: &mut outbox,
            rng: &mut rng,
        };
        ctx.send(NodeId(2), NodeId(9));
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].from, NodeId(1));
        assert_eq!(outbox[0].to, NodeId(2));
        assert_eq!(outbox[0].sent_round, 5);
        assert_eq!(outbox[0].msg, NodeId(9));
    }

    #[test]
    fn take_inbox_drains() {
        let mut inbox =
            vec![Envelope { from: NodeId(2), to: NodeId(1), sent_round: 4, msg: NodeId(3) }];
        let mut outbox = Vec::new();
        let mut rng = stream(0, 1, 0);
        let mut ctx = Ctx::<NodeId> {
            me: NodeId(1),
            round: 5,
            inbox: &mut inbox,
            outbox: &mut outbox,
            rng: &mut rng,
        };
        assert_eq!(ctx.inbox().len(), 1);
        let got = ctx.take_inbox();
        assert_eq!(got.len(), 1);
        assert!(ctx.take_inbox().is_empty());
    }
}
