//! The synchronous round engine.

use crate::accounting::{CommStats, WorkAccumulator};
use crate::conduct::{Conduct, SendFate};
use crate::digest::{Digest, RoundDigest, RunManifest};
use crate::fault::{delivered, BlockSet, FaultModel, LinkFate};
use crate::instrument::NetObserver;
use crate::message::{Envelope, Payload};
use crate::protocol::{Ctx, Protocol};
use crate::rng::{stream, NodeRng};
use crate::trace::{Trace, TraceEvent};
use crate::NodeId;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use telemetry::{EventKind, Phase, Telemetry};

/// Below this many nodes a round is stepped serially; rayon overhead only
/// pays off for larger populations. Public so determinism tests can pick
/// populations on both sides of the switch.
pub const PAR_THRESHOLD: usize = 512;

/// How the engine decides between serial and rayon-parallel node stepping.
///
/// The outcome of a round must be identical in every mode — each node only
/// touches its own slot — so this is a performance knob, except in the
/// determinism test-suite where [`ParMode::Serial`] and
/// [`ParMode::Parallel`] runs are compared digest-by-digest to *prove*
/// that property.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParMode {
    /// Parallel when the population reaches the internal threshold
    /// (currently 512 nodes); serial below it.
    #[default]
    Auto,
    /// Always step nodes serially, in slot order.
    Serial,
    /// Always step nodes through the rayon pool, regardless of size.
    Parallel,
}

struct Slot<P: Protocol> {
    id: NodeId,
    proto: P,
    rng: NodeRng,
    inbox: Vec<Envelope<P::Msg>>,
    outbox: Vec<Envelope<P::Msg>>,
}

/// A simulated overlay network of nodes running protocol `P`.
///
/// The engine owns the nodes, delivers messages according to the synchronous
/// model (a message sent in round `i` is processed in round `i + 1`),
/// applies the DoS blocking rule of [`crate::fault`], accounts communication
/// work, and supports node churn between rounds.
pub struct Network<P: Protocol> {
    master_seed: u64,
    round: u64,
    slots: Vec<Option<Slot<P>>>,
    free: Vec<usize>,
    index: HashMap<NodeId, usize>,
    in_flight: Vec<Envelope<P::Msg>>,
    /// Messages held back by a link-delay fault, with the round they
    /// mature. Always empty under the null fault model.
    delayed: Vec<(u64, Envelope<P::Msg>)>,
    /// Round-scratch for the deliver phase: the previous round's drained
    /// `in_flight` / `delayed` vectors, kept so their allocations are
    /// reused instead of freed and re-grown every round.
    scratch_flight: Vec<Envelope<P::Msg>>,
    scratch_delayed: Vec<(u64, Envelope<P::Msg>)>,
    prev_blocked: BlockSet,
    faults: FaultModel,
    /// Send-path interception policy (see [`crate::conduct`]); `None` is
    /// the honest default and costs one branch per round.
    conduct: Option<Arc<dyn Conduct<P::Msg>>>,
    /// Messages suppressed / forged by the installed conduct, total.
    conduct_dropped: u64,
    conduct_forged: u64,
    acc: WorkAccumulator,
    stats: CommStats,
    trace: Trace,
    obs: NetObserver,
    par_mode: ParMode,
    digests_enabled: bool,
}

impl<P: Protocol> Network<P> {
    /// Create an empty network. All node randomness derives from
    /// `master_seed`; identical seeds give identical runs.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            round: 0,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            in_flight: Vec::new(),
            delayed: Vec::new(),
            scratch_flight: Vec::new(),
            scratch_delayed: Vec::new(),
            prev_blocked: BlockSet::none(),
            faults: FaultModel::null(),
            conduct: None,
            conduct_dropped: 0,
            conduct_forged: 0,
            acc: WorkAccumulator::default(),
            stats: CommStats::new(),
            trace: Trace::counters_only(),
            obs: NetObserver::disabled(),
            par_mode: ParMode::Auto,
            digests_enabled: false,
        }
    }

    /// Attach a telemetry recorder. The engine then emits per-round
    /// delivery/fault/work metrics, brackets deliver/compute/send in
    /// profiler phases, and records node lifecycle events.
    ///
    /// Telemetry is pure observability: it never draws simulation
    /// randomness, never feeds [`Self::round_digest`], and is not
    /// checkpointed — a run's digest stream is identical with or without a
    /// recorder attached. The default is [`Telemetry::disabled`], whose
    /// hot-path cost is a single branch per operation.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.obs = NetObserver::new(tel, &self.trace);
    }

    /// The attached telemetry recorder (disabled unless
    /// [`Self::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        self.obs.telemetry()
    }

    /// Enable event tracing with the given buffer capacity. Counters,
    /// digests and the manifest accumulated before this call are kept.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace.enable(cap);
    }

    /// Record a [`RoundDigest`] into the trace after every subsequent
    /// round (see [`Self::round_digest`]).
    pub fn enable_digests(&mut self) {
        self.digests_enabled = true;
    }

    /// Attach a reproduction manifest to the trace. The network fills in
    /// its master seed and crate version; `config` should describe
    /// everything else that defines the run.
    pub fn set_manifest(&mut self, config: impl Into<String>) {
        self.trace.set_manifest(RunManifest::new(self.master_seed, config));
    }

    /// Install a fault model on the delivery path, replacing the previous
    /// one (the default is [`FaultModel::null`], which restores the exact
    /// Section 1.1 semantics). Installing mid-run is allowed; scheduled
    /// node faults are interpreted against the absolute round counter.
    pub fn set_fault_model(&mut self, faults: FaultModel) {
        self.faults = faults;
    }

    /// The installed fault model.
    pub fn fault_model(&self) -> &FaultModel {
        &self.faults
    }

    /// Install (or with `None`, remove) a send-path [`Conduct`] policy.
    /// Every subsequent protocol send is judged by it at collection time;
    /// see [`crate::conduct`] for the determinism contract.
    ///
    /// Conduct is configuration, not state: it is **not checkpointed**.
    /// A run resumed via [`Self::from_state`] must re-install the same
    /// conduct to continue the original behavior — doing so reproduces the
    /// uninterrupted digest stream exactly, because conduct decisions hash
    /// the absolute round counter, not elapsed time since installation.
    pub fn set_conduct(&mut self, conduct: Option<Arc<dyn Conduct<P::Msg>>>) {
        self.conduct = conduct;
    }

    /// Totals of messages `(dropped, forged)` by the installed conduct so
    /// far. Identical across backends for identically driven runs.
    pub fn conduct_counts(&self) -> (u64, u64) {
        (self.conduct_dropped, self.conduct_forged)
    }

    /// Override how rounds choose between serial and parallel stepping.
    pub fn set_par_mode(&mut self, mode: ParMode) {
        self.par_mode = mode;
    }

    /// The current parallelism mode.
    pub fn par_mode(&self) -> ParMode {
        self.par_mode
    }

    /// The master seed this network was created with.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Current round number (the next round to be executed by [`Self::step`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of nodes currently in the network.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no nodes are present.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `id` is currently a member.
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    /// Iterate over current member ids (unspecified order).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.index.keys().copied()
    }

    /// Iterate over `(id, state)` of current members (unspecified order).
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.slots.iter().filter_map(|s| s.as_ref()).map(|s| (s.id, &s.proto))
    }

    /// Shared access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        let &slot = self.index.get(&id)?;
        self.slots[slot].as_ref().map(|s| &s.proto)
    }

    /// Exclusive access to a node's protocol state.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        let &slot = self.index.get(&id)?;
        self.slots[slot].as_mut().map(|s| &mut s.proto)
    }

    /// Communication-work statistics recorded so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Reset communication-work statistics (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats.clear();
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Stable fingerprint of the full network state: round counter,
    /// membership, per-node RNG stream positions and protocol states
    /// (via [`Protocol::digest`]), and every in-flight message (via
    /// [`Payload::digest`]).
    ///
    /// Nodes are hashed in id order and in-flight messages in a canonical
    /// sort order, so the value is independent of slot layout, `HashMap`
    /// iteration order and the thread schedule that produced the state.
    /// Two runs are replay-identical iff their digest streams match
    /// round for round.
    pub fn round_digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.round);
        d.write_usize(self.index.len());

        // Per-node state, in id order.
        let mut ids: Vec<NodeId> = self.index.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let slot = self.slots[self.index[&id]].as_ref().expect("occupied");
            d.write_u64(id.raw());
            d.write_u128(slot.rng.get_word_pos());
            slot.proto.digest(&mut d);
        }

        // In-flight messages, canonically ordered. The sort key includes
        // each payload's own digest so the order is total even for
        // identical endpoints.
        let mut flight: Vec<(u64, u64, u64, u64)> = self
            .in_flight
            .iter()
            .map(|env| {
                let mut m = Digest::new();
                env.msg.digest(&mut m);
                (env.from.raw(), env.to.raw(), env.sent_round, m.finish())
            })
            .collect();
        flight.sort_unstable();
        d.write_usize(flight.len());
        for (from, to, sent_round, msg) in flight {
            d.write_u64(from).write_u64(to).write_u64(sent_round).write_u64(msg);
        }

        // Delay-faulted messages are state too, but the section is written
        // only when present so that runs under the null fault model hash
        // exactly as they did before fault injection existed (golden digest
        // streams stay byte-identical).
        if !self.delayed.is_empty() {
            let mut held: Vec<(u64, u64, u64, u64, u64)> = self
                .delayed
                .iter()
                .map(|(due, env)| {
                    let mut m = Digest::new();
                    env.msg.digest(&mut m);
                    (*due, env.from.raw(), env.to.raw(), env.sent_round, m.finish())
                })
                .collect();
            held.sort_unstable();
            d.write_u64(0xDE1A_FED0);
            d.write_usize(held.len());
            for (due, from, to, sent_round, msg) in held {
                d.write_u64(due).write_u64(from).write_u64(to).write_u64(sent_round).write_u64(msg);
            }
        }

        d.finish()
    }

    /// Add a node. Panics if `id` is already present (the paper assumes
    /// every id enters the system at most once).
    pub fn add_node(&mut self, id: NodeId, proto: P) {
        assert!(!self.index.contains_key(&id), "duplicate node id {id}");
        let rng = stream(self.master_seed, id.raw(), 0);
        let slot = Slot { id, proto, rng, inbox: Vec::new(), outbox: Vec::new() };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.index.insert(id, idx);
        self.trace.record(TraceEvent::NodeAdded { round: self.round, node: id });
        self.obs.node_event(self.round, EventKind::NodeAdded, id);
    }

    /// Remove a node, returning its protocol state. Messages in flight to it
    /// are dropped at delivery time.
    pub fn remove_node(&mut self, id: NodeId) -> Option<P> {
        let idx = self.index.remove(&id)?;
        let slot = self.slots[idx].take().expect("index pointed at empty slot");
        self.free.push(idx);
        self.trace.record(TraceEvent::NodeRemoved { round: self.round, node: id });
        self.obs.node_event(self.round, EventKind::NodeRemoved, id);
        Some(slot.proto)
    }

    /// Inject a message from outside the simulation; it is subject to the
    /// normal delivery rule next round with `from` as the nominal sender.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        self.in_flight.push(Envelope { from, to, sent_round: self.round, msg });
    }

    /// Execute one round with no nodes blocked.
    pub fn step(&mut self) {
        self.step_blocked(&BlockSet::none());
    }

    /// Execute one round with the given set of nodes blocked.
    ///
    /// Blocked nodes neither receive (their pending messages are dropped per
    /// the model's delivery rule) nor execute `on_round` nor send. Nodes
    /// down under the installed [`FaultModel`] behave like blocked nodes;
    /// surviving messages are additionally judged for link faults.
    pub fn step_blocked(&mut self, blocked: &BlockSet) {
        let round = self.round;
        self.acc.reset(self.slots.len());

        // Crash-recovery transitions: a node due back this round restarts
        // with lost state — protocol reset hook, cleared inbox, and a fresh
        // RNG incarnation (the pre-crash stream position is part of the
        // state the crash destroys).
        if !self.faults.is_null() {
            for id in self.faults.recovering(round) {
                if let Some(&idx) = self.index.get(&id) {
                    let slot = self.slots[idx].as_mut().expect("occupied");
                    slot.proto.on_crash_recover();
                    slot.inbox.clear();
                    slot.rng = stream(self.master_seed, id.raw(), (1 << 63) | round);
                    self.trace.record(TraceEvent::NodeRecovered { round, node: id });
                    self.obs.node_event(round, EventKind::NodeRecovered, id);
                }
            }
        }
        let downs =
            if self.faults.is_null() { BlockSet::none() } else { self.faults.down_set(round) };

        // Step 1: deliver. Messages held back by a delay fault that mature
        // this round go first (their Section 1.1 check ran when the delay
        // was drawn), then last round's sends under the full rule.
        {
            let _deliver = self.obs.telemetry().phase(Phase::Deliver);
            if !self.delayed.is_empty() {
                // Matured messages go first, still-held ones are kept;
                // both in their original push order (deliver_one only
                // appends still-fresh messages to `delayed`, never the
                // non-fresh ones processed here, so repopulating the live
                // vector while draining the scratch is safe).
                let mut held =
                    std::mem::replace(&mut self.delayed, std::mem::take(&mut self.scratch_delayed));
                for (due, env) in held.drain(..) {
                    if due <= round {
                        self.deliver_one(env, round, blocked, &downs, false);
                    } else {
                        self.delayed.push((due, env));
                    }
                }
                self.scratch_delayed = held;
            }
            let mut flight =
                std::mem::replace(&mut self.in_flight, std::mem::take(&mut self.scratch_flight));
            for env in flight.drain(..) {
                self.deliver_one(env, round, blocked, &downs, true);
            }
            self.scratch_flight = flight;
        }

        // Steps 2+3: local computation and sending, in parallel. Each node
        // only touches its own slot, so parallel execution is deterministic.
        let run = |slot: &mut Slot<P>| {
            if blocked.contains(slot.id) || downs.contains(slot.id) {
                // A blocked or crashed node cannot receive: discard anything
                // routed to it (the delivery rules should already have
                // prevented this).
                slot.inbox.clear();
                return;
            }
            let mut ctx = Ctx {
                me: slot.id,
                round,
                inbox: &mut slot.inbox,
                outbox: &mut slot.outbox,
                rng: &mut slot.rng,
            };
            slot.proto.on_round(&mut ctx);
            slot.inbox.clear();
        };
        let parallel = match self.par_mode {
            ParMode::Auto => self.index.len() >= PAR_THRESHOLD,
            ParMode::Serial => false,
            ParMode::Parallel => true,
        };
        {
            let _compute = self.obs.telemetry().phase(Phase::Compute);
            if parallel {
                self.slots.par_iter_mut().flatten().for_each(run);
            } else {
                self.slots.iter_mut().flatten().for_each(run);
            }
        }

        // Collect outboxes; charge senders. Each message first passes the
        // installed conduct (if any): suppressed sends are uncharged and
        // never enter flight, forged ones are charged at the forged size.
        let (mut sent_bits, mut sent_msgs) = (0u64, 0u64);
        {
            let _send = self.obs.telemetry().phase(Phase::Send);
            let conduct = self.conduct.clone();
            for (idx, slot) in self.slots.iter_mut().enumerate() {
                let Some(slot) = slot else { continue };
                for (pos, mut env) in slot.outbox.drain(..).enumerate() {
                    if let Some(judge) = conduct.as_deref() {
                        match judge.judge(env.from, env.to, round, pos as u64, &env.msg) {
                            SendFate::Deliver => {}
                            SendFate::Drop => {
                                self.conduct_dropped += 1;
                                continue;
                            }
                            SendFate::Replace(forged) => {
                                self.conduct_forged += 1;
                                env.msg = forged;
                            }
                        }
                    }
                    let bits = env.msg.size_bits();
                    self.acc.charge(idx, bits);
                    sent_bits += bits;
                    sent_msgs += 1;
                    self.in_flight.push(env);
                }
            }
        }

        let work = self.acc.finish(round);
        self.stats.push(work);
        if self.obs.enabled() {
            self.obs.on_round(&self.trace, work, self.index.len(), sent_bits, sent_msgs);
        }
        self.prev_blocked = blocked.clone();
        self.round += 1;

        if self.digests_enabled {
            let value = self.round_digest();
            self.trace.record_digest(RoundDigest { round, value });
        }
    }

    /// Route one message through the delivery rules: the Section 1.1
    /// blocking check, then node-fault and partition checks, then (for
    /// `fresh` messages only) a link-fate draw. Matured delayed messages
    /// are not `fresh`: they re-check just the receiver-side conditions and
    /// are never delayed twice.
    fn deliver_one(
        &mut self,
        env: Envelope<P::Msg>,
        round: u64,
        blocked: &BlockSet,
        downs: &BlockSet,
        fresh: bool,
    ) {
        let dos_ok = if fresh {
            delivered(env.from, env.to, &self.prev_blocked, blocked)
        } else {
            !blocked.contains(env.to)
        };
        if !dos_ok {
            self.trace.record(TraceEvent::DroppedBlocked { round, from: env.from, to: env.to });
            return;
        }
        let mut duplicate = false;
        if !self.faults.is_null() {
            if downs.contains(env.to)
                || self.faults.down(env.from, env.sent_round)
                || self.faults.cut(env.from, env.to, round)
            {
                self.trace.record(TraceEvent::DroppedFault { round, from: env.from, to: env.to });
                return;
            }
            if fresh {
                match self.faults.link_fate() {
                    LinkFate::Deliver => {}
                    LinkFate::Drop => {
                        self.trace.record(TraceEvent::DroppedLink {
                            round,
                            from: env.from,
                            to: env.to,
                        });
                        return;
                    }
                    LinkFate::Duplicate => duplicate = true,
                    LinkFate::Delay(extra) => {
                        self.trace.record(TraceEvent::Delayed {
                            round,
                            from: env.from,
                            to: env.to,
                            until: round + extra,
                        });
                        self.delayed.push((round + extra, env));
                        return;
                    }
                }
            }
        }
        match self.index.get(&env.to) {
            Some(&idx) => {
                self.acc.charge(idx, env.msg.size_bits());
                self.trace.record(TraceEvent::Delivered { round, from: env.from, to: env.to });
                let extra_copy = duplicate.then(|| env.clone());
                self.slots[idx].as_mut().expect("occupied").inbox.push(env);
                if let Some(copy) = extra_copy {
                    self.acc.charge(idx, copy.msg.size_bits());
                    self.trace.record(TraceEvent::Duplicated {
                        round,
                        from: copy.from,
                        to: copy.to,
                    });
                    self.slots[idx].as_mut().expect("occupied").inbox.push(copy);
                }
            }
            None => {
                self.trace.record(TraceEvent::DroppedMissing { round, from: env.from, to: env.to });
            }
        }
    }

    /// Run `rounds` rounds with no blocking.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

use crate::checkpoint::{
    field, get_array, get_bool, get_str, get_u64, missing, write_value_atomic, Checkpoint,
    CkptError, CkptResult,
};
use serde_json::Value;

fn par_mode_name(mode: ParMode) -> &'static str {
    match mode {
        ParMode::Auto => "auto",
        ParMode::Serial => "serial",
        ParMode::Parallel => "parallel",
    }
}

fn par_mode_from(name: &str) -> CkptResult<ParMode> {
    match name {
        "auto" => Ok(ParMode::Auto),
        "serial" => Ok(ParMode::Serial),
        "parallel" => Ok(ParMode::Parallel),
        other => Err(CkptError::Corrupt(format!("unknown par mode `{other}`"))),
    }
}

impl<P> Network<P>
where
    P: Protocol + Checkpoint,
    P::Msg: Checkpoint,
{
    /// Serialize the complete dynamic state of the network: round counter,
    /// every node's protocol state and RNG position (preserving the exact
    /// slot layout, which delivery order depends on), in-flight and delayed
    /// messages in their queue order, the previous block set, and the fault
    /// model including its RNG position. The engine's own round digest is
    /// stamped into the value; [`Self::from_state`] verifies it after
    /// restoring, so a corrupt or hand-edited checkpoint is rejected
    /// instead of silently diverging.
    ///
    /// Observability state (trace events, comm statistics) is *not*
    /// checkpointed: it never feeds back into execution, so a resumed run
    /// restarts those collectors empty while its digest stream continues
    /// bit-for-bit.
    pub fn save_state(&self) -> Value {
        let slots: Vec<Value> = self
            .slots
            .iter()
            .map(|slot| match slot {
                None => Value::Null,
                Some(s) => serde_json::json!({
                    "id": s.id.raw(),
                    "rng": s.rng.save(),
                    "proto": s.proto.save(),
                    "inbox": crate::checkpoint::save_slice(&s.inbox),
                    "outbox": crate::checkpoint::save_slice(&s.outbox),
                }),
            })
            .collect();
        let delayed: Vec<Value> = self
            .delayed
            .iter()
            .map(|(due, env)| serde_json::json!({ "due": *due, "env": env.save() }))
            .collect();
        serde_json::json!({
            "format": "simnet-network-checkpoint",
            "version": 1u64,
            "master_seed": self.master_seed,
            "round": self.round,
            "slots": Value::Array(slots),
            "free": self.free.iter().map(|&i| i as u64).collect::<Vec<u64>>(),
            "in_flight": crate::checkpoint::save_slice(&self.in_flight),
            "delayed": Value::Array(delayed),
            "prev_blocked": self.prev_blocked.save(),
            "faults": self.faults.save(),
            "par_mode": par_mode_name(self.par_mode),
            "digests_enabled": self.digests_enabled,
            "digest_stamp": self.round_digest(),
        })
    }

    /// Rebuild a network from [`Self::save_state`] output. The restored
    /// instance continues the original run exactly: stepping it produces
    /// the same round-digest stream as the uninterrupted original.
    pub fn from_state(v: &Value) -> CkptResult<Self> {
        match get_str(v, "format") {
            Ok("simnet-network-checkpoint") => {}
            Ok(other) => {
                return Err(CkptError::Corrupt(format!("not a network checkpoint: `{other}`")))
            }
            Err(e) => return Err(e),
        }
        // Checkpoints written before the exec-mode tag existed carry no
        // `exec_mode` field and are parity by construction. A relaxed-order
        // (`fast`) checkpoint must not silently resume into this engine:
        // the legacy engine only implements the global-order semantics.
        match get_str(v, "exec_mode") {
            Err(_) | Ok("parity") => {}
            Ok("fast") => {
                return Err(CkptError::ModeMismatch { checkpoint: "fast", engine: "parity" })
            }
            Ok(other) => return Err(CkptError::Corrupt(format!("unknown exec mode `{other}`"))),
        }
        let mut slots: Vec<Option<Slot<P>>> = Vec::new();
        let mut index = HashMap::new();
        for (i, slot) in get_array(v, "slots")?.iter().enumerate() {
            match slot {
                Value::Null => slots.push(None),
                s => {
                    let id = NodeId(get_u64(s, "id")?);
                    index.insert(id, i);
                    slots.push(Some(Slot {
                        id,
                        proto: P::load(field(s, "proto")?)?,
                        rng: crate::rng::NodeRng::load(field(s, "rng")?)?,
                        inbox: crate::checkpoint::get_vec(s, "inbox")?,
                        outbox: crate::checkpoint::get_vec(s, "outbox")?,
                    }));
                }
            }
        }
        let free = get_array(v, "free")?
            .iter()
            .map(|x| x.as_u64().map(|i| i as usize).ok_or_else(|| missing("free index")))
            .collect::<CkptResult<Vec<usize>>>()?;
        let mut delayed = Vec::new();
        for entry in get_array(v, "delayed")? {
            delayed.push((get_u64(entry, "due")?, Envelope::load(field(entry, "env")?)?));
        }
        let slot_count = slots.len();
        let net = Self {
            master_seed: get_u64(v, "master_seed")?,
            round: get_u64(v, "round")?,
            slots,
            free,
            index,
            in_flight: crate::checkpoint::get_vec(v, "in_flight")?,
            delayed,
            scratch_flight: Vec::new(),
            scratch_delayed: Vec::new(),
            prev_blocked: BlockSet::load(field(v, "prev_blocked")?)?,
            faults: FaultModel::load(field(v, "faults")?)?,
            conduct: None,
            conduct_dropped: 0,
            conduct_forged: 0,
            acc: WorkAccumulator::default(),
            stats: CommStats::new(),
            trace: Trace::counters_only(),
            obs: NetObserver::disabled(),
            par_mode: par_mode_from(get_str(v, "par_mode")?)?,
            digests_enabled: get_bool(v, "digests_enabled")?,
        };
        for (id, &idx) in &net.index {
            if idx >= slot_count {
                return Err(CkptError::Corrupt(format!("slot index {idx} for node {id}")));
            }
        }
        let stamped = get_u64(v, "digest_stamp")?;
        let restored = net.round_digest();
        if restored != stamped {
            return Err(CkptError::DigestMismatch { stamped, restored });
        }
        Ok(net)
    }

    /// Write a crash-consistent checkpoint file (see
    /// [`crate::checkpoint::write_value_atomic`]).
    pub fn checkpoint_to(&self, path: &std::path::Path) -> CkptResult<()> {
        write_value_atomic(path, &self.save_state())
    }

    /// Resume a network from a checkpoint file written by
    /// [`Self::checkpoint_to`] (or a [`crate::Checkpointer`]).
    pub fn resume_from(path: &std::path::Path) -> CkptResult<Self> {
        Self::from_state(&crate::checkpoint::read_value(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts everything it receives and forwards a token around a ring.
    struct Relay {
        next: NodeId,
        received: u64,
        fire: bool,
    }

    impl Protocol for Relay {
        type Msg = u64;

        fn digest(&self, digest: &mut Digest) {
            digest.write_u64(self.next.raw()).write_u64(self.received).write_bool(self.fire);
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) {
            let inbox = ctx.take_inbox();
            let next = self.next;
            for env in &inbox {
                self.received += 1;
                let fwd = env.msg + 1;
                ctx.send(next, fwd);
            }
            if self.fire {
                self.fire = false;
                ctx.send(next, 0);
            }
        }
    }

    fn ring(n: u64, seed: u64) -> Network<Relay> {
        let mut net = Network::new(seed);
        for i in 0..n {
            net.add_node(NodeId(i), Relay { next: NodeId((i + 1) % n), received: 0, fire: i == 0 });
        }
        net
    }

    #[test]
    fn token_travels_one_hop_per_round() {
        let mut net = ring(4, 1);
        // Round 0: node 0 sends. Round k: node k processes.
        net.run(5);
        assert_eq!(net.node(NodeId(1)).unwrap().received, 1);
        assert_eq!(net.node(NodeId(2)).unwrap().received, 1);
        assert_eq!(net.node(NodeId(3)).unwrap().received, 1);
        // Token came back around to 0 at round 4.
        assert_eq!(net.node(NodeId(0)).unwrap().received, 1);
    }

    #[test]
    fn blocked_sender_message_never_leaves() {
        let mut net = ring(3, 2);
        // Round 0: block node 0 — its initial send must not happen
        // (on_round skipped entirely).
        let blocked = BlockSet::from_iter([NodeId(0)]);
        net.step_blocked(&blocked);
        assert!(net.node(NodeId(0)).unwrap().fire, "blocked node must not act");
        // Fires in round 1, node 1 processes it in round 2.
        net.run(2);
        assert_eq!(net.node(NodeId(1)).unwrap().received, 1);
    }

    #[test]
    fn receiver_blocked_at_receive_round_drops_message() {
        let mut net = ring(3, 3);
        net.step(); // round 0: node 0 sends to node 1
        let blocked = BlockSet::from_iter([NodeId(1)]);
        net.step_blocked(&blocked); // round 1: node 1 blocked -> message dropped
        net.run(5);
        assert_eq!(net.node(NodeId(1)).unwrap().received, 0);
        assert_eq!(net.trace().dropped_blocked, 1);
    }

    #[test]
    fn receiver_blocked_at_send_round_drops_message() {
        let mut net = ring(3, 4);
        // Round 0: node 0 sends to node 1 while node 1 is blocked in the
        // send round. Per the model the message requires w non-blocked in
        // rounds i and i+1; blocked at i drops it.
        let blocked = BlockSet::from_iter([NodeId(1)]);
        net.step_blocked(&blocked);
        net.run(5);
        assert_eq!(net.node(NodeId(1)).unwrap().received, 0);
    }

    #[test]
    fn churn_add_remove() {
        let mut net = ring(3, 5);
        net.run(2);
        assert_eq!(net.len(), 3);
        let removed = net.remove_node(NodeId(2)).unwrap();
        assert_eq!(removed.received, 0); // token was at node 2's inbox stage
        assert!(!net.contains(NodeId(2)));
        net.add_node(NodeId(7), Relay { next: NodeId(0), received: 0, fire: false });
        assert_eq!(net.len(), 3);
        assert!(net.contains(NodeId(7)));
        // Messages to the removed node are dropped, not misdelivered.
        net.run(4);
        assert!(net.trace().dropped_missing <= 1);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_id_panics() {
        let mut net = ring(2, 6);
        net.add_node(NodeId(0), Relay { next: NodeId(1), received: 0, fire: false });
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let mut net = ring(16, 99);
            net.run(20);
            let mut out: Vec<(u64, u64)> =
                net.nodes().map(|(id, p)| (id.raw(), p.received)).collect();
            out.sort_unstable();
            (out, net.stats().total_msgs())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn accounting_records_work() {
        let mut net = ring(4, 7);
        net.run(3);
        // Round 0 charges the initial send (64 bits) to node 0.
        assert_eq!(net.stats().rounds()[0].max_node_bits, 64);
        assert!(net.stats().total_msgs() > 0);
    }

    #[test]
    fn inject_feeds_protocols() {
        let mut net = ring(3, 8);
        net.node_mut(NodeId(0)).unwrap().fire = false; // silence the ring
        net.inject(NodeId(999), NodeId(1), 41);
        net.step();
        assert_eq!(net.node(NodeId(1)).unwrap().received, 1);
    }

    #[test]
    fn parallel_stepping_is_deterministic() {
        // 600 nodes crosses PAR_THRESHOLD, so rounds execute under rayon;
        // the result must match run-to-run regardless of thread schedule.
        let run_once = || {
            let mut net = ring(600, 1234);
            net.run(12);
            let mut out: Vec<(u64, u64)> =
                net.nodes().map(|(id, p)| (id.raw(), p.received)).collect();
            out.sort_unstable();
            (out, net.stats().total_bits())
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
    }

    #[test]
    fn messages_to_node_removed_mid_flight_are_dropped() {
        let mut net = ring(4, 55);
        net.step(); // node 0 fired at round 0; token reaches node 1 at round 1
        net.step(); // node 1 forwards to node 2 (in flight)
        net.remove_node(NodeId(2));
        net.step(); // delivery attempt: receiver gone
        assert_eq!(net.trace().dropped_missing, 1);
        net.run(3);
        // Ring is broken at the removed node: no one downstream hears again.
        assert_eq!(net.node(NodeId(3)).unwrap().received, 0);
    }

    #[test]
    fn run_advances_round_counter() {
        let mut net = ring(2, 9);
        assert_eq!(net.round(), 0);
        net.run(5);
        assert_eq!(net.round(), 5);
        assert_eq!(net.stats().len(), 5);
    }

    #[test]
    fn missing_receiver_is_dropped_missing_not_blocked() {
        let mut net = ring(3, 14);
        net.node_mut(NodeId(0)).unwrap().fire = false; // silence the ring
                                                       // One message to a node that never existed, one to a live node
                                                       // whose receiver gets blocked: the two drop reasons must be
                                                       // counted separately and delivered+drops must equal sends.
        net.inject(NodeId(0), NodeId(42), 1); // receiver missing
        net.inject(NodeId(0), NodeId(1), 2); // will be blocked at receive
        net.inject(NodeId(0), NodeId(2), 3); // delivered
        net.step_blocked(&BlockSet::from_iter([NodeId(1)]));
        assert_eq!(net.trace().dropped_missing, 1);
        assert_eq!(net.trace().dropped_blocked, 1);
        assert_eq!(net.trace().delivered, 1);
    }

    #[test]
    fn blocked_receiver_takes_precedence_over_missing() {
        // A message to a *removed* node that is also named in the block
        // set is classified by the delivery rule first (DroppedBlocked):
        // the rule consults block sets before membership.
        let mut net = ring(3, 15);
        net.node_mut(NodeId(0)).unwrap().fire = false;
        net.remove_node(NodeId(2));
        net.inject(NodeId(0), NodeId(2), 9);
        net.step_blocked(&BlockSet::from_iter([NodeId(2)]));
        assert_eq!(net.trace().dropped_blocked, 1);
        assert_eq!(net.trace().dropped_missing, 0);
    }

    #[test]
    fn enable_trace_preserves_accumulated_counters() {
        // Regression: enable_trace used to rebuild the Trace from scratch,
        // zeroing delivered/dropped counters accumulated while disabled.
        let mut net = ring(3, 10);
        net.step(); // round 0: node 0 fires
        net.step(); // round 1: delivery to node 1
        let delivered_before = net.trace().delivered;
        assert!(delivered_before > 0, "setup must deliver something");
        net.remove_node(NodeId(2));
        net.run(2); // token to the removed node -> dropped_missing
        let missing_before = net.trace().dropped_missing;
        assert_eq!(missing_before, 1);

        net.enable_trace(64);
        assert_eq!(net.trace().delivered, delivered_before);
        assert_eq!(net.trace().dropped_missing, missing_before);
        assert!(net.trace().events().is_empty(), "no events before enabling");
    }

    #[test]
    fn digest_stream_records_once_per_round() {
        let mut net = ring(4, 11);
        net.enable_digests();
        net.run(6);
        let digests = net.trace().digests();
        assert_eq!(digests.len(), 6);
        for (i, d) in digests.iter().enumerate() {
            assert_eq!(d.round, i as u64);
        }
    }

    #[test]
    fn digest_streams_replay_identically() {
        let run_once = || {
            let mut net = ring(8, 21);
            net.enable_digests();
            net.run(10);
            net.trace().digests().to_vec()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn digest_differs_across_seeds_and_rounds() {
        let digests = |seed: u64| {
            let mut net = ring(8, seed);
            net.enable_digests();
            net.run(5);
            net.trace().digests().to_vec()
        };
        let a = digests(1);
        let b = digests(2);
        // Different master seeds shift every node's RNG stream position
        // key material, but state only diverges once randomness is *used*;
        // the Relay protocol is deterministic, so compare digest values
        // directly: rounds must differ within a run.
        let values: std::collections::HashSet<u64> = a.iter().map(|d| d.value).collect();
        assert!(values.len() > 1, "digest must evolve across rounds");
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn round_digest_sees_protocol_state() {
        let mut net = ring(4, 12);
        let before = net.round_digest();
        net.node_mut(NodeId(3)).unwrap().received = 777;
        assert_ne!(net.round_digest(), before, "protocol state must be hashed");
    }

    #[test]
    fn round_digest_sees_membership_and_in_flight() {
        let mut net = ring(4, 13);
        let before = net.round_digest();
        net.inject(NodeId(99), NodeId(0), 5);
        let with_flight = net.round_digest();
        assert_ne!(with_flight, before, "in-flight messages must be hashed");
        net.remove_node(NodeId(2));
        assert_ne!(net.round_digest(), with_flight, "membership must be hashed");
    }

    #[test]
    fn par_mode_override_matches_auto_results() {
        let run = |mode: ParMode| {
            let mut net = ring(64, 31);
            net.set_par_mode(mode);
            net.enable_digests();
            net.run(8);
            net.trace().digests().to_vec()
        };
        let serial = run(ParMode::Serial);
        assert_eq!(run(ParMode::Parallel), serial);
        assert_eq!(run(ParMode::Auto), serial);
    }

    // -- fault model -------------------------------------------------------

    use crate::fault::{LinkFaults, NodeFault, Partition};

    #[test]
    fn crashed_node_neither_acts_nor_receives() {
        let mut net = ring(3, 40);
        net.set_fault_model(
            FaultModel::new(1).with_node_fault(NodeId(1), NodeFault::CrashStop { at: 0 }),
        );
        net.run(6);
        // Node 0 fired at round 0; the token dies at the crashed node 1.
        assert_eq!(net.node(NodeId(1)).unwrap().received, 0);
        assert_eq!(net.node(NodeId(2)).unwrap().received, 0);
        assert!(net.trace().dropped_fault >= 1);
    }

    /// Counts rounds; forgets the count on crash-recovery.
    struct Counter {
        ticks: u64,
    }

    impl Protocol for Counter {
        type Msg = ();

        fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>) {
            self.ticks += 1;
        }

        fn on_crash_recover(&mut self) {
            self.ticks = 0;
        }
    }

    #[test]
    fn crash_recovery_loses_state_and_resumes() {
        let mut net: Network<Counter> = Network::new(50);
        net.add_node(NodeId(0), Counter { ticks: 0 });
        net.add_node(NodeId(1), Counter { ticks: 0 });
        net.set_fault_model(
            FaultModel::new(2)
                .with_node_fault(NodeId(1), NodeFault::CrashRecover { at: 2, down_for: 3 }),
        );
        net.run(8);
        assert_eq!(net.node(NodeId(0)).unwrap().ticks, 8, "healthy node unaffected");
        // Node 1 ran rounds 0..2, was down 2..5, reset at 5, ran 5..8.
        assert_eq!(net.node(NodeId(1)).unwrap().ticks, 3, "state lost at recovery");
    }

    #[test]
    fn delayed_message_arrives_late_but_arrives() {
        let mut net = ring(3, 41);
        net.node_mut(NodeId(0)).unwrap().fire = false;
        net.set_fault_model(FaultModel::new(3).with_link(LinkFaults {
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 1.0,
            max_delay: 3,
        }));
        net.inject(NodeId(0), NodeId(1), 7);
        net.step();
        assert_eq!(net.trace().delayed, 1);
        assert_eq!(net.node(NodeId(1)).unwrap().received, 0, "held back");
        net.run(4);
        assert_eq!(net.node(NodeId(1)).unwrap().received, 1, "matured within max_delay");
    }

    #[test]
    fn duplication_delivers_exactly_one_extra_copy() {
        let mut net = ring(3, 42);
        net.node_mut(NodeId(0)).unwrap().fire = false;
        net.set_fault_model(FaultModel::new(4).with_link(LinkFaults {
            drop_prob: 0.0,
            dup_prob: 1.0,
            delay_prob: 0.0,
            max_delay: 0,
        }));
        net.inject(NodeId(9), NodeId(1), 7);
        net.step();
        assert_eq!(net.node(NodeId(1)).unwrap().received, 2);
        assert_eq!(net.trace().delivered, 1);
        assert_eq!(net.trace().duplicated, 1);
    }

    #[test]
    fn lossy_link_drops_messages() {
        let mut net = ring(3, 45);
        net.node_mut(NodeId(0)).unwrap().fire = false;
        net.set_fault_model(FaultModel::new(6).with_link(LinkFaults {
            drop_prob: 1.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
        }));
        net.inject(NodeId(0), NodeId(1), 7);
        net.step();
        assert_eq!(net.node(NodeId(1)).unwrap().received, 0);
        assert_eq!(net.trace().dropped_link, 1);
    }

    #[test]
    fn partition_window_cuts_cross_traffic_only() {
        let mut net = ring(4, 43);
        net.node_mut(NodeId(0)).unwrap().fire = false;
        let side = [NodeId(0), NodeId(1)].into_iter().collect();
        net.set_fault_model(FaultModel::new(5).with_partition(Partition {
            side,
            from: 0,
            until: 1,
        }));
        net.inject(NodeId(0), NodeId(1), 1); // same side: delivered
        net.inject(NodeId(0), NodeId(2), 2); // across the cut: dropped
        net.step();
        assert_eq!(net.node(NodeId(1)).unwrap().received, 1);
        assert_eq!(net.node(NodeId(2)).unwrap().received, 0);
        assert_eq!(net.trace().dropped_fault, 1);
        // Node 1 forwarded across the cut boundary; by round 1 the window
        // is over and cross traffic flows again.
        net.step();
        assert_eq!(net.node(NodeId(2)).unwrap().received, 1);
    }

    #[test]
    fn explicit_null_model_is_a_noop_for_digests() {
        let digests = |install: bool| {
            let mut net = ring(8, 44);
            if install {
                net.set_fault_model(FaultModel::null());
            }
            net.enable_digests();
            net.run(10);
            net.trace().digests().to_vec()
        };
        assert_eq!(digests(false), digests(true));
    }

    #[test]
    fn faulty_runs_replay_identically() {
        let run_once = || {
            let mut net = ring(8, 46);
            net.set_fault_model(
                FaultModel::new(9)
                    .with_link(LinkFaults {
                        drop_prob: 0.2,
                        dup_prob: 0.1,
                        delay_prob: 0.2,
                        max_delay: 3,
                    })
                    .with_node_fault(NodeId(3), NodeFault::CrashRecover { at: 2, down_for: 2 }),
            );
            net.enable_digests();
            net.run(12);
            net.trace().digests().to_vec()
        };
        assert_eq!(run_once(), run_once());
    }

    // -- checkpointing ------------------------------------------------------

    impl Checkpoint for Relay {
        fn save(&self) -> Value {
            serde_json::json!({
                "next": self.next.raw(),
                "received": self.received,
                "fire": self.fire,
            })
        }

        fn load(v: &Value) -> CkptResult<Self> {
            Ok(Self {
                next: NodeId(get_u64(v, "next")?),
                received: get_u64(v, "received")?,
                fire: get_bool(v, "fire")?,
            })
        }
    }

    #[test]
    fn checkpoint_resume_continues_digest_stream() {
        // Uninterrupted reference run.
        let mut reference = ring(8, 4242);
        reference.enable_digests();
        reference.run(20);
        let want = reference.trace().digests().to_vec();

        // Same run, checkpointed at round 9 and resumed from the snapshot.
        let mut first = ring(8, 4242);
        first.enable_digests();
        first.run(9);
        let snapshot = first.save_state();
        let mut resumed = Network::<Relay>::from_state(&snapshot).unwrap();
        resumed.run(11);
        let got = resumed.trace().digests().to_vec();
        assert_eq!(got, want[9..], "resumed digest stream must match the tail");
    }

    #[test]
    fn checkpoint_resume_with_faults_and_holes() {
        // Exercise the hard state: link-fault RNG mid-stream, delayed
        // messages in flight, a removed slot (hole + free list), and a
        // crash-recovery window spanning the checkpoint.
        let build = || {
            let mut net = ring(6, 99);
            net.set_fault_model(
                FaultModel::new(17)
                    .with_link(LinkFaults {
                        drop_prob: 0.15,
                        dup_prob: 0.1,
                        delay_prob: 0.25,
                        max_delay: 4,
                    })
                    .with_node_fault(NodeId(4), NodeFault::CrashRecover { at: 6, down_for: 5 }),
            );
            net.enable_digests();
            net
        };
        let mut reference = build();
        reference.remove_node(NodeId(5));
        reference.run(24);
        let want = reference.trace().digests().to_vec();

        let mut first = build();
        first.remove_node(NodeId(5));
        first.run(8); // node 4 is mid-crash, delays likely pending
        let mut resumed = Network::<Relay>::from_state(&first.save_state()).unwrap();
        resumed.run(16);
        assert_eq!(resumed.trace().digests().to_vec(), want[8..]);
    }

    #[test]
    fn checkpoint_rejects_tampering() {
        let mut net = ring(4, 7);
        net.run(3);
        let mut state = net.save_state();
        if let Value::Object(m) = &mut state {
            m.insert("round".into(), Value::from(99u64));
        }
        match Network::<Relay>::from_state(&state) {
            Err(CkptError::DigestMismatch { .. }) => {}
            Err(other) => panic!("wrong error for tampered checkpoint: {other}"),
            Ok(_) => panic!("tampered checkpoint must fail the digest stamp"),
        }
    }

    #[test]
    fn checkpoint_file_round_trip() {
        let dir = std::env::temp_dir().join("simnet-engine-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.json");
        let mut net = ring(5, 31);
        net.run(4);
        net.checkpoint_to(&path).unwrap();
        let resumed = Network::<Relay>::resume_from(&path).unwrap();
        assert_eq!(resumed.round(), 4);
        assert_eq!(resumed.round_digest(), net.round_digest());
        std::fs::remove_file(&path).unwrap();
    }

    // -- conduct ------------------------------------------------------------

    use crate::conduct::{ByzantineConduct, PPM};

    #[test]
    fn conduct_drop_silences_a_byzantine_sender() {
        let mut net = ring(4, 70);
        net.set_conduct(Some(Arc::new(ByzantineConduct::new(1, [NodeId(1)]).dropping(PPM))));
        net.run(8);
        // Token: 0 fires (honest), 1 receives, then 1's forward is eaten.
        assert_eq!(net.node(NodeId(1)).unwrap().received, 1);
        assert_eq!(net.node(NodeId(2)).unwrap().received, 0);
        let (dropped, forged) = net.conduct_counts();
        assert_eq!(dropped, 1);
        assert_eq!(forged, 0);
    }

    #[test]
    fn conduct_forge_rewrites_payloads_in_place() {
        let mut net = ring(3, 71);
        net.set_conduct(Some(Arc::new(
            ByzantineConduct::new(2, [NodeId(0)]).forging(PPM, |m| m + 1000),
        )));
        net.run(2); // round 0: node 0 fires a forged token; round 1: node 1 forwards it +1
        net.run(1); // round 2: node 2 receives 1001 + 1
        assert_eq!(net.node(NodeId(2)).unwrap().received, 1);
        let (_, forged) = net.conduct_counts();
        assert_eq!(forged, 1);
        // Node 1 forwarded msg+1 of the forged 1000-token.
        net.set_conduct(None);
        net.run(1);
        assert_eq!(net.node(NodeId(0)).unwrap().received, 1);
    }

    #[test]
    fn suppressed_sends_are_not_charged() {
        let run = |drop_all: bool| {
            let mut net = ring(4, 72);
            if drop_all {
                let everyone: Vec<NodeId> = (0..4).map(NodeId).collect();
                net.set_conduct(Some(Arc::new(ByzantineConduct::new(3, everyone).dropping(PPM))));
            }
            net.run(6);
            (net.stats().total_bits(), net.stats().total_msgs())
        };
        let (honest_bits, honest_msgs) = run(false);
        assert!(honest_msgs > 0);
        assert_eq!(run(true), (0, 0), "fully suppressed traffic must cost nothing");
        assert!(honest_bits > 0);
    }

    #[test]
    fn conduct_free_run_digests_match_no_conduct() {
        // An installed conduct whose Byzantine set is empty must be
        // behaviorally invisible, digests included.
        let run = |install: bool| {
            let mut net = ring(8, 73);
            if install {
                net.set_conduct(Some(Arc::new(ByzantineConduct::new(4, []).dropping(PPM))));
            }
            net.enable_digests();
            net.run(10);
            net.trace().digests().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn conduct_runs_replay_identically() {
        let run_once = || {
            let mut net = ring(8, 74);
            net.set_conduct(Some(Arc::new(
                ByzantineConduct::new(5, [NodeId(2), NodeId(5)])
                    .dropping(PPM / 3)
                    .forging(PPM / 3, |m| m ^ 0xBEEF),
            )));
            net.enable_digests();
            net.run(16);
            (net.trace().digests().to_vec(), net.conduct_counts())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn checkpoint_resume_with_reinstalled_conduct_continues_stream() {
        let conduct = || {
            Arc::new(
                ByzantineConduct::new(6, [NodeId(1), NodeId(3)])
                    .dropping(PPM / 2)
                    .forging(PPM / 4, |m| m + 7),
            )
        };
        let mut reference = ring(6, 75);
        reference.set_conduct(Some(conduct()));
        reference.enable_digests();
        reference.run(14);
        let want = reference.trace().digests().to_vec();

        let mut first = ring(6, 75);
        first.set_conduct(Some(conduct()));
        first.enable_digests();
        first.run(7);
        let snapshot = first.save_state();
        let mut resumed = Network::<Relay>::from_state(&snapshot).unwrap();
        // Conduct is config, not state: the caller re-installs it.
        resumed.set_conduct(Some(conduct()));
        resumed.run(7);
        assert_eq!(resumed.trace().digests().to_vec(), want[7..]);
    }

    // -- telemetry ----------------------------------------------------------

    #[test]
    fn telemetry_attachment_never_perturbs_digests() {
        let run = |attach: bool| {
            let mut net = ring(8, 61);
            if attach {
                net.set_telemetry(Telemetry::collector());
            }
            net.enable_digests();
            net.run(10);
            net.trace().digests().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn telemetry_mirrors_trace_counters_and_work() {
        let tel = Telemetry::collector();
        let mut net = ring(6, 62);
        net.set_telemetry(tel.clone());
        net.remove_node(NodeId(3)); // break the ring -> dropped_missing later
        net.run(8);
        let s = tel.snapshot();
        assert_eq!(s.counter("net.rounds"), 8);
        assert_eq!(s.counter("net.delivered"), net.trace().delivered);
        assert_eq!(s.counter("net.dropped_missing"), net.trace().dropped_missing);
        assert_eq!(s.counter("net.total_bits"), net.stats().total_bits());
        assert_eq!(s.counter("net.total_msgs"), net.stats().total_msgs());
        assert_eq!(s.gauge("net.max_node_bits"), net.stats().max_node_bits());
        assert_eq!(s.gauge("net.nodes"), net.len() as u64);
        assert_eq!(s.histogram("net.round_bits").unwrap().count, 8);

        // Node lifecycle flows into the event ring.
        let (events, _) = tel.events();
        assert!(events.iter().any(|e| e.kind == EventKind::NodeRemoved && e.node == Some(3)));

        // Phase profile: every round entered deliver/compute/send once, and
        // send+deliver work sums to the accounted totals.
        let prof = tel.profile();
        for phase in [Phase::Deliver, Phase::Compute, Phase::Send] {
            assert_eq!(prof.stat(phase).enters, 8, "{phase:?}");
        }
        let send = prof.stat(Phase::Send);
        let deliver = prof.stat(Phase::Deliver);
        assert_eq!(send.bits + deliver.bits, net.stats().total_bits());
        assert_eq!(send.msgs + deliver.msgs, net.stats().total_msgs());
    }

    #[test]
    fn telemetry_attached_mid_run_only_sees_the_rest() {
        let mut net = ring(4, 63);
        net.run(5);
        let tel = Telemetry::collector();
        net.set_telemetry(tel.clone());
        net.run(3);
        let s = tel.snapshot();
        assert_eq!(s.counter("net.rounds"), 3);
        assert!(
            s.counter("net.delivered") <= net.trace().delivered,
            "pre-attachment deliveries must not be re-counted"
        );
    }

    #[test]
    fn manifest_is_recorded_with_seed_and_version() {
        let mut net = ring(2, 77);
        net.set_manifest("ring n=2 rounds=3");
        net.run(3);
        let m = net.trace().manifest().expect("manifest attached");
        assert_eq!(m.master_seed, 77);
        assert_eq!(m.config, "ring n=2 rounds=3");
        assert_eq!(m.crate_version, env!("CARGO_PKG_VERSION"));
    }
}
