//! Engine-side telemetry: per-round delivery/fault metrics and node
//! lifecycle events, recorded into an attached [`telemetry::Telemetry`].
//!
//! The observer is pure observability. It never draws from any simulation
//! RNG, never feeds [`crate::digest`], and is not checkpointed — attaching
//! or detaching a recorder cannot change a digest stream. Delivery counts
//! are derived by diffing the trace's always-on counters once per round,
//! so the per-message hot path is untouched.

use crate::accounting::RoundWork;
use crate::trace::Trace;
use telemetry::{Counter, EventKind, Gauge, Histogram, Phase, Telemetry};

/// Cached totals of the trace's always-on counters, used to attribute
/// deltas to the round that produced them.
#[derive(Clone, Copy, Default)]
struct TraceTotals {
    delivered: u64,
    dropped_blocked: u64,
    dropped_missing: u64,
    dropped_fault: u64,
    dropped_link: u64,
    duplicated: u64,
    delayed: u64,
}

impl TraceTotals {
    fn of(trace: &Trace) -> Self {
        Self {
            delivered: trace.delivered,
            dropped_blocked: trace.dropped_blocked,
            dropped_missing: trace.dropped_missing,
            dropped_fault: trace.dropped_fault,
            dropped_link: trace.dropped_link,
            duplicated: trace.duplicated,
            delayed: trace.delayed,
        }
    }
}

/// The engine's recorder attachment: metric handles resolved once so the
/// per-round path is a handful of relaxed atomic adds.
pub struct NetObserver {
    tel: Telemetry,
    rounds: Counter,
    delivered: Counter,
    dropped_blocked: Counter,
    dropped_missing: Counter,
    dropped_fault: Counter,
    dropped_link: Counter,
    duplicated: Counter,
    delayed: Counter,
    total_bits: Counter,
    total_msgs: Counter,
    max_node_bits: Gauge,
    max_node_msgs: Gauge,
    round_bits: Histogram,
    round_msgs: Histogram,
    nodes: Gauge,
    prev: TraceTotals,
}

impl NetObserver {
    pub fn disabled() -> Self {
        Self::new(Telemetry::disabled(), &Trace::counters_only())
    }

    /// Resolve all handles against `tel`. `trace` provides the baseline for
    /// counter diffing — metrics attached mid-run only see what happens
    /// after attachment.
    pub fn new(tel: Telemetry, trace: &Trace) -> Self {
        let c = |name: &str| tel.counter(name, &[]);
        Self {
            rounds: c("net.rounds"),
            delivered: c("net.delivered"),
            dropped_blocked: c("net.dropped_blocked"),
            dropped_missing: c("net.dropped_missing"),
            dropped_fault: c("net.dropped_fault"),
            dropped_link: c("net.dropped_link"),
            duplicated: c("net.duplicated"),
            delayed: c("net.delayed"),
            total_bits: c("net.total_bits"),
            total_msgs: c("net.total_msgs"),
            max_node_bits: tel.gauge("net.max_node_bits", &[]),
            max_node_msgs: tel.gauge("net.max_node_msgs", &[]),
            round_bits: tel.histogram("net.round_bits", &[]),
            round_msgs: tel.histogram("net.round_msgs", &[]),
            nodes: tel.gauge("net.nodes", &[]),
            prev: TraceTotals::of(trace),
            tel,
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.tel.enabled()
    }

    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Record one finished round: delivery-counter deltas, the round's
    /// communication work, and the current population. `sent_bits` and
    /// `sent_msgs` are the send-side charges of the round; the remainder of
    /// the round's work is the receive side and is attributed to the
    /// deliver phase.
    pub fn on_round(
        &mut self,
        trace: &Trace,
        work: RoundWork,
        population: usize,
        sent_bits: u64,
        sent_msgs: u64,
    ) {
        let now = TraceTotals::of(trace);
        self.rounds.inc();
        self.delivered.add(now.delivered - self.prev.delivered);
        self.dropped_blocked.add(now.dropped_blocked - self.prev.dropped_blocked);
        self.dropped_missing.add(now.dropped_missing - self.prev.dropped_missing);
        self.dropped_fault.add(now.dropped_fault - self.prev.dropped_fault);
        self.dropped_link.add(now.dropped_link - self.prev.dropped_link);
        self.duplicated.add(now.duplicated - self.prev.duplicated);
        self.delayed.add(now.delayed - self.prev.delayed);
        self.prev = now;

        self.total_bits.add(work.total_bits);
        self.total_msgs.add(work.total_msgs);
        self.max_node_bits.record_max(work.max_node_bits);
        self.max_node_msgs.record_max(work.max_node_msgs);
        self.round_bits.record(work.total_bits);
        self.round_msgs.record(work.total_msgs);
        self.nodes.record_max(population as u64);

        self.tel.add_work(Phase::Send, sent_bits, sent_msgs);
        self.tel.add_work(
            Phase::Deliver,
            work.total_bits.saturating_sub(sent_bits),
            work.total_msgs.saturating_sub(sent_msgs),
        );
    }

    /// Emit a node lifecycle event.
    #[inline]
    pub fn node_event(&self, round: u64, kind: EventKind, node: crate::NodeId) {
        self.tel.emit(round, kind, Some(node.raw()), 0, String::new);
    }
}
