//! Messages and envelopes.

use crate::digest::Digest;
use crate::NodeId;

/// A message payload.
///
/// Payloads must report their size so the engine can account the
/// communication work of each node (total bits sent and received per round,
/// the cost measure of the paper). Node identifiers should be counted at
/// [`NodeId::SIZE_BITS`] bits each.
pub trait Payload: Clone + Send + Sync + 'static {
    /// Size of this message in bits, as charged to both endpoints.
    fn size_bits(&self) -> u64;

    /// Feed this payload into a replay-verification digest.
    ///
    /// The default hashes only [`size_bits`](Self::size_bits), which
    /// distinguishes variable-size payloads but collapses equal-size ones;
    /// override to hash content so replay divergence in message *values*
    /// is detected, not just in message *shapes*.
    fn digest(&self, digest: &mut Digest) {
        digest.write_u64(self.size_bits());
    }
}

/// Unit payload for protocols that only need "a message arrived".
impl Payload for () {
    fn size_bits(&self) -> u64 {
        1
    }

    fn digest(&self, digest: &mut Digest) {
        digest.write_u8(0);
    }
}

impl Payload for NodeId {
    fn size_bits(&self) -> u64 {
        NodeId::SIZE_BITS
    }

    fn digest(&self, digest: &mut Digest) {
        digest.write_u64(self.raw());
    }
}

impl Payload for u64 {
    fn size_bits(&self) -> u64 {
        64
    }

    fn digest(&self, digest: &mut Digest) {
        digest.write_u64(*self);
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn size_bits(&self) -> u64 {
        // Length prefix plus elements.
        32 + self.iter().map(Payload::size_bits).sum::<u64>()
    }

    fn digest(&self, digest: &mut Digest) {
        digest.write_usize(self.len());
        for item in self {
            item.digest(digest);
        }
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn size_bits(&self) -> u64 {
        self.0.size_bits() + self.1.size_bits()
    }

    fn digest(&self, digest: &mut Digest) {
        self.0.digest(digest);
        self.1.digest(digest);
    }
}

/// A message in flight or delivered: payload plus addressing metadata.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Round in which the message was sent (it is processed in
    /// `sent_round + 1`).
    pub sent_round: u64,
    /// The payload.
    pub msg: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_payload_size_includes_length_prefix() {
        let v = vec![NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(v.size_bits(), 32 + 3 * 64);
    }

    #[test]
    fn tuple_payload_size_is_sum() {
        let p = (NodeId(1), 7u64);
        assert_eq!(p.size_bits(), 128);
    }

    #[test]
    fn unit_payload_costs_one_bit() {
        assert_eq!(().size_bits(), 1);
    }
}
