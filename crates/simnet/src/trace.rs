//! Optional event tracing for debugging protocols, plus the replay
//! verification record: per-round state digests and the run manifest.

use crate::digest::{RoundDigest, RunManifest};
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A traced simulator event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message was delivered.
    Delivered { round: u64, from: NodeId, to: NodeId },
    /// A message was dropped by the DoS delivery rule.
    DroppedBlocked { round: u64, from: NodeId, to: NodeId },
    /// A message was addressed to a node no longer (or not yet) present.
    DroppedMissing { round: u64, from: NodeId, to: NodeId },
    /// A message was dropped by a node fault or partition of the installed
    /// [`crate::fault::FaultModel`].
    DroppedFault { round: u64, from: NodeId, to: NodeId },
    /// A message was dropped by a probabilistic link fault.
    DroppedLink { round: u64, from: NodeId, to: NodeId },
    /// A link fault delivered an extra copy of a message (the original is
    /// traced as [`TraceEvent::Delivered`]).
    Duplicated { round: u64, from: NodeId, to: NodeId },
    /// A link fault held a message back until round `until`.
    Delayed { round: u64, from: NodeId, to: NodeId, until: u64 },
    /// A node joined the simulation.
    NodeAdded { round: u64, node: NodeId },
    /// A node left the simulation.
    NodeRemoved { round: u64, node: NodeId },
    /// A node completed crash-recovery with state loss.
    NodeRecovered { round: u64, node: NodeId },
}

/// Bounded event log. Disabled by default; when enabled it records up to
/// `cap` events and counts overflow. Also holds the replay-verification
/// record of a run: the per-round digest stream and the [`RunManifest`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    digests: Vec<RoundDigest>,
    manifest: Option<RunManifest>,
    /// Events not recorded because the buffer was full.
    pub overflow: u64,
    /// Total dropped-by-blocking messages (counted even when disabled).
    pub dropped_blocked: u64,
    /// Total dropped-missing-receiver messages (counted even when disabled).
    pub dropped_missing: u64,
    /// Total delivered messages (counted even when disabled).
    pub delivered: u64,
    /// Total messages dropped by node faults or partitions (counted even
    /// when disabled).
    pub dropped_fault: u64,
    /// Total messages dropped by link faults (counted even when disabled).
    pub dropped_link: u64,
    /// Total *extra* copies delivered by duplication faults (counted even
    /// when disabled; originals count under `delivered`).
    pub duplicated: u64,
    /// Total messages held back by delay faults (counted even when
    /// disabled; each is classified again at maturity).
    pub delayed: u64,
}

impl Trace {
    /// A disabled trace that still maintains the aggregate counters.
    pub fn counters_only() -> Self {
        Self::default()
    }

    /// An enabled trace recording up to `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self { enabled: true, cap, ..Self::default() }
    }

    /// Switch event recording on (up to `cap` events) without disturbing
    /// counters, digests or the manifest accumulated so far.
    pub(crate) fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        match &ev {
            TraceEvent::Delivered { .. } => self.delivered += 1,
            TraceEvent::DroppedBlocked { .. } => self.dropped_blocked += 1,
            TraceEvent::DroppedMissing { .. } => self.dropped_missing += 1,
            TraceEvent::DroppedFault { .. } => self.dropped_fault += 1,
            TraceEvent::DroppedLink { .. } => self.dropped_link += 1,
            TraceEvent::Duplicated { .. } => self.duplicated += 1,
            TraceEvent::Delayed { .. } => self.delayed += 1,
            _ => {}
        }
        if self.enabled {
            if self.events.len() < self.cap {
                self.events.push(ev);
            } else {
                self.overflow += 1;
            }
        }
    }

    pub(crate) fn record_digest(&mut self, d: RoundDigest) {
        self.digests.push(d);
    }

    pub(crate) fn set_manifest(&mut self, manifest: RunManifest) {
        self.manifest = Some(manifest);
    }

    /// Recorded events (empty when disabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Per-round state digests (empty unless digest recording was enabled
    /// on the network; see [`crate::Network::enable_digests`]).
    pub fn digests(&self) -> &[RoundDigest] {
        &self.digests
    }

    /// The run manifest, if one was attached.
    pub fn manifest(&self) -> Option<&RunManifest> {
        self.manifest.as_ref()
    }

    /// Clear recorded events, digests, manifest and counters.
    pub fn clear(&mut self) {
        self.events.clear();
        self.digests.clear();
        self.manifest = None;
        self.overflow = 0;
        self.dropped_blocked = 0;
        self.dropped_missing = 0;
        self.delivered = 0;
        self.dropped_fault = 0;
        self.dropped_link = 0;
        self.duplicated = 0;
        self.delayed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_work_when_disabled() {
        let mut t = Trace::counters_only();
        t.record(TraceEvent::Delivered { round: 0, from: NodeId(1), to: NodeId(2) });
        t.record(TraceEvent::DroppedBlocked { round: 0, from: NodeId(1), to: NodeId(3) });
        assert_eq!(t.delivered, 1);
        assert_eq!(t.dropped_blocked, 1);
        assert!(t.events().is_empty());
    }

    #[test]
    fn capacity_bounds_event_log() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(TraceEvent::NodeAdded { round: i, node: NodeId(i) });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.overflow, 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = Trace::with_capacity(8);
        t.record(TraceEvent::Delivered { round: 0, from: NodeId(1), to: NodeId(2) });
        t.clear();
        assert_eq!(t.delivered, 0);
        assert!(t.events().is_empty());
    }
}
