//! Optional event tracing for debugging protocols, plus the replay
//! verification record: per-round state digests and the run manifest.

use crate::digest::{RoundDigest, RunManifest};
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// A traced simulator event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message was delivered.
    Delivered { round: u64, from: NodeId, to: NodeId },
    /// A message was dropped by the DoS delivery rule.
    DroppedBlocked { round: u64, from: NodeId, to: NodeId },
    /// A message was addressed to a node no longer (or not yet) present.
    DroppedMissing { round: u64, from: NodeId, to: NodeId },
    /// A message was dropped by a node fault or partition of the installed
    /// [`crate::fault::FaultModel`].
    DroppedFault { round: u64, from: NodeId, to: NodeId },
    /// A message was dropped by a probabilistic link fault.
    DroppedLink { round: u64, from: NodeId, to: NodeId },
    /// A link fault delivered an extra copy of a message (the original is
    /// traced as [`TraceEvent::Delivered`]).
    Duplicated { round: u64, from: NodeId, to: NodeId },
    /// A link fault held a message back until round `until`.
    Delayed { round: u64, from: NodeId, to: NodeId, until: u64 },
    /// A node joined the simulation.
    NodeAdded { round: u64, node: NodeId },
    /// A node left the simulation.
    NodeRemoved { round: u64, node: NodeId },
    /// A node completed crash-recovery with state loss.
    NodeRecovered { round: u64, node: NodeId },
}

/// Bounded event log. Disabled by default; when enabled it records up to
/// `cap` events and counts overflow. Also holds the replay-verification
/// record of a run: the per-round digest stream and the [`RunManifest`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    digests: Vec<RoundDigest>,
    manifest: Option<RunManifest>,
    /// Events not recorded because the buffer was full.
    pub overflow: u64,
    /// Total dropped-by-blocking messages (counted even when disabled).
    pub dropped_blocked: u64,
    /// Total dropped-missing-receiver messages (counted even when disabled).
    pub dropped_missing: u64,
    /// Total delivered messages (counted even when disabled).
    pub delivered: u64,
    /// Total messages dropped by node faults or partitions (counted even
    /// when disabled).
    pub dropped_fault: u64,
    /// Total messages dropped by link faults (counted even when disabled).
    pub dropped_link: u64,
    /// Total *extra* copies delivered by duplication faults (counted even
    /// when disabled; originals count under `delivered`).
    pub duplicated: u64,
    /// Total messages held back by delay faults (counted even when
    /// disabled; each is classified again at maturity).
    pub delayed: u64,
}

impl Trace {
    /// A disabled trace that still maintains the aggregate counters.
    pub fn counters_only() -> Self {
        Self::default()
    }

    /// An enabled trace recording up to `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self { enabled: true, cap, ..Self::default() }
    }

    /// Switch event recording on (up to `cap` events) without disturbing
    /// counters, digests or the manifest accumulated so far.
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    /// Count (and, when enabled, buffer) one simulator event. Engines —
    /// the legacy `Network` and alternative backends alike — call this on
    /// every delivery outcome so the always-on counters stay comparable
    /// across backends.
    pub fn record(&mut self, ev: TraceEvent) {
        match &ev {
            TraceEvent::Delivered { .. } => self.delivered += 1,
            TraceEvent::DroppedBlocked { .. } => self.dropped_blocked += 1,
            TraceEvent::DroppedMissing { .. } => self.dropped_missing += 1,
            TraceEvent::DroppedFault { .. } => self.dropped_fault += 1,
            TraceEvent::DroppedLink { .. } => self.dropped_link += 1,
            TraceEvent::Duplicated { .. } => self.duplicated += 1,
            TraceEvent::Delayed { .. } => self.delayed += 1,
            _ => {}
        }
        if self.enabled {
            if self.events.len() < self.cap {
                self.events.push(ev);
            } else {
                self.overflow += 1;
            }
        }
    }

    /// Append one round digest to the replay-verification stream.
    pub fn record_digest(&mut self, d: RoundDigest) {
        self.digests.push(d);
    }

    /// Attach (or replace) the run manifest.
    pub fn set_manifest(&mut self, manifest: RunManifest) {
        self.manifest = Some(manifest);
    }

    /// Recorded events (empty when disabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Per-round state digests (empty unless digest recording was enabled
    /// on the network; see [`crate::Network::enable_digests`]).
    pub fn digests(&self) -> &[RoundDigest] {
        &self.digests
    }

    /// The run manifest, if one was attached.
    pub fn manifest(&self) -> Option<&RunManifest> {
        self.manifest.as_ref()
    }

    /// Clear recorded events, digests, manifest and counters.
    pub fn clear(&mut self) {
        self.events.clear();
        self.digests.clear();
        self.manifest = None;
        self.overflow = 0;
        self.dropped_blocked = 0;
        self.dropped_missing = 0;
        self.delivered = 0;
        self.dropped_fault = 0;
        self.dropped_link = 0;
        self.duplicated = 0;
        self.delayed = 0;
    }
}

// ---------------------------------------------------------------------------
// Value serialization
// ---------------------------------------------------------------------------
//
// The serde derives above are hermetic no-op shims, so persistable form goes
// through the workspace's `Checkpoint` convention instead. Note this is for
// *offline analysis* (dumping a trace next to experiment results); the
// engine itself never checkpoints observability state.

use crate::checkpoint::{
    field, get_array, get_bool, get_str, get_u64, Checkpoint, CkptError, CkptResult,
};
use serde_json::{json, Value};

impl Checkpoint for TraceEvent {
    fn save(&self) -> Value {
        let (t, round, a, b, until) = match *self {
            TraceEvent::Delivered { round, from, to } => {
                ("delivered", round, from.raw(), to.raw(), None)
            }
            TraceEvent::DroppedBlocked { round, from, to } => {
                ("dropped-blocked", round, from.raw(), to.raw(), None)
            }
            TraceEvent::DroppedMissing { round, from, to } => {
                ("dropped-missing", round, from.raw(), to.raw(), None)
            }
            TraceEvent::DroppedFault { round, from, to } => {
                ("dropped-fault", round, from.raw(), to.raw(), None)
            }
            TraceEvent::DroppedLink { round, from, to } => {
                ("dropped-link", round, from.raw(), to.raw(), None)
            }
            TraceEvent::Duplicated { round, from, to } => {
                ("duplicated", round, from.raw(), to.raw(), None)
            }
            TraceEvent::Delayed { round, from, to, until } => {
                ("delayed", round, from.raw(), to.raw(), Some(until))
            }
            TraceEvent::NodeAdded { round, node } => ("node-added", round, node.raw(), 0, None),
            TraceEvent::NodeRemoved { round, node } => ("node-removed", round, node.raw(), 0, None),
            TraceEvent::NodeRecovered { round, node } => {
                ("node-recovered", round, node.raw(), 0, None)
            }
        };
        let mut v = json!({ "t": t, "round": round, "a": a, "b": b });
        if let (Value::Object(m), Some(until)) = (&mut v, until) {
            m.insert("until".into(), Value::from(until));
        }
        v
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let round = get_u64(v, "round")?;
        let a = NodeId(get_u64(v, "a")?);
        let b = NodeId(get_u64(v, "b")?);
        Ok(match get_str(v, "t")? {
            "delivered" => TraceEvent::Delivered { round, from: a, to: b },
            "dropped-blocked" => TraceEvent::DroppedBlocked { round, from: a, to: b },
            "dropped-missing" => TraceEvent::DroppedMissing { round, from: a, to: b },
            "dropped-fault" => TraceEvent::DroppedFault { round, from: a, to: b },
            "dropped-link" => TraceEvent::DroppedLink { round, from: a, to: b },
            "duplicated" => TraceEvent::Duplicated { round, from: a, to: b },
            "delayed" => TraceEvent::Delayed { round, from: a, to: b, until: get_u64(v, "until")? },
            "node-added" => TraceEvent::NodeAdded { round, node: a },
            "node-removed" => TraceEvent::NodeRemoved { round, node: a },
            "node-recovered" => TraceEvent::NodeRecovered { round, node: a },
            other => return Err(CkptError::Corrupt(format!("unknown trace event `{other}`"))),
        })
    }
}

impl Checkpoint for Trace {
    fn save(&self) -> Value {
        let digests: Vec<Value> =
            self.digests.iter().map(|d| json!({ "round": d.round, "value": d.value })).collect();
        let manifest = match &self.manifest {
            None => Value::Null,
            Some(m) => json!({
                "master_seed": m.master_seed,
                "config": m.config.as_str(),
                "crate_version": m.crate_version.as_str(),
            }),
        };
        json!({
            "enabled": self.enabled,
            "cap": self.cap as u64,
            "events": crate::checkpoint::save_slice(&self.events),
            "digests": Value::Array(digests),
            "manifest": manifest,
            "overflow": self.overflow,
            "dropped_blocked": self.dropped_blocked,
            "dropped_missing": self.dropped_missing,
            "delivered": self.delivered,
            "dropped_fault": self.dropped_fault,
            "dropped_link": self.dropped_link,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let mut digests = Vec::new();
        for d in get_array(v, "digests")? {
            digests.push(RoundDigest { round: get_u64(d, "round")?, value: get_u64(d, "value")? });
        }
        let manifest = match field(v, "manifest")? {
            Value::Null => None,
            m => Some(RunManifest {
                master_seed: get_u64(m, "master_seed")?,
                config: get_str(m, "config")?.to_string(),
                crate_version: get_str(m, "crate_version")?.to_string(),
            }),
        };
        Ok(Self {
            enabled: get_bool(v, "enabled")?,
            cap: get_u64(v, "cap")? as usize,
            events: crate::checkpoint::get_vec(v, "events")?,
            digests,
            manifest,
            overflow: get_u64(v, "overflow")?,
            dropped_blocked: get_u64(v, "dropped_blocked")?,
            dropped_missing: get_u64(v, "dropped_missing")?,
            delivered: get_u64(v, "delivered")?,
            dropped_fault: get_u64(v, "dropped_fault")?,
            dropped_link: get_u64(v, "dropped_link")?,
            duplicated: get_u64(v, "duplicated")?,
            delayed: get_u64(v, "delayed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let mut t = Trace::default();
        t.record(TraceEvent::Delivered { round: 0, from: NodeId(1), to: NodeId(2) });
        assert!(t.events().is_empty(), "default trace must not buffer events");
        assert_eq!(t.overflow, 0, "disabled recording is not overflow");
        assert_eq!(t.delivered, 1, "aggregate counters stay on");
    }

    #[test]
    fn zero_capacity_overflows_every_event() {
        let mut t = Trace::with_capacity(0);
        for i in 0..4 {
            t.record(TraceEvent::NodeAdded { round: i, node: NodeId(i) });
        }
        assert!(t.events().is_empty());
        assert_eq!(t.overflow, 4);
    }

    #[test]
    fn value_round_trip_preserves_everything() {
        let mut t = Trace::with_capacity(8);
        t.record(TraceEvent::Delivered { round: 0, from: NodeId(1), to: NodeId(2) });
        t.record(TraceEvent::Delayed { round: 1, from: NodeId(2), to: NodeId(3), until: 4 });
        t.record(TraceEvent::NodeRemoved { round: 2, node: NodeId(3) });
        t.record(TraceEvent::DroppedLink { round: 3, from: NodeId(0), to: NodeId(1) });
        t.record_digest(RoundDigest { round: 0, value: 0xDEAD_BEEF });
        t.set_manifest(RunManifest::new(7, "ring n=4"));
        let restored = Trace::load(&t.save()).expect("round trip");
        assert_eq!(restored, t);

        // And through actual JSON text, as a file would store it.
        let text = serde_json::to_string(&t.save()).unwrap();
        let reparsed = Trace::load(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(reparsed, t);
    }

    #[test]
    fn value_round_trip_of_overflowed_trace() {
        let mut t = Trace::with_capacity(1);
        for i in 0..3 {
            t.record(TraceEvent::NodeAdded { round: i, node: NodeId(i) });
        }
        let restored = Trace::load(&t.save()).unwrap();
        assert_eq!(restored.overflow, 2);
        assert_eq!(restored.events().len(), 1);
    }

    #[test]
    fn corrupt_event_is_rejected() {
        let v = serde_json::from_str(r#"{"t":"no-such-event","round":0,"a":1,"b":2}"#).unwrap();
        assert!(TraceEvent::load(&v).is_err());
    }

    #[test]
    fn counters_work_when_disabled() {
        let mut t = Trace::counters_only();
        t.record(TraceEvent::Delivered { round: 0, from: NodeId(1), to: NodeId(2) });
        t.record(TraceEvent::DroppedBlocked { round: 0, from: NodeId(1), to: NodeId(3) });
        assert_eq!(t.delivered, 1);
        assert_eq!(t.dropped_blocked, 1);
        assert!(t.events().is_empty());
    }

    #[test]
    fn capacity_bounds_event_log() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(TraceEvent::NodeAdded { round: i, node: NodeId(i) });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.overflow, 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = Trace::with_capacity(8);
        t.record(TraceEvent::Delivered { round: 0, from: NodeId(1), to: NodeId(2) });
        t.clear();
        assert_eq!(t.delivered, 0);
        assert!(t.events().is_empty());
    }
}
