//! Per-node send-path interception: the [`Conduct`] hook.
//!
//! The paper's adversary blocks honest nodes from the *outside*; a
//! Byzantine member misbehaves from the *inside* — it silently drops
//! messages it promised to forward, or replaces their content with forged
//! payloads. `Conduct` is the engine-level interception point for that
//! behavior: installed on a network (legacy [`crate::Network`] or the
//! sharded `simnet-xl` backend, parity and fast modes alike), it judges
//! every protocol send at collection time, before the message enters the
//! in-flight queue.
//!
//! ## Determinism contract
//!
//! The hook is judged concurrently across shards in the sharded backend,
//! so an implementation must be `Send + Sync`, must not carry per-call
//! mutable state, and must make its decision a pure function of the
//! arguments. Randomized conduct derives its coin flips from
//! [`conduct_roll`] — an FNV-1a hash of `(seed, from, to, round,
//! outbox position)` — which makes every decision independent of
//! evaluation order, backend, shard count and thread schedule. A run with
//! a given conduct installed therefore replays digest-identically across
//! `legacy`, `xl` parity and `xl:fast` at any shard count.
//!
//! Conduct is *configuration*, not simulation state: like a fault model's
//! parameters it shapes future rounds, but unlike the fault model it holds
//! no RNG position, so it is **not checkpointed**. A caller resuming a run
//! from a checkpoint must re-install the same conduct to continue the
//! original behavior (the engines document and test this).
//!
//! Suppressed messages are never charged to the sender's communication
//! work and do not count toward `sent_bits`/`sent_msgs`; forged
//! replacements are charged at the forged payload's size. External
//! injections ([`crate::Network::inject`]) bypass the hook — they model
//! out-of-band stimulus, not member traffic.

use crate::digest::Digest;
use crate::NodeId;
use std::collections::BTreeSet;

/// Stream salt of [`conduct_roll`], disjoint from every other purpose
/// constant in the workspace (`FAST_FATE_SALT`, RNG purposes, digest
/// section markers).
pub const CONDUCT_SALT: u64 = 0xB12A_C7ED;

/// What happens to one outgoing message.
pub enum SendFate<M> {
    /// Pass the message through unchanged.
    Deliver,
    /// Silently drop it (the sender is not charged for it).
    Drop,
    /// Replace the payload with a forgery (charged at the forged size).
    Replace(M),
}

/// A per-node send-path policy: judges every protocol send of every round.
///
/// See the [module docs](self) for the determinism contract. `judge`
/// receives the sender, receiver, the sending round and the message's
/// position in the sender's outbox for that round (`pos`) — the tuple
/// `(from, round, pos)` uniquely names one send across the whole run, and
/// is identical across backends.
pub trait Conduct<M>: Send + Sync {
    /// Decide the fate of one outgoing message.
    fn judge(&self, from: NodeId, to: NodeId, round: u64, pos: u64, msg: &M) -> SendFate<M>;

    /// Short label for manifests and experiment records.
    fn name(&self) -> &'static str {
        "conduct"
    }
}

/// Deterministic coin material for conduct decisions: an FNV-1a hash of
/// the seed and the send's identity. Uniform enough for probability
/// thresholds, and — unlike an RNG stream — independent of how many other
/// sends were judged before this one.
pub fn conduct_roll(seed: u64, from: NodeId, to: NodeId, round: u64, pos: u64) -> u64 {
    let mut d = Digest::new();
    d.write_u64(CONDUCT_SALT)
        .write_u64(seed)
        .write_u64(from.raw())
        .write_u64(to.raw())
        .write_u64(round)
        .write_u64(pos);
    d.finish()
}

/// Probability scale of [`ByzantineConduct`]: decisions are expressed in
/// parts per million, so thresholds are exact integers (no float
/// comparisons on the replay path).
pub const PPM: u32 = 1_000_000;

/// A concrete [`Conduct`]: a fixed set of Byzantine members that drop
/// and/or forge their outgoing messages with configured probabilities.
/// Honest senders pass through untouched.
///
/// Decisions hash `(seed, from, to, round, pos)` via [`conduct_roll`], so
/// the same construction replays identically on every backend.
pub struct ByzantineConduct<M> {
    byz: BTreeSet<u64>,
    drop_ppm: u32,
    forge_ppm: u32,
    forge: Option<fn(&M) -> M>,
    seed: u64,
}

impl<M> ByzantineConduct<M> {
    /// A conduct with the given Byzantine member set and no misbehavior
    /// configured yet (add it with [`Self::dropping`] / [`Self::forging`]).
    pub fn new(seed: u64, byz: impl IntoIterator<Item = NodeId>) -> Self {
        Self {
            byz: byz.into_iter().map(|id| id.raw()).collect(),
            drop_ppm: 0,
            forge_ppm: 0,
            forge: None,
            seed,
        }
    }

    /// Byzantine members drop each outgoing message with probability
    /// `ppm / 1e6` (clamped to certainty at [`PPM`]).
    pub fn dropping(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm.min(PPM);
        self
    }

    /// Byzantine members replace each surviving outgoing message with
    /// `forge(original)` with probability `ppm / 1e6`. The forge function
    /// must be pure — it is applied under the same determinism contract as
    /// the rest of the hook.
    pub fn forging(mut self, ppm: u32, forge: fn(&M) -> M) -> Self {
        self.forge_ppm = ppm.min(PPM);
        self.forge = Some(forge);
        self
    }

    /// Whether `id` is in the Byzantine set.
    pub fn is_byzantine(&self, id: NodeId) -> bool {
        self.byz.contains(&id.raw())
    }

    /// Number of Byzantine members.
    pub fn byzantine_count(&self) -> usize {
        self.byz.len()
    }
}

impl<M: Send + Sync> Conduct<M> for ByzantineConduct<M> {
    fn judge(&self, from: NodeId, to: NodeId, round: u64, pos: u64, msg: &M) -> SendFate<M> {
        if !self.byz.contains(&from.raw()) {
            return SendFate::Deliver;
        }
        let roll = (conduct_roll(self.seed, from, to, round, pos) % PPM as u64) as u32;
        if roll < self.drop_ppm {
            return SendFate::Drop;
        }
        if roll < self.drop_ppm.saturating_add(self.forge_ppm) {
            if let Some(forge) = self.forge {
                return SendFate::Replace(forge(msg));
            }
        }
        SendFate::Deliver
    }

    fn name(&self) -> &'static str {
        "byzantine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_stable_and_distinguish_sends() {
        let a = conduct_roll(1, NodeId(2), NodeId(3), 4, 5);
        assert_eq!(a, conduct_roll(1, NodeId(2), NodeId(3), 4, 5), "pure function");
        assert_ne!(a, conduct_roll(2, NodeId(2), NodeId(3), 4, 5), "seed matters");
        assert_ne!(a, conduct_roll(1, NodeId(9), NodeId(3), 4, 5), "sender matters");
        assert_ne!(a, conduct_roll(1, NodeId(2), NodeId(3), 9, 5), "round matters");
        assert_ne!(a, conduct_roll(1, NodeId(2), NodeId(3), 4, 9), "position matters");
    }

    #[test]
    fn honest_senders_always_deliver() {
        let c: ByzantineConduct<u64> =
            ByzantineConduct::new(7, [NodeId(1)]).dropping(PPM).forging(PPM, |m| m + 1);
        for pos in 0..50 {
            match c.judge(NodeId(2), NodeId(1), 0, pos, &0) {
                SendFate::Deliver => {}
                _ => panic!("honest sender must pass through"),
            }
        }
    }

    #[test]
    fn certain_drop_always_drops() {
        let c: ByzantineConduct<u64> = ByzantineConduct::new(7, [NodeId(1)]).dropping(PPM);
        for pos in 0..50 {
            match c.judge(NodeId(1), NodeId(2), 3, pos, &0) {
                SendFate::Drop => {}
                _ => panic!("drop probability 1 must drop"),
            }
        }
    }

    #[test]
    fn certain_forge_applies_the_transform() {
        let c: ByzantineConduct<u64> =
            ByzantineConduct::new(7, [NodeId(1)]).forging(PPM, |m| m ^ 0xFF);
        match c.judge(NodeId(1), NodeId(2), 0, 0, &1) {
            SendFate::Replace(m) => assert_eq!(m, 1 ^ 0xFF),
            _ => panic!("forge probability 1 must forge"),
        }
    }

    #[test]
    fn partial_probability_hits_a_plausible_fraction() {
        let c: ByzantineConduct<u64> = ByzantineConduct::new(11, [NodeId(1)]).dropping(PPM / 2);
        let dropped = (0..2000)
            .filter(|&pos| matches!(c.judge(NodeId(1), NodeId(2), 0, pos, &0), SendFate::Drop))
            .count();
        assert!((800..1200).contains(&dropped), "~50% expected, got {dropped}/2000");
    }

    #[test]
    fn decisions_are_order_independent() {
        let c: ByzantineConduct<u64> = ByzantineConduct::new(3, [NodeId(1)]).dropping(PPM / 2);
        let fate = |pos| matches!(c.judge(NodeId(1), NodeId(2), 5, pos, &0), SendFate::Drop);
        let forward: Vec<bool> = (0..64).map(fate).collect();
        let mut backward: Vec<bool> = (0..64).rev().map(fate).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }
}
