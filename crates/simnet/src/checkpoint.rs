//! Crash-consistent checkpointing of simulation state.
//!
//! The serde shim deliberately has no typed serialization, so checkpointing
//! is explicit: every state-bearing type implements [`Checkpoint`], mapping
//! itself to and from a [`serde_json::Value`] tree. Floats are stored as
//! IEEE-754 bit patterns (`f64::to_bits`) — a checkpoint must restore the
//! *exact* value, not a decimal approximation, or replay digests diverge.
//!
//! Files are written crash-consistently: the value is serialized to a
//! `*.tmp` sibling, flushed, and renamed over the final path, so a reader
//! never observes a torn checkpoint. [`Checkpointer`] implements the
//! `checkpoint_every(k)` cadence and names files by round.

use crate::rng::NodeRng;
use crate::NodeId;
use rand_chacha::ChaChaState;
use serde_json::Value;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Why a checkpoint could not be loaded.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem error while reading or writing.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Parse(String),
    /// The JSON shape does not match what the loader expects.
    Corrupt(String),
    /// The restored state does not reproduce the digest stamped at save
    /// time — the checkpoint is internally inconsistent.
    DigestMismatch {
        /// Digest recorded when the checkpoint was written.
        stamped: u64,
        /// Digest of the state actually restored.
        restored: u64,
    },
    /// The checkpoint was written under a different execution mode than
    /// the engine asked to restore it (e.g. a relaxed-order `fast` run
    /// resumed into a parity engine). Cross-mode resumes would silently
    /// change the run's ordering guarantees, so they must be explicit.
    ModeMismatch {
        /// Execution mode recorded in the checkpoint.
        checkpoint: &'static str,
        /// Execution mode of the engine attempting the restore.
        engine: &'static str,
    },
    /// A directory scan found no checkpoint that loads cleanly — every
    /// candidate was missing, torn, or corrupt.
    NoUsableCheckpoint {
        /// Directory that was scanned.
        dir: String,
        /// Candidate files considered.
        scanned: usize,
        /// Candidates skipped because they failed to read, parse, or load.
        skipped: usize,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CkptError::Parse(m) => write!(f, "checkpoint is not valid JSON: {m}"),
            CkptError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CkptError::DigestMismatch { stamped, restored } => write!(
                f,
                "checkpoint digest mismatch: stamped {stamped:#018x}, restored state hashes \
                 to {restored:#018x}"
            ),
            CkptError::ModeMismatch { checkpoint, engine } => write!(
                f,
                "checkpoint exec-mode mismatch: the checkpoint was written by a `{checkpoint}` \
                 run but a `{engine}` engine is restoring it; resume with a matching engine (or \
                 convert explicitly via XlNetwork::from_state_as)"
            ),
            CkptError::NoUsableCheckpoint { dir, scanned, skipped } => write!(
                f,
                "no usable checkpoint in `{dir}`: {scanned} candidate(s), {skipped} skipped as \
                 torn or corrupt"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// Shorthand for checkpoint results.
pub type CkptResult<T> = Result<T, CkptError>;

/// Explicit state serialization to a [`Value`] tree.
///
/// `load(save(x))` must reconstruct `x` exactly — including RNG stream
/// positions — so that a resumed run continues the original's digest
/// stream bit for bit.
pub trait Checkpoint: Sized {
    /// Serialize the full state.
    fn save(&self) -> Value;
    /// Reconstruct state from [`Self::save`] output.
    fn load(v: &Value) -> CkptResult<Self>;
}

// ---------------------------------------------------------------------------
// Value helpers (used by Checkpoint impls across the workspace)
// ---------------------------------------------------------------------------

/// Missing-field error with context.
pub fn missing(what: &str) -> CkptError {
    CkptError::Corrupt(format!("missing or mistyped field `{what}`"))
}

/// Fetch an object member or fail with a named error.
pub fn field<'v>(v: &'v Value, name: &str) -> CkptResult<&'v Value> {
    v.get(name).ok_or_else(|| missing(name))
}

/// Fetch a `u64` member.
pub fn get_u64(v: &Value, name: &str) -> CkptResult<u64> {
    field(v, name)?.as_u64().ok_or_else(|| missing(name))
}

/// Fetch a `usize` member.
pub fn get_usize(v: &Value, name: &str) -> CkptResult<usize> {
    Ok(get_u64(v, name)? as usize)
}

/// Fetch a `bool` member.
pub fn get_bool(v: &Value, name: &str) -> CkptResult<bool> {
    field(v, name)?.as_bool().ok_or_else(|| missing(name))
}

/// Fetch a string member.
pub fn get_str<'v>(v: &'v Value, name: &str) -> CkptResult<&'v str> {
    field(v, name)?.as_str().ok_or_else(|| missing(name))
}

/// Fetch an array member.
pub fn get_array<'v>(v: &'v Value, name: &str) -> CkptResult<&'v Vec<Value>> {
    field(v, name)?.as_array().ok_or_else(|| missing(name))
}

/// Encode an `f64` exactly, as its IEEE-754 bit pattern.
pub fn f64_bits(x: f64) -> Value {
    Value::from(x.to_bits())
}

/// Decode an `f64` stored via [`f64_bits`].
pub fn get_f64_bits(v: &Value, name: &str) -> CkptResult<f64> {
    Ok(f64::from_bits(get_u64(v, name)?))
}

/// Serialize a slice of checkpointable items.
pub fn save_slice<T: Checkpoint>(items: &[T]) -> Value {
    Value::Array(items.iter().map(Checkpoint::save).collect())
}

/// Deserialize a vector of checkpointable items.
pub fn load_vec<T: Checkpoint>(v: &Value) -> CkptResult<Vec<T>> {
    v.as_array().ok_or_else(|| missing("array"))?.iter().map(T::load).collect()
}

/// Fetch and deserialize a vector member.
pub fn get_vec<T: Checkpoint>(v: &Value, name: &str) -> CkptResult<Vec<T>> {
    load_vec(field(v, name)?)
}

impl Checkpoint for NodeId {
    fn save(&self) -> Value {
        Value::from(self.raw())
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(NodeId(v.as_u64().ok_or_else(|| missing("node id"))?))
    }
}

impl Checkpoint for u64 {
    fn save(&self) -> Value {
        Value::from(*self)
    }

    fn load(v: &Value) -> CkptResult<Self> {
        v.as_u64().ok_or_else(|| missing("u64"))
    }
}

impl Checkpoint for usize {
    fn save(&self) -> Value {
        Value::from(*self)
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(v.as_u64().ok_or_else(|| missing("usize"))? as usize)
    }
}

impl Checkpoint for () {
    fn save(&self) -> Value {
        Value::Null
    }

    fn load(_v: &Value) -> CkptResult<Self> {
        Ok(())
    }
}

impl<T: Checkpoint> Checkpoint for Vec<T> {
    fn save(&self) -> Value {
        save_slice(self)
    }

    fn load(v: &Value) -> CkptResult<Self> {
        load_vec(v)
    }
}

impl Checkpoint for NodeRng {
    fn save(&self) -> Value {
        let s = self.state();
        serde_json::json!({
            "key": s.key.to_vec(),
            "counter": s.counter,
            "nonce": s.nonce.to_vec(),
            "pos": s.pos,
            "spare": match s.spare {
                Some(w) => Value::from(w),
                None => Value::Null,
            },
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let words = |name: &str| -> CkptResult<Vec<u32>> {
            get_array(v, name)?
                .iter()
                .map(|w| w.as_u64().map(|x| x as u32).ok_or_else(|| missing(name)))
                .collect()
        };
        let key_v = words("key")?;
        let nonce_v = words("nonce")?;
        let mut key = [0u32; 8];
        let mut nonce = [0u32; 2];
        if key_v.len() != 8 || nonce_v.len() != 2 {
            return Err(CkptError::Corrupt("rng key/nonce length".into()));
        }
        key.copy_from_slice(&key_v);
        nonce.copy_from_slice(&nonce_v);
        let spare = match field(v, "spare")? {
            Value::Null => None,
            w => Some(w.as_u64().ok_or_else(|| missing("spare"))? as u32),
        };
        Ok(NodeRng::from_state(ChaChaState {
            key,
            counter: get_u64(v, "counter")?,
            nonce,
            pos: get_usize(v, "pos")?,
            spare,
        }))
    }
}

// ---------------------------------------------------------------------------
// Crash-consistent files
// ---------------------------------------------------------------------------

/// Serialize `value` to `path` crash-consistently: write a `*.tmp`
/// sibling, flush it, then atomically rename over the final name. A crash
/// at any point leaves either the old file or the new one, never a torn
/// mix.
pub fn write_value_atomic(path: &Path, value: &Value) -> CkptResult<()> {
    let text = serde_json::to_string_pretty(value).map_err(|e| CkptError::Parse(e.to_string()))?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and parse a checkpoint file.
pub fn read_value(path: &Path) -> CkptResult<Value> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| CkptError::Parse(e.to_string()))
}

/// Periodic checkpoint policy: every `k` rounds, write the state into a
/// directory, one file per checkpointed round plus a stable `latest.json`
/// alias (both written atomically).
pub struct Checkpointer {
    dir: PathBuf,
    every: u64,
    written: u64,
}

impl Checkpointer {
    /// Checkpoint every `every` rounds into `dir` (created if absent).
    /// `every` must be nonzero.
    pub fn checkpoint_every(every: u64, dir: impl Into<PathBuf>) -> CkptResult<Self> {
        if every == 0 {
            return Err(CkptError::Corrupt("checkpoint interval must be nonzero".into()));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, every, written: 0 })
    }

    /// Is a checkpoint due after completing `round`? (Rounds are counted
    /// from 0, so the first checkpoint lands after round `every - 1`.)
    pub fn due(&self, round: u64) -> bool {
        (round + 1) % self.every == 0
    }

    /// Path of the checkpoint for `round`.
    pub fn path_for(&self, round: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{round:010}.json"))
    }

    /// Path of the rolling `latest.json` alias.
    pub fn latest_path(&self) -> PathBuf {
        self.dir.join("latest.json")
    }

    /// Number of checkpoints written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Write `state` as the checkpoint for `round` (and as `latest.json`).
    pub fn save(&mut self, round: u64, state: &Value) -> CkptResult<PathBuf> {
        let path = self.path_for(round);
        write_value_atomic(&path, state)?;
        write_value_atomic(&self.latest_path(), state)?;
        self.written += 1;
        Ok(path)
    }

    /// Load the newest checkpoint in `dir` that actually loads as a `T`,
    /// skipping torn or corrupt files instead of failing on the first one.
    ///
    /// Tries `latest.json` first, then the round-named `ckpt-*.json` files
    /// newest-first (round numbers are zero-padded, so lexicographic
    /// filename order is round order). The atomic writer makes torn files
    /// unlikely, but a full disk, an interrupted copy, or a stray editor
    /// can still leave one — recovery must not be blocked by the very
    /// artifact meant to enable it. Returns the path it loaded alongside
    /// the state, or [`CkptError::NoUsableCheckpoint`] when every
    /// candidate fails.
    pub fn latest<T: Checkpoint>(dir: &Path) -> CkptResult<(PathBuf, T)> {
        let mut candidates = vec![dir.join("latest.json")];
        let mut rounds: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
            })
            .collect();
        rounds.sort();
        candidates.extend(rounds.into_iter().rev());

        let mut scanned = 0;
        let mut skipped = 0;
        for path in candidates {
            if !path.is_file() {
                continue;
            }
            scanned += 1;
            match read_value(&path).and_then(|v| T::load(&v)) {
                Ok(state) => return Ok((path, state)),
                Err(_) => skipped += 1,
            }
        }
        Err(CkptError::NoUsableCheckpoint { dir: dir.display().to_string(), scanned, skipped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;
    use rand::RngCore;

    #[test]
    fn rng_checkpoint_round_trips_stream() {
        let mut a = stream(42, 7, 3);
        for _ in 0..29 {
            a.next_u32();
        }
        let saved = a.save();
        let mut b = NodeRng::load(&saved).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_bits_are_exact() {
        for x in [0.1, 0.30000000000000004, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let v = serde_json::json!({ "x": f64_bits(x) });
            let text = serde_json::to_string(&v).unwrap();
            let back = serde_json::from_str(&text).unwrap();
            assert_eq!(get_f64_bits(&back, "x").unwrap(), x);
        }
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("simnet-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let v = serde_json::json!({ "a": 1u64, "b": vec![2u64, 3u64] });
        write_value_atomic(&path, &v).unwrap();
        assert_eq!(read_value(&path).unwrap(), v);
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpointer_cadence_and_paths() {
        let dir = std::env::temp_dir().join("simnet-ckpt-cadence");
        let ck = Checkpointer::checkpoint_every(5, &dir).unwrap();
        assert!(!ck.due(0));
        assert!(ck.due(4));
        assert!(ck.due(9));
        assert!(!ck.due(5));
        assert!(Checkpointer::checkpoint_every(0, &dir).is_err());
    }

    #[test]
    fn corrupt_input_reports_field() {
        let v = serde_json::json!({ "counter": 1u64 });
        let err = NodeRng::load(&v).unwrap_err();
        assert!(err.to_string().contains("key"), "got: {err}");
    }

    /// Scratch directory unique to a test, emptied on entry.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simnet-ckpt-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn latest_falls_back_past_torn_and_corrupt_files() {
        let dir = scratch("torn");
        let mut ck = Checkpointer::checkpoint_every(1, &dir).unwrap();
        ck.save(4, &7u64.save()).unwrap();
        ck.save(9, &8u64.save()).unwrap();
        ck.save(14, &9u64.save()).unwrap();
        // Tear the newest round file mid-token and corrupt latest.json
        // with valid JSON of the wrong shape.
        std::fs::write(ck.path_for(14), "{\"trunc").unwrap();
        std::fs::write(ck.latest_path(), "[\"not a u64\"]").unwrap();
        let (path, state) = Checkpointer::latest::<u64>(&dir).unwrap();
        assert_eq!(state, 8);
        assert_eq!(path, ck.path_for(9));
    }

    #[test]
    fn latest_prefers_the_latest_alias_when_it_loads() {
        let dir = scratch("alias");
        let mut ck = Checkpointer::checkpoint_every(1, &dir).unwrap();
        ck.save(3, &5u64.save()).unwrap();
        let (path, state) = Checkpointer::latest::<u64>(&dir).unwrap();
        assert_eq!(state, 5);
        assert_eq!(path, ck.latest_path());
    }

    #[test]
    fn latest_reports_no_usable_checkpoint() {
        let dir = scratch("allbad");
        std::fs::write(dir.join("latest.json"), "garbage").unwrap();
        std::fs::write(dir.join("ckpt-0000000004.json"), "{").unwrap();
        let err = Checkpointer::latest::<u64>(&dir).unwrap_err();
        match err {
            CkptError::NoUsableCheckpoint { scanned, skipped, .. } => {
                assert_eq!(scanned, 2);
                assert_eq!(skipped, 2);
            }
            other => panic!("expected NoUsableCheckpoint, got {other}"),
        }
    }
}
