//! The adaptive adversary's window into the network.
//!
//! The paper's adversary (Section 1.1) is *adaptive*: it sees the topology
//! and picks each round's block set reactively, but its information is
//! `t`-late — it acts on a snapshot at least `lateness` rounds old. An
//! [`ObserverView`] is one such read-only snapshot; a [`ViewBuffer`]
//! enforces the lateness by only releasing views whose round is old
//! enough. Strategies implement [`AdaptiveAdversary`] and never see
//! anything fresher than the buffer releases.

use crate::fault::BlockSet;
use crate::NodeId;
use std::collections::{BTreeMap, VecDeque};

/// A read-only topology snapshot offered to an adaptive adversary:
/// membership, overlay edges, group structure, per-node degree and load,
/// the adversary's own recent block sets, and which nodes (re)joined at
/// this view's round. Everything is plain data — a strategy cannot mutate
/// the network through it.
#[derive(Clone, Debug, Default)]
pub struct ObserverView {
    /// Round the snapshot was taken.
    pub round: u64,
    /// Current members, ascending.
    pub nodes: Vec<NodeId>,
    /// Undirected overlay edges (deduplicated, canonical order).
    pub edges: Vec<(NodeId, NodeId)>,
    /// Group decomposition, if the overlay has one (else empty).
    pub groups: Vec<Vec<NodeId>>,
    /// Inter-group adjacency as indices into `groups`.
    pub group_edges: Vec<(usize, usize)>,
    /// Nodes absent in the previous view that are present now — fresh
    /// joins and heal-layer rejoins, exactly what a "follow the healer"
    /// strategy hunts.
    pub rejoined: Vec<NodeId>,
    /// The block sets this adversary previously issued, most recent last
    /// (bounded history).
    pub blocked_history: Vec<(u64, BlockSet)>,
}

impl ObserverView {
    /// Build a view from membership and edges; derives nothing else.
    pub fn new(round: u64, mut nodes: Vec<NodeId>, edges: Vec<(NodeId, NodeId)>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        Self { round, nodes, edges, ..Self::default() }
    }

    /// Per-node degree under `edges` (nodes without edges count 0).
    pub fn degrees(&self) -> BTreeMap<NodeId, usize> {
        let mut deg: BTreeMap<NodeId, usize> = self.nodes.iter().map(|&v| (v, 0)).collect();
        for &(a, b) in &self.edges {
            if let Some(d) = deg.get_mut(&a) {
                *d += 1;
            }
            if let Some(d) = deg.get_mut(&b) {
                *d += 1;
            }
        }
        deg
    }

    /// Adjacency lists under `edges`, members only.
    pub fn adjacency(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut adj: BTreeMap<NodeId, Vec<NodeId>> =
            self.nodes.iter().map(|&v| (v, Vec::new())).collect();
        for &(a, b) in &self.edges {
            if adj.contains_key(&a) && adj.contains_key(&b) {
                adj.get_mut(&a).expect("present").push(b);
                adj.get_mut(&b).expect("present").push(a);
            }
        }
        adj
    }
}

/// An adversary that reacts to [`ObserverView`]s.
///
/// `pick` is called once per round with the freshest view the lateness
/// rule permits and the exact node budget for this round; implementations
/// return the nodes to block. The harness — not the strategy — is
/// responsible for clamping over-budget answers, so a buggy strategy can
/// never exceed the model's power.
pub trait AdaptiveAdversary {
    /// Stable strategy name (used in experiment tables and repro files).
    fn name(&self) -> &'static str;

    /// Choose this round's block set, at most `budget` nodes.
    fn pick(&mut self, view: &ObserverView, budget: usize) -> BlockSet;
}

/// Enforces the `t`-late information rule: snapshots pushed each round are
/// only released once they are at least `lateness` rounds old. With
/// `lateness == 0` the adversary is fully current (beyond the paper's
/// model — useful as an upper bound on attack power).
#[derive(Clone, Debug)]
pub struct ViewBuffer {
    lateness: u64,
    views: VecDeque<ObserverView>,
    /// Capacity bound on retained released views.
    keep: usize,
}

impl ViewBuffer {
    /// A buffer releasing views `lateness` rounds late.
    pub fn new(lateness: u64) -> Self {
        Self { lateness, views: VecDeque::new(), keep: 64 }
    }

    /// The configured lateness.
    pub fn lateness(&self) -> u64 {
        self.lateness
    }

    /// Record the snapshot for its own round.
    pub fn push(&mut self, view: ObserverView) {
        debug_assert!(
            self.views.back().is_none_or(|b| b.round <= view.round),
            "views must be pushed in round order"
        );
        self.views.push_back(view);
        while self.views.len() > self.keep.max(self.lateness as usize + 2) {
            self.views.pop_front();
        }
    }

    /// The freshest view visible at `current_round`, i.e. the newest
    /// snapshot with `round + lateness <= current_round`. `None` until the
    /// first snapshot ages past the lateness bound.
    pub fn visible(&self, current_round: u64) -> Option<&ObserverView> {
        self.views
            .iter()
            .rev()
            .find(|v| v.round.checked_add(self.lateness).is_some_and(|r| r <= current_round))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(round: u64, n: u64) -> ObserverView {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let edges = (0..n).map(|i| (NodeId(i), NodeId((i + 1) % n))).collect();
        ObserverView::new(round, nodes, edges)
    }

    #[test]
    fn degrees_and_adjacency_on_a_ring() {
        let v = view(0, 5);
        let deg = v.degrees();
        assert!(deg.values().all(|&d| d == 2));
        let adj = v.adjacency();
        assert_eq!(adj[&NodeId(0)].len(), 2);
    }

    #[test]
    fn buffer_enforces_lateness() {
        let mut buf = ViewBuffer::new(4);
        for r in 0..10 {
            buf.push(view(r, 3));
        }
        // At round 10, the freshest permissible snapshot is round 6.
        assert_eq!(buf.visible(10).unwrap().round, 6);
        // Early rounds: nothing old enough yet.
        let mut fresh = ViewBuffer::new(4);
        fresh.push(view(0, 3));
        assert!(fresh.visible(3).is_none());
        assert_eq!(fresh.visible(4).unwrap().round, 0);
    }

    #[test]
    fn zero_lateness_sees_current_round() {
        let mut buf = ViewBuffer::new(0);
        buf.push(view(7, 3));
        assert_eq!(buf.visible(7).unwrap().round, 7);
    }

    #[test]
    fn buffer_is_bounded() {
        let mut buf = ViewBuffer::new(1);
        for r in 0..1000 {
            buf.push(view(r, 2));
        }
        assert!(buf.views.len() <= 66);
        assert_eq!(buf.visible(1000).unwrap().round, 999);
    }
}
