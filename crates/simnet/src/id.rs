//! Node identifiers.
//!
//! The paper assumes every node `v` has a unique identifier `id(v)` of
//! `O(log n)` bits (an IP or MAC address in reality) and that knowing an id
//! is both necessary and sufficient for sending a message to its holder.
//! We model ids as opaque `u64`s; for communication-work accounting an id
//! counts as [`NodeId::SIZE_BITS`] bits.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique node identifier.
///
/// Ordering on `NodeId` is used by the paper wherever a deterministic
/// tie-break among nodes is needed (e.g. the lowest-id rule in the group
/// simulation of Section 5), so `NodeId` is totally ordered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Accounting size of one identifier in bits (`O(log n)` in the paper;
    /// a fixed machine word here).
    pub const SIZE_BITS: u64 = 64;

    /// The raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ordering_matches_raw() {
        let a = NodeId(3);
        let b = NodeId(17);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn usable_as_set_element() {
        let s: BTreeSet<NodeId> = [NodeId(2), NodeId(1), NodeId(2)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().next(), Some(&NodeId(1)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }
}
