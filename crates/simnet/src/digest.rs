//! Stable hashing for deterministic-replay verification.
//!
//! [`Digest`] is a 64-bit FNV-1a hasher with a fixed byte encoding for
//! every input type, so digest values are stable across platforms, Rust
//! versions and `HashMap` iteration orders — unlike `std::hash`, whose
//! output is explicitly unspecified. The engine uses it to fingerprint
//! whole network states once per round ([`crate::Network::round_digest`]);
//! golden tests pin those fingerprints, and differential tests compare
//! them across serial and parallel stepping.
//!
//! [`RunManifest`] records everything needed to reproduce a digest stream:
//! the master seed, a human-readable config string, and the simnet crate
//! version (digests are an implementation fingerprint, not a protocol —
//! they may legitimately change between crate versions, and the manifest
//! makes that visible).

/// 64-bit FNV-1a hasher with a stable input encoding.
///
/// All multi-byte integers are hashed in little-endian order. Each `write_*`
/// method is length-prefixed where ambiguity is possible (`write_bytes`,
/// `write_str`), so adjacent fields cannot alias each other.
#[derive(Clone, Debug)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Digest {
    /// A fresh digest.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Hash one byte.
    #[inline]
    pub fn write_u8(&mut self, x: u8) -> &mut Self {
        self.state = (self.state ^ x as u64).wrapping_mul(FNV_PRIME);
        self
    }

    /// Hash a `u32` (little-endian).
    #[inline]
    pub fn write_u32(&mut self, x: u32) -> &mut Self {
        for b in x.to_le_bytes() {
            self.write_u8(b);
        }
        self
    }

    /// Hash a `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, x: u64) -> &mut Self {
        for b in x.to_le_bytes() {
            self.write_u8(b);
        }
        self
    }

    /// Hash a `u128` (little-endian).
    #[inline]
    pub fn write_u128(&mut self, x: u128) -> &mut Self {
        for b in x.to_le_bytes() {
            self.write_u8(b);
        }
        self
    }

    /// Hash a `usize` (as `u64`, so 32/64-bit platforms agree).
    #[inline]
    pub fn write_usize(&mut self, x: usize) -> &mut Self {
        self.write_u64(x as u64)
    }

    /// Hash a `bool`.
    #[inline]
    pub fn write_bool(&mut self, x: bool) -> &mut Self {
        self.write_u8(x as u8)
    }

    /// Hash an `f64` by its IEEE-754 bit pattern.
    #[inline]
    pub fn write_f64(&mut self, x: f64) -> &mut Self {
        self.write_u64(x.to_bits())
    }

    /// Hash a byte slice (length-prefixed).
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_usize(bytes.len());
        for &b in bytes {
            self.write_u8(b);
        }
        self
    }

    /// Hash a string (length-prefixed UTF-8 bytes).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

/// The digest of one completed simulation round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundDigest {
    /// The round that was executed (digest taken after it completed).
    pub round: u64,
    /// Stable fingerprint of the full network state at that point.
    pub value: u64,
}

/// Reproduction record for a digest stream: replaying a run with the same
/// seed, config and crate version must yield byte-identical digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunManifest {
    /// Master seed the network was created with.
    pub master_seed: u64,
    /// Human-readable description of the run configuration (population,
    /// protocol parameters, schedule — whatever the caller deems defining).
    pub config: String,
    /// `simnet` crate version that produced the digests.
    pub crate_version: String,
}

impl RunManifest {
    /// Build a manifest for `master_seed` with a caller-supplied config
    /// string; the crate version is filled in automatically.
    pub fn new(master_seed: u64, config: impl Into<String>) -> Self {
        Self {
            master_seed,
            config: config.into(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }

    /// Stable fingerprint of the manifest itself.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.master_seed).write_str(&self.config).write_str(&self.crate_version);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a("") = offset basis; FNV-1a("a") per the reference spec.
        assert_eq!(Digest::new().finish(), 0xcbf29ce484222325);
        let mut d = Digest::new();
        d.write_u8(b'a');
        assert_eq!(d.finish(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn field_order_matters() {
        let mut a = Digest::new();
        a.write_u64(1).write_u64(2);
        let mut b = Digest::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        // ("ab", "c") and ("a", "bc") must hash differently.
        let mut a = Digest::new();
        a.write_str("ab").write_str("c");
        let mut b = Digest::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn usize_hashes_like_u64() {
        let mut a = Digest::new();
        a.write_usize(77);
        let mut b = Digest::new();
        b.write_u64(77);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn manifest_digest_covers_all_fields() {
        let m = RunManifest::new(1, "n=8");
        let mut seed = m.clone();
        seed.master_seed = 2;
        let mut cfg = m.clone();
        cfg.config = "n=9".into();
        let mut ver = m.clone();
        ver.crate_version = "999.0.0".into();
        assert_ne!(m.digest(), seed.digest());
        assert_ne!(m.digest(), cfg.digest());
        assert_ne!(m.digest(), ver.digest());
    }

    #[test]
    fn manifest_new_records_crate_version() {
        let m = RunManifest::new(0, "");
        assert_eq!(m.crate_version, env!("CARGO_PKG_VERSION"));
    }
}
