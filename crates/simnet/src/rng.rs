//! Deterministic randomness.
//!
//! Every stochastic decision in the simulator draws from a ChaCha8 stream
//! keyed by `(master_seed, node_id, purpose)`. This makes runs reproducible
//! bit-for-bit regardless of how many rayon threads step the nodes, because
//! no RNG state is shared between nodes.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The per-node RNG type used throughout the workspace.
pub type NodeRng = ChaCha8Rng;

/// SplitMix64 finalizer; decorrelates nearby seeds.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent RNG stream for `(master_seed, node, purpose)`.
///
/// `purpose` separates different uses of randomness at the same node (e.g.
/// one stream per Hamilton cycle instance of Algorithm 3) so that adding a
/// consumer never perturbs an existing one.
pub fn stream(master_seed: u64, node: u64, purpose: u64) -> NodeRng {
    let mut key = [0u8; 32];
    let a = splitmix64(master_seed ^ 0xA076_1D64_78BD_642F);
    let b = splitmix64(a ^ node);
    let c = splitmix64(b ^ purpose);
    let d = splitmix64(c ^ 0xE703_7ED1_A0B4_28DB);
    key[0..8].copy_from_slice(&a.to_le_bytes());
    key[8..16].copy_from_slice(&b.to_le_bytes());
    key[16..24].copy_from_slice(&c.to_le_bytes());
    key[24..32].copy_from_slice(&d.to_le_bytes());
    ChaCha8Rng::from_seed(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_key_same_stream() {
        let mut a = stream(1, 2, 3);
        let mut b = stream(1, 2, 3);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_purpose_different_stream() {
        let mut a = stream(1, 2, 3);
        let mut b = stream(1, 2, 4);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_node_different_stream() {
        let mut a = stream(1, 2, 3);
        let mut b = stream(1, 5, 3);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn adjacent_seeds_decorrelated() {
        // Nearby master seeds should not produce obviously correlated output.
        let mut a = stream(100, 0, 0);
        let mut b = stream(101, 0, 0);
        let same = (0..64).filter(|_| a.random::<bool>() == b.random::<bool>()).count();
        assert!((8..=56).contains(&same), "suspicious correlation: {same}/64");
    }
}
