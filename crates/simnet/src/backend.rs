//! The engine-agnostic backend interface.
//!
//! [`SimEngine`] captures everything the runners in `reconfig-core` (and
//! the experiment binaries) need from a simulation engine: membership
//! churn, round stepping with DoS block sets, fault-model installation,
//! observability attachment and the replay-verification digest. The legacy
//! [`Network`](crate::Network) implements it by delegation; the sharded
//! `simnet-xl` backend implements the same surface, and the two are
//! interchangeable behind `simnet_xl::AnyNet` — with identical round
//! semantics and identical digest streams.
//!
//! The trait deliberately exposes ids as a collected `Vec` rather than an
//! iterator: backends store nodes in different layouts (slot vector vs.
//! sharded structure-of-arrays) and the call sites that enumerate members
//! are all control-plane code where the allocation is irrelevant.

use crate::accounting::CommStats;
use crate::conduct::Conduct;
use crate::fault::{BlockSet, FaultModel};
use crate::protocol::Protocol;
use crate::trace::Trace;
use crate::{Network, NodeId};
use std::sync::Arc;
use telemetry::Telemetry;

/// A synchronous-round simulation engine executing protocol `P`.
///
/// All methods have the semantics documented on [`Network`]; two engines
/// driven identically must produce identical
/// [`round_digest`](SimEngine::round_digest) streams.
pub trait SimEngine<P: Protocol> {
    /// The master seed this engine was created with.
    fn master_seed(&self) -> u64;

    /// Current round number (the next round to execute).
    fn round(&self) -> u64;

    /// Number of nodes currently in the network.
    fn len(&self) -> usize;

    /// True if no nodes are present.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is currently a member.
    fn contains(&self, id: NodeId) -> bool;

    /// Current member ids, in unspecified order.
    fn ids(&self) -> Vec<NodeId>;

    /// Add a node. Panics if `id` is already present.
    fn add_node(&mut self, id: NodeId, proto: P);

    /// Remove a node, returning its protocol state.
    fn remove_node(&mut self, id: NodeId) -> Option<P>;

    /// Shared access to a node's protocol state.
    fn node(&self, id: NodeId) -> Option<&P>;

    /// Exclusive access to a node's protocol state.
    fn node_mut(&mut self, id: NodeId) -> Option<&mut P>;

    /// Inject a message from outside the simulation.
    fn inject(&mut self, from: NodeId, to: NodeId, msg: P::Msg);

    /// Execute one round with the given set of nodes blocked.
    fn step_blocked(&mut self, blocked: &BlockSet);

    /// Execute one round with no nodes blocked.
    fn step(&mut self) {
        self.step_blocked(&BlockSet::none());
    }

    /// Run `rounds` rounds with no blocking.
    fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Install a fault model on the delivery path.
    fn set_fault_model(&mut self, faults: FaultModel);

    /// The installed fault model.
    fn fault_model(&self) -> &FaultModel;

    /// Install (or with `None`, remove) a send-path [`Conduct`] policy
    /// (see [`Network::set_conduct`]). Conduct is configuration, not
    /// state: resumed runs must re-install it.
    fn set_conduct(&mut self, conduct: Option<Arc<dyn Conduct<P::Msg>>>);

    /// Totals of messages `(dropped, forged)` by the installed conduct.
    fn conduct_counts(&self) -> (u64, u64);

    /// Attach a telemetry recorder (see [`Network::set_telemetry`]).
    fn set_telemetry(&mut self, tel: Telemetry);

    /// The attached telemetry recorder.
    fn telemetry(&self) -> &Telemetry;

    /// Enable event tracing with the given buffer capacity.
    fn enable_trace(&mut self, cap: usize);

    /// Record a round digest into the trace after every subsequent round.
    fn enable_digests(&mut self);

    /// Attach a reproduction manifest to the trace.
    fn set_manifest(&mut self, config: String);

    /// The event trace (counters, events, digests, manifest).
    fn trace(&self) -> &Trace;

    /// Communication-work statistics recorded so far.
    fn stats(&self) -> &CommStats;

    /// Stable fingerprint of the full engine state (see
    /// [`Network::round_digest`]).
    fn round_digest(&self) -> u64;
}

impl<P: Protocol> SimEngine<P> for Network<P> {
    fn master_seed(&self) -> u64 {
        Network::master_seed(self)
    }

    fn round(&self) -> u64 {
        Network::round(self)
    }

    fn len(&self) -> usize {
        Network::len(self)
    }

    fn contains(&self, id: NodeId) -> bool {
        Network::contains(self, id)
    }

    fn ids(&self) -> Vec<NodeId> {
        Network::ids(self).collect()
    }

    fn add_node(&mut self, id: NodeId, proto: P) {
        Network::add_node(self, id, proto);
    }

    fn remove_node(&mut self, id: NodeId) -> Option<P> {
        Network::remove_node(self, id)
    }

    fn node(&self, id: NodeId) -> Option<&P> {
        Network::node(self, id)
    }

    fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        Network::node_mut(self, id)
    }

    fn inject(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        Network::inject(self, from, to, msg);
    }

    fn step_blocked(&mut self, blocked: &BlockSet) {
        Network::step_blocked(self, blocked);
    }

    fn set_fault_model(&mut self, faults: FaultModel) {
        Network::set_fault_model(self, faults);
    }

    fn fault_model(&self) -> &FaultModel {
        Network::fault_model(self)
    }

    fn set_conduct(&mut self, conduct: Option<Arc<dyn Conduct<P::Msg>>>) {
        Network::set_conduct(self, conduct);
    }

    fn conduct_counts(&self) -> (u64, u64) {
        Network::conduct_counts(self)
    }

    fn set_telemetry(&mut self, tel: Telemetry) {
        Network::set_telemetry(self, tel);
    }

    fn telemetry(&self) -> &Telemetry {
        Network::telemetry(self)
    }

    fn enable_trace(&mut self, cap: usize) {
        Network::enable_trace(self, cap);
    }

    fn enable_digests(&mut self) {
        Network::enable_digests(self);
    }

    fn set_manifest(&mut self, config: String) {
        Network::set_manifest(self, config);
    }

    fn trace(&self) -> &Trace {
        Network::trace(self)
    }

    fn stats(&self) -> &CommStats {
        Network::stats(self)
    }

    fn round_digest(&self) -> u64 {
        Network::round_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Ctx;

    struct Echo;
    impl Protocol for Echo {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) {
            let msgs: Vec<_> = ctx.take_inbox();
            for env in msgs {
                ctx.send(env.from, env.msg + 1);
            }
        }
    }

    fn drive(engine: &mut dyn SimEngine<Echo>) -> u64 {
        engine.add_node(NodeId(1), Echo);
        engine.add_node(NodeId(2), Echo);
        engine.inject(NodeId(2), NodeId(1), 10);
        engine.run(3);
        engine.round_digest()
    }

    #[test]
    fn legacy_network_is_object_safe_behind_the_trait() {
        let mut a = Network::new(7);
        let mut b = Network::new(7);
        assert_eq!(drive(&mut a), drive(&mut b));
        assert_eq!(SimEngine::len(&a), 2);
        assert!(SimEngine::contains(&a, NodeId(2)));
        let mut ids = SimEngine::ids(&a);
        ids.sort_unstable();
        assert_eq!(ids, vec![NodeId(1), NodeId(2)]);
    }
}
