//! DoS blocking semantics and the generalized fault model.
//!
//! An `r`-bounded adversary may block any `r`-fraction of the current nodes
//! in a round. A blocked node can neither send nor receive in that round.
//! A message sent from `v` to `w` in round `i` is received and processed by
//! `w` only if
//!
//! * `v` is non-blocked in round `i`, and
//! * `w` is non-blocked in round `i` **and** round `i + 1`.
//!
//! If so, `w` is called *available* in round `i + 1`. The engine consults a
//! [`BlockSet`] per round and applies exactly this rule.
//!
//! Beyond the paper's model, a [`FaultModel`] composes the blocking rule
//! with *link faults* (probabilistic message drop, duplication and bounded
//! extra delay) and *node faults* (crash-stop, crash-recovery with state
//! loss, and a network partition window). All fault randomness derives from
//! a dedicated seed-keyed stream and messages are judged in the engine's
//! canonical delivery order, so faulty runs replay bit-for-bit. The
//! [`FaultModel::null`] model draws nothing and changes nothing: under it
//! the engine behaves exactly as the Section 1.1 delivery rule prescribes,
//! digest streams included.

use crate::rng::{stream, NodeRng};
use crate::NodeId;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The set of nodes blocked in a given round.
///
/// Backed by a `BTreeSet` so iteration order is deterministic: block sets
/// feed RNG draws and digests downstream, where arbitrary order would break
/// replay identity.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSet {
    blocked: BTreeSet<NodeId>,
}

impl BlockSet {
    /// No node blocked.
    pub fn none() -> Self {
        Self::default()
    }

    /// Block exactly the given nodes. (Shadows the `FromIterator` method
    /// by design — both behave identically.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Self { blocked: iter.into_iter().collect() }
    }

    /// Is `node` blocked?
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.blocked.contains(&node)
    }

    /// Number of blocked nodes.
    pub fn len(&self) -> usize {
        self.blocked.len()
    }

    /// True if no node is blocked.
    pub fn is_empty(&self) -> bool {
        self.blocked.is_empty()
    }

    /// Add a node to the set.
    pub fn insert(&mut self, node: NodeId) {
        self.blocked.insert(node);
    }

    /// Iterate over blocked nodes in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.blocked.iter().copied()
    }

    /// The fraction of `n` nodes this set blocks.
    pub fn fraction_of(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.blocked.len() as f64 / n as f64
        }
    }

    /// Check the adversary's budget: at most `floor(r * n)` nodes blocked.
    ///
    /// The bound is exact in the integers — an `r`-bounded adversary may
    /// block an `r`-fraction of the nodes, and a fraction of nodes is a
    /// whole number — matching the `floor` budget [`crate::NodeId`]-level
    /// adversaries actually spend.
    pub fn within_bound(&self, r: f64, n: usize) -> bool {
        self.blocked.len() <= (r * n as f64).floor() as usize
    }
}

impl FromIterator<NodeId> for BlockSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        BlockSet::from_iter(iter)
    }
}

/// Decide whether a message sent in round `i` is delivered in round `i + 1`.
///
/// `blocked_at_send` is the block set of round `i`; `blocked_at_recv` the
/// block set of round `i + 1`.
#[inline]
pub fn delivered(
    from: NodeId,
    to: NodeId,
    blocked_at_send: &BlockSet,
    blocked_at_recv: &BlockSet,
) -> bool {
    !blocked_at_send.contains(from)
        && !blocked_at_send.contains(to)
        && !blocked_at_recv.contains(to)
}

// ---------------------------------------------------------------------------
// Generalized fault model (beyond the paper's Section 1.1)
// ---------------------------------------------------------------------------

/// Probabilistic link faults applied to every message that survives the
/// Section 1.1 delivery rule and the node-fault checks.
///
/// Fates are mutually exclusive and judged in priority order
/// drop > duplicate > delay, with exactly one uniform draw per configured
/// fate so the draw sequence is a pure function of the delivery order.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice in the same round.
    pub dup_prob: f64,
    /// Probability a message is held back for extra rounds.
    pub delay_prob: f64,
    /// Maximum extra delay in rounds; actual delays are uniform in
    /// `1..=max_delay`. Ignored when `delay_prob` is zero.
    pub max_delay: u64,
}

impl LinkFaults {
    /// A perfectly reliable link.
    pub const NONE: Self = Self { drop_prob: 0.0, dup_prob: 0.0, delay_prob: 0.0, max_delay: 0 };

    /// True if this configuration can never alter a delivery.
    pub fn is_null(&self) -> bool {
        self.drop_prob <= 0.0 && self.dup_prob <= 0.0 && self.delay_prob <= 0.0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self::NONE
    }
}

/// A scheduled node fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeFault {
    /// The node halts permanently at the start of round `at`.
    CrashStop { at: u64 },
    /// The node halts at round `at` and comes back `down_for` rounds later
    /// with total state loss: the engine clears its inbox, re-keys its RNG
    /// stream and calls [`crate::Protocol::on_crash_recover`].
    CrashRecover { at: u64, down_for: u64 },
}

impl NodeFault {
    /// Is a node with this fault down (neither sending nor receiving nor
    /// computing) in `round`?
    pub fn down_at(&self, round: u64) -> bool {
        match *self {
            NodeFault::CrashStop { at } => round >= at,
            NodeFault::CrashRecover { at, down_for } => round >= at && round < at + down_for,
        }
    }

    /// The round in which the node comes back, if it ever does.
    pub fn recovery_round(&self) -> Option<u64> {
        match *self {
            NodeFault::CrashStop { .. } => None,
            NodeFault::CrashRecover { at, down_for } => Some(at + down_for),
        }
    }
}

/// A network partition: during rounds `from..until`, no message crosses
/// between `side` and its complement. Traffic within either side is
/// unaffected.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// One side of the cut (the complement is everything else).
    pub side: BTreeSet<NodeId>,
    /// First partitioned round (inclusive).
    pub from: u64,
    /// First healed round (exclusive end of the window).
    pub until: u64,
}

impl Partition {
    /// Does the partition cut the edge `a -- b` in `round`?
    pub fn cuts(&self, a: NodeId, b: NodeId, round: u64) -> bool {
        round >= self.from && round < self.until && self.side.contains(&a) != self.side.contains(&b)
    }
}

/// The fate of one message under [`LinkFaults`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFate {
    /// Delivered normally.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered twice this round.
    Duplicate,
    /// Held back; delivered the given number of rounds late.
    Delay(u64),
}

/// A composed fault model interposed on the engine's delivery path.
///
/// The model sits *behind* the Section 1.1 blocking rule: a message first
/// has to survive the [`BlockSet`] check, then the node-fault and partition
/// checks, and only then is its link fate drawn. All draws come from one
/// ChaCha stream keyed by `(seed, FAULT_STREAM, FAULT_PURPOSE)` and happen
/// in the engine's canonical delivery order, so a faulty run replays
/// identically from its seed. [`FaultModel::null`] (the engine default)
/// short-circuits every check and draws nothing.
#[derive(Clone, Debug)]
pub struct FaultModel {
    link: LinkFaults,
    node_faults: BTreeMap<NodeId, NodeFault>,
    partition: Option<Partition>,
    rng: NodeRng,
}

/// Pseudo-node id keying the fault model's RNG stream (distinct from any
/// real node and from the fuzzer's plan stream).
const FAULT_STREAM: u64 = u64::MAX - 2;
/// Purpose tag of the fault model's RNG stream.
const FAULT_PURPOSE: u64 = 0xFA_017;

impl FaultModel {
    /// The identity model: no link faults, no node faults, no partition.
    pub fn null() -> Self {
        Self::new(0)
    }

    /// An empty model drawing its link-fault randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            link: LinkFaults::NONE,
            node_faults: BTreeMap::new(),
            partition: None,
            rng: stream(seed, FAULT_STREAM, FAULT_PURPOSE),
        }
    }

    /// Set the link-fault configuration.
    pub fn with_link(mut self, link: LinkFaults) -> Self {
        self.link = link;
        self
    }

    /// Schedule a node fault. At most one fault per node; a second call for
    /// the same node replaces the first.
    pub fn with_node_fault(mut self, node: NodeId, fault: NodeFault) -> Self {
        self.node_faults.insert(node, fault);
        self
    }

    /// Install a partition window.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// True if the model can never alter a run: the engine skips all fault
    /// processing, preserving the exact Section 1.1 semantics (and digest
    /// streams) of a model-free run.
    pub fn is_null(&self) -> bool {
        self.link.is_null() && self.node_faults.is_empty() && self.partition.is_none()
    }

    /// The link-fault configuration.
    pub fn link(&self) -> &LinkFaults {
        &self.link
    }

    /// The scheduled node faults.
    pub fn node_faults(&self) -> &BTreeMap<NodeId, NodeFault> {
        &self.node_faults
    }

    /// Is `node` down (crashed and not yet recovered) in `round`?
    pub fn down(&self, node: NodeId, round: u64) -> bool {
        self.node_faults.get(&node).is_some_and(|f| f.down_at(round))
    }

    /// All nodes down in `round`, as a block-set the engine composes with
    /// the adversary's.
    pub fn down_set(&self, round: u64) -> BlockSet {
        self.node_faults.iter().filter(|(_, f)| f.down_at(round)).map(|(&v, _)| v).collect()
    }

    /// Nodes whose crash-recovery completes at the start of `round`, in id
    /// order.
    pub fn recovering(&self, round: u64) -> Vec<NodeId> {
        self.node_faults
            .iter()
            .filter(|(_, f)| f.recovery_round() == Some(round))
            .map(|(&v, _)| v)
            .collect()
    }

    /// Does the partition cut `from -> to` in `round`?
    pub fn cut(&self, from: NodeId, to: NodeId, round: u64) -> bool {
        self.partition.as_ref().is_some_and(|p| p.cuts(from, to, round))
    }

    /// Judge the link fate of one message that passed all other checks.
    /// Draws exactly one uniform per configured fate (in drop, duplicate,
    /// delay order) plus one for the delay length, so the stream position
    /// is a pure function of the judged-message sequence.
    pub fn link_fate(&mut self) -> LinkFate {
        let link = self.link;
        judge_link_fate(&link, &mut self.rng)
    }

    /// [`Self::link_fate`] drawing from a caller-supplied stream instead of
    /// the model's own. Relaxed-order backends (simnet-xl fast mode) use
    /// per-shard streams so shards can judge fates concurrently; the draw
    /// discipline (one uniform per configured fate, in drop > duplicate >
    /// delay order) is identical, so per-stream fate sequences stay a pure
    /// function of that stream's judged-message order.
    pub fn link_fate_with(&self, rng: &mut NodeRng) -> LinkFate {
        judge_link_fate(&self.link, rng)
    }
}

/// Shared fate-judging core of [`FaultModel::link_fate`] /
/// [`FaultModel::link_fate_with`].
fn judge_link_fate(link: &LinkFaults, rng: &mut NodeRng) -> LinkFate {
    if link.is_null() {
        return LinkFate::Deliver;
    }
    if link.drop_prob > 0.0 && rng.random::<f64>() < link.drop_prob {
        return LinkFate::Drop;
    }
    if link.dup_prob > 0.0 && rng.random::<f64>() < link.dup_prob {
        return LinkFate::Duplicate;
    }
    if link.delay_prob > 0.0 && link.max_delay > 0 && rng.random::<f64>() < link.delay_prob {
        return LinkFate::Delay(rng.random_range(1..=link.max_delay));
    }
    LinkFate::Deliver
}

// ---------------------------------------------------------------------------
// Correlated catastrophic fault events (beyond the composite fault model)
// ---------------------------------------------------------------------------

/// Which correlated slice of the membership a [`Burst`] crashes.
///
/// Correlation is the point: independent per-node crash hazards (the
/// [`FaultModel`] / composite-schedule regime) spread damage evenly, which
/// group-structured overlays absorb well. Real catastrophes — a rack, an
/// AS, a cloud zone — take out *related* nodes at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstTarget {
    /// A contiguous run of the sorted member list starting at a seed-drawn
    /// offset (wrapping). Under random group assignment this scatters
    /// across groups — the benign flavour of a correlated slice.
    Contiguous,
    /// Whole groups, chosen by breadth-first walk over the group adjacency
    /// from a seed-drawn pivot, *excluding the pivot itself*: the burst
    /// eats the pivot's neighborhood outward until the victim budget is
    /// spent. Once the whole distance-1 shell is covered the pivot is
    /// structurally isolated — the worst case a group overlay admits.
    Groups,
}

/// One mass-crash event: at round `at`, a `frac`-fraction of the current
/// members — chosen as one correlated slice per `target` — crash-stops,
/// and every victim attempts to come back within the following
/// `storm_window` rounds (the flash-crowd rejoin storm).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Round the burst fires (start of round).
    pub at: u64,
    /// Fraction of the current membership crashed, in `[0, 1]`.
    pub frac: f64,
    /// Which correlated slice is taken.
    pub target: BurstTarget,
    /// Width of the rejoin storm: every victim draws a return round
    /// uniformly in `at + 1 ..= at + storm_window` (`0` is treated as 1 —
    /// all victims return together the next round).
    pub storm_window: u64,
}

/// A finite-duration partition with an explicit heal round: from round
/// `at` up to (excluding) `heal_at`, a seed-drawn `side_frac` minority of
/// the membership is cut off; at `heal_at` the two halves must be
/// reconciled (the caller decides how — that is the recovery layer's job).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimedPartition {
    /// First partitioned round (inclusive).
    pub at: u64,
    /// First healed round (exclusive end of the window). Must be `> at`.
    pub heal_at: u64,
    /// Fraction of the membership on the minority side, in `[0, 1]`.
    pub side_frac: f64,
}

/// Pseudo-node id keying the burst schedule's RNG stream (distinct from
/// the fault model's, the composite schedule's and the fuzz plan's).
const BURST_STREAM: u64 = u64::MAX - 4;
/// Purpose tag of the burst schedule's RNG stream.
const BURST_PURPOSE: u64 = 0xB0_257;

/// A seed-derived schedule of correlated catastrophic events: mass-crash
/// [`Burst`]s with flash-crowd rejoin storms, and [`TimedPartition`]s with
/// an explicit heal round.
///
/// All randomness (victim slices, per-victim storm offsets, partition
/// sides) comes from one ChaCha stream keyed by
/// `(seed, BURST_STREAM, BURST_PURPOSE)` and is drawn in a canonical
/// order — events in schedule order, victims in sorted-member order — so a
/// schedule replays bit-identically from its seed and is independent of
/// the simulation backend or shard count. [`BurstSchedule::null`] draws
/// nothing and schedules nothing.
#[derive(Clone, Debug)]
pub struct BurstSchedule {
    bursts: Vec<Burst>,
    partitions: Vec<TimedPartition>,
    rng: NodeRng,
}

impl BurstSchedule {
    /// The empty schedule: no bursts, no partitions, no draws.
    pub fn null() -> Self {
        Self::new(0)
    }

    /// An empty schedule drawing its randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            bursts: Vec::new(),
            partitions: Vec::new(),
            rng: stream(seed, BURST_STREAM, BURST_PURPOSE),
        }
    }

    /// Add a burst event (builder-style). Panics on a fraction outside
    /// `[0, 1]` — a silent clamp would run a different catastrophe than
    /// the one asked for.
    pub fn with_burst(mut self, burst: Burst) -> Self {
        assert!(
            (0.0..=1.0).contains(&burst.frac),
            "burst fraction must be in [0, 1], got {}",
            burst.frac
        );
        self.bursts.push(burst);
        self
    }

    /// Add a timed partition (builder-style). Panics on an empty window or
    /// a side fraction outside `[0, 1]`.
    pub fn with_partition(mut self, p: TimedPartition) -> Self {
        assert!(
            p.heal_at > p.at,
            "partition must heal after it starts ({} <= {})",
            p.heal_at,
            p.at
        );
        assert!(
            (0.0..=1.0).contains(&p.side_frac),
            "partition side fraction must be in [0, 1], got {}",
            p.side_frac
        );
        self.partitions.push(p);
        self
    }

    /// True when the schedule can never fire: no events, no draws, and a
    /// run under it is bit-identical to one without it.
    pub fn is_null(&self) -> bool {
        self.bursts.is_empty() && self.partitions.is_empty()
    }

    /// The scheduled bursts, in insertion order.
    pub fn bursts(&self) -> &[Burst] {
        &self.bursts
    }

    /// The scheduled partitions, in insertion order.
    pub fn partitions(&self) -> &[TimedPartition] {
        &self.partitions
    }

    /// Indices of bursts firing at `round` (insertion order).
    pub fn bursts_due(&self, round: u64) -> Vec<usize> {
        self.bursts.iter().enumerate().filter(|(_, b)| b.at == round).map(|(i, _)| i).collect()
    }

    /// Indices of partitions starting at `round` (insertion order).
    pub fn partitions_due(&self, round: u64) -> Vec<usize> {
        self.partitions.iter().enumerate().filter(|(_, p)| p.at == round).map(|(i, _)| i).collect()
    }

    /// Draw burst `idx`'s victims and their storm return rounds.
    ///
    /// `members` must be the current membership in ascending id order;
    /// `groups` / `group_edges` the group composition and group adjacency
    /// (as in a topology snapshot) — only consulted for
    /// [`BurstTarget::Groups`], and may be empty otherwise. Victims are
    /// returned in ascending id order, each with a return round drawn
    /// uniformly in `at + 1 ..= at + storm_window`; draws happen in that
    /// sorted order, so the stream position is a pure function of the
    /// schedule's event sequence.
    pub fn draw_burst(
        &mut self,
        idx: usize,
        members: &[NodeId],
        groups: &[Vec<NodeId>],
        group_edges: &[(u32, u32)],
    ) -> Vec<(NodeId, u64)> {
        let burst = self.bursts[idx];
        let budget = (burst.frac * members.len() as f64).floor() as usize;
        if budget == 0 || members.is_empty() {
            return Vec::new();
        }
        let victims: BTreeSet<NodeId> = match burst.target {
            BurstTarget::Contiguous => {
                let start = self.rng.random_range(0..members.len());
                (0..budget).map(|k| members[(start + k) % members.len()]).collect()
            }
            BurstTarget::Groups => self.group_shell_victims(budget, members, groups, group_edges),
        };
        let window = burst.storm_window.max(1);
        victims.into_iter().map(|v| (v, burst.at + 1 + self.rng.random_range(0..window))).collect()
    }

    /// Victims for a [`BurstTarget::Groups`] burst: whole groups in BFS
    /// order from a drawn pivot, pivot exempt, until the budget is spent
    /// (the last group may overshoot — whole groups die, that is the
    /// correlation). Falls back to a contiguous slice when no group
    /// structure was supplied.
    fn group_shell_victims(
        &mut self,
        budget: usize,
        members: &[NodeId],
        groups: &[Vec<NodeId>],
        group_edges: &[(u32, u32)],
    ) -> BTreeSet<NodeId> {
        let occupied: Vec<usize> = (0..groups.len()).filter(|&g| !groups[g].is_empty()).collect();
        if occupied.is_empty() {
            let start = self.rng.random_range(0..members.len());
            return (0..budget).map(|k| members[(start + k) % members.len()]).collect();
        }
        let pivot = occupied[self.rng.random_range(0..occupied.len())];
        let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for &(a, b) in group_edges {
            adj.entry(a as usize).or_default().insert(b as usize);
            adj.entry(b as usize).or_default().insert(a as usize);
        }
        // Deterministic BFS from the pivot (neighbors in ascending group
        // index); the pivot itself is never a victim.
        let mut seen: BTreeSet<usize> = [pivot].into();
        let mut frontier: Vec<usize> = vec![pivot];
        let mut victims: BTreeSet<NodeId> = BTreeSet::new();
        while victims.len() < budget && !frontier.is_empty() {
            let mut next = Vec::new();
            for &g in &frontier {
                for &h in adj.get(&g).into_iter().flatten() {
                    if seen.insert(h) {
                        next.push(h);
                    }
                }
            }
            next.sort_unstable();
            for g in next.iter().copied() {
                if victims.len() >= budget {
                    break;
                }
                victims.extend(groups[g].iter().copied());
            }
            frontier = next;
        }
        victims
    }

    /// Draw partition `idx`'s minority side: a contiguous run of the
    /// sorted membership starting at a drawn offset (wrapping). Returned
    /// in ascending id order.
    pub fn draw_partition_side(&mut self, idx: usize, members: &[NodeId]) -> BTreeSet<NodeId> {
        let p = self.partitions[idx];
        let count = (p.side_frac * members.len() as f64).floor() as usize;
        if count == 0 || members.is_empty() {
            return BTreeSet::new();
        }
        let start = self.rng.random_range(0..members.len());
        (0..count).map(|k| members[(start + k) % members.len()]).collect()
    }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

use crate::checkpoint::{
    f64_bits, field, get_f64_bits, get_str, get_u64, missing, Checkpoint, CkptResult,
};
use serde_json::Value;

impl Checkpoint for BlockSet {
    fn save(&self) -> Value {
        Value::Array(self.blocked.iter().map(|v| Value::from(v.raw())).collect())
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let ids = v.as_array().ok_or_else(|| missing("block set"))?;
        let blocked = ids
            .iter()
            .map(|x| x.as_u64().map(NodeId).ok_or_else(|| missing("block set id")))
            .collect::<CkptResult<BTreeSet<NodeId>>>()?;
        Ok(Self { blocked })
    }
}

impl Checkpoint for LinkFaults {
    fn save(&self) -> Value {
        serde_json::json!({
            "drop_bits": f64_bits(self.drop_prob),
            "dup_bits": f64_bits(self.dup_prob),
            "delay_bits": f64_bits(self.delay_prob),
            "max_delay": self.max_delay,
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(Self {
            drop_prob: get_f64_bits(v, "drop_bits")?,
            dup_prob: get_f64_bits(v, "dup_bits")?,
            delay_prob: get_f64_bits(v, "delay_bits")?,
            max_delay: get_u64(v, "max_delay")?,
        })
    }
}

impl Checkpoint for NodeFault {
    fn save(&self) -> Value {
        match *self {
            NodeFault::CrashStop { at } => serde_json::json!({ "kind": "stop", "at": at }),
            NodeFault::CrashRecover { at, down_for } => {
                serde_json::json!({ "kind": "recover", "at": at, "down_for": down_for })
            }
        }
    }

    fn load(v: &Value) -> CkptResult<Self> {
        match get_str(v, "kind")? {
            "stop" => Ok(NodeFault::CrashStop { at: get_u64(v, "at")? }),
            "recover" => Ok(NodeFault::CrashRecover {
                at: get_u64(v, "at")?,
                down_for: get_u64(v, "down_for")?,
            }),
            other => Err(crate::checkpoint::CkptError::Corrupt(format!(
                "unknown node-fault kind `{other}`"
            ))),
        }
    }
}

impl Checkpoint for Partition {
    fn save(&self) -> Value {
        serde_json::json!({
            "side": Value::Array(self.side.iter().map(|v| Value::from(v.raw())).collect()),
            "from": self.from,
            "until": self.until,
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let side = crate::checkpoint::get_array(v, "side")?
            .iter()
            .map(|x| x.as_u64().map(NodeId).ok_or_else(|| missing("side id")))
            .collect::<CkptResult<BTreeSet<NodeId>>>()?;
        Ok(Self { side, from: get_u64(v, "from")?, until: get_u64(v, "until")? })
    }
}

impl Checkpoint for FaultModel {
    fn save(&self) -> Value {
        serde_json::json!({
            "link": self.link.save(),
            "node_faults": Value::Array(
                self.node_faults
                    .iter()
                    .map(|(&v, f)| serde_json::json!({ "node": v.raw(), "fault": f.save() }))
                    .collect(),
            ),
            "partition": match &self.partition {
                Some(p) => p.save(),
                None => Value::Null,
            },
            "rng": self.rng.save(),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let mut node_faults = BTreeMap::new();
        for entry in crate::checkpoint::get_array(v, "node_faults")? {
            let node = NodeId(get_u64(entry, "node")?);
            node_faults.insert(node, NodeFault::load(field(entry, "fault")?)?);
        }
        let partition = match field(v, "partition")? {
            Value::Null => None,
            p => Some(Partition::load(p)?),
        };
        Ok(Self {
            link: LinkFaults::load(field(v, "link")?)?,
            node_faults,
            partition,
            rng: NodeRng::load(field(v, "rng")?)?,
        })
    }
}

impl Checkpoint for Burst {
    fn save(&self) -> Value {
        serde_json::json!({
            "at": self.at,
            "frac_bits": f64_bits(self.frac),
            "target": match self.target {
                BurstTarget::Contiguous => "contiguous",
                BurstTarget::Groups => "groups",
            },
            "storm_window": self.storm_window,
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let target = match get_str(v, "target")? {
            "contiguous" => BurstTarget::Contiguous,
            "groups" => BurstTarget::Groups,
            other => {
                return Err(crate::checkpoint::CkptError::Corrupt(format!(
                    "unknown burst target `{other}`"
                )))
            }
        };
        Ok(Self {
            at: get_u64(v, "at")?,
            frac: get_f64_bits(v, "frac_bits")?,
            target,
            storm_window: get_u64(v, "storm_window")?,
        })
    }
}

impl Checkpoint for TimedPartition {
    fn save(&self) -> Value {
        serde_json::json!({
            "at": self.at,
            "heal_at": self.heal_at,
            "side_frac_bits": f64_bits(self.side_frac),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(Self {
            at: get_u64(v, "at")?,
            heal_at: get_u64(v, "heal_at")?,
            side_frac: get_f64_bits(v, "side_frac_bits")?,
        })
    }
}

impl Checkpoint for BurstSchedule {
    fn save(&self) -> Value {
        serde_json::json!({
            "bursts": Value::Array(self.bursts.iter().map(|b| b.save()).collect()),
            "partitions": Value::Array(self.partitions.iter().map(|p| p.save()).collect()),
            "rng": self.rng.save(),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(Self {
            bursts: crate::checkpoint::get_array(v, "bursts")?
                .iter()
                .map(Burst::load)
                .collect::<CkptResult<Vec<_>>>()?,
            partitions: crate::checkpoint::get_array(v, "partitions")?
                .iter()
                .map(TimedPartition::load)
                .collect::<CkptResult<Vec<_>>>()?,
            rng: NodeRng::load(field(v, "rng")?)?,
        })
    }
}

impl<M: Checkpoint> Checkpoint for crate::message::Envelope<M> {
    fn save(&self) -> Value {
        serde_json::json!({
            "from": self.from.raw(),
            "to": self.to.raw(),
            "sent_round": self.sent_round,
            "msg": self.msg.save(),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(Self {
            from: NodeId(get_u64(v, "from")?),
            to: NodeId(get_u64(v, "to")?),
            sent_round: get_u64(v, "sent_round")?,
            msg: M::load(field(v, "msg")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(ids: &[u64]) -> BlockSet {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn delivery_requires_sender_unblocked_at_send() {
        let send = bs(&[1]);
        let recv = bs(&[]);
        assert!(!delivered(NodeId(1), NodeId(2), &send, &recv));
        assert!(delivered(NodeId(3), NodeId(2), &send, &recv));
    }

    #[test]
    fn delivery_requires_receiver_unblocked_in_both_rounds() {
        // Receiver blocked at the send round: dropped.
        assert!(!delivered(NodeId(1), NodeId(2), &bs(&[2]), &bs(&[])));
        // Receiver blocked at the receive round: dropped.
        assert!(!delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[2])));
        // Unblocked in both: delivered.
        assert!(delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[])));
    }

    #[test]
    fn sender_blocked_only_at_receive_round_is_fine() {
        // Only the *send-round* status of the sender matters.
        assert!(delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[1])));
    }

    #[test]
    fn delivery_rule_full_truth_table() {
        // Section 1.1: a message v -> w sent in round i is delivered iff
        // v is non-blocked at i, and w is non-blocked at i AND i+1. The
        // sender's status at i+1 is irrelevant. Enumerate all 8
        // combinations of the three relevant bits.
        let (v, w) = (NodeId(1), NodeId(2));
        for v_send in [false, true] {
            for w_send in [false, true] {
                for w_recv in [false, true] {
                    let mut send = BlockSet::none();
                    let mut recv = BlockSet::none();
                    if v_send {
                        send.insert(v);
                    }
                    if w_send {
                        send.insert(w);
                    }
                    if w_recv {
                        recv.insert(w);
                    }
                    let expect = !v_send && !w_send && !w_recv;
                    assert_eq!(
                        delivered(v, w, &send, &recv),
                        expect,
                        "v@send={v_send} w@send={w_send} w@recv={w_recv}"
                    );
                    // Blocking the sender at the receive round must never
                    // change the outcome.
                    recv.insert(v);
                    assert_eq!(
                        delivered(v, w, &send, &recv),
                        expect,
                        "sender status at i+1 must be irrelevant"
                    );
                }
            }
        }
    }

    #[test]
    fn self_send_follows_the_same_rule() {
        // v -> v: blocked in either round kills it (v is both endpoints).
        let v = NodeId(5);
        assert!(delivered(v, v, &bs(&[]), &bs(&[])));
        assert!(!delivered(v, v, &bs(&[5]), &bs(&[])));
        assert!(!delivered(v, v, &bs(&[]), &bs(&[5])));
    }

    #[test]
    fn delivery_is_per_edge_not_global() {
        // A block set only affects edges touching its members.
        let send = bs(&[7]);
        let recv = bs(&[8]);
        assert!(delivered(NodeId(1), NodeId(2), &send, &recv));
        assert!(!delivered(NodeId(7), NodeId(2), &send, &recv));
        assert!(!delivered(NodeId(1), NodeId(8), &send, &recv));
    }

    #[test]
    fn bound_check() {
        let set = bs(&[1, 2, 3]);
        assert!(set.within_bound(0.5, 6));
        assert!(!set.within_bound(0.4, 6));
        assert_eq!(set.fraction_of(6), 0.5);
        assert_eq!(BlockSet::none().fraction_of(0), 0.0);
    }

    #[test]
    fn bound_is_exact_at_the_boundary() {
        // Exactly floor(r * n) blocked nodes is legal; one more is not.
        // r = 0.3, n = 10: budget is exactly 3.
        assert!(bs(&[1, 2, 3]).within_bound(0.3, 10));
        assert!(!bs(&[1, 2, 3, 4]).within_bound(0.3, 10));
        // r = 0.5, n = 7: budget is floor(3.5) = 3.
        assert!(bs(&[1, 2, 3]).within_bound(0.5, 7));
        assert!(!bs(&[1, 2, 3, 4]).within_bound(0.5, 7));
        // A zero bound admits only the empty set.
        assert!(BlockSet::none().within_bound(0.0, 10));
        assert!(!bs(&[1]).within_bound(0.0, 10));
        // Float grime like 0.1 * 3 = 0.30000000000000004 must not leak an
        // extra unit of budget.
        assert!(!bs(&[1]).within_bound(0.1, 3));
    }

    #[test]
    fn iter_is_sorted() {
        let set = bs(&[9, 2, 7, 4]);
        let order: Vec<u64> = set.iter().map(|v| v.raw()).collect();
        assert_eq!(order, vec![2, 4, 7, 9]);
    }

    #[test]
    fn insert_and_iter() {
        let mut set = BlockSet::none();
        assert!(set.is_empty());
        set.insert(NodeId(9));
        assert!(set.contains(NodeId(9)));
        assert_eq!(set.iter().count(), 1);
    }

    // -- FaultModel ---------------------------------------------------------

    #[test]
    fn null_model_is_null_and_draws_nothing() {
        let mut m = FaultModel::null();
        assert!(m.is_null());
        let before = m.rng.get_word_pos();
        for _ in 0..10 {
            assert_eq!(m.link_fate(), LinkFate::Deliver);
        }
        assert_eq!(m.rng.get_word_pos(), before, "null model must not consume randomness");
        assert!(m.down_set(5).is_empty());
        assert!(!m.cut(NodeId(1), NodeId(2), 5));
    }

    #[test]
    fn crash_stop_is_forever_crash_recover_is_a_window() {
        let stop = NodeFault::CrashStop { at: 3 };
        assert!(!stop.down_at(2));
        assert!(stop.down_at(3));
        assert!(stop.down_at(1_000_000));
        assert_eq!(stop.recovery_round(), None);

        let rec = NodeFault::CrashRecover { at: 3, down_for: 4 };
        assert!(!rec.down_at(2));
        assert!(rec.down_at(3));
        assert!(rec.down_at(6));
        assert!(!rec.down_at(7));
        assert_eq!(rec.recovery_round(), Some(7));
    }

    #[test]
    fn down_set_and_recovering_follow_the_schedule() {
        let m = FaultModel::new(1)
            .with_node_fault(NodeId(1), NodeFault::CrashStop { at: 2 })
            .with_node_fault(NodeId(2), NodeFault::CrashRecover { at: 1, down_for: 3 });
        assert!(!m.is_null());
        assert_eq!(m.down_set(0).len(), 0);
        assert_eq!(m.down_set(1).len(), 1);
        assert_eq!(m.down_set(2).len(), 2);
        assert_eq!(m.down_set(4).len(), 1, "node 2 recovered at round 4");
        assert_eq!(m.recovering(4), vec![NodeId(2)]);
        assert!(m.recovering(3).is_empty());
    }

    #[test]
    fn partition_cuts_only_across_and_only_in_window() {
        let p = Partition { side: [NodeId(1), NodeId(2)].into_iter().collect(), from: 5, until: 8 };
        let m = FaultModel::new(2).with_partition(p);
        // Across the cut, inside the window.
        assert!(m.cut(NodeId(1), NodeId(3), 5));
        assert!(m.cut(NodeId(3), NodeId(1), 7));
        // Within a side.
        assert!(!m.cut(NodeId(1), NodeId(2), 6));
        assert!(!m.cut(NodeId(3), NodeId(4), 6));
        // Outside the window.
        assert!(!m.cut(NodeId(1), NodeId(3), 4));
        assert!(!m.cut(NodeId(1), NodeId(3), 8));
    }

    #[test]
    fn link_fates_are_deterministic_in_the_seed() {
        let fates = |seed: u64| {
            let mut m = FaultModel::new(seed).with_link(LinkFaults {
                drop_prob: 0.3,
                dup_prob: 0.2,
                delay_prob: 0.2,
                max_delay: 4,
            });
            (0..64).map(|_| m.link_fate()).collect::<Vec<_>>()
        };
        assert_eq!(fates(7), fates(7));
        assert_ne!(fates(7), fates(8));
    }

    #[test]
    fn extreme_probabilities_force_fates() {
        let mut all_drop = FaultModel::new(1).with_link(LinkFaults {
            drop_prob: 1.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
        });
        let mut all_dup = FaultModel::new(1).with_link(LinkFaults {
            drop_prob: 0.0,
            dup_prob: 1.0,
            delay_prob: 0.0,
            max_delay: 0,
        });
        let mut all_delay = FaultModel::new(1).with_link(LinkFaults {
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 1.0,
            max_delay: 3,
        });
        for _ in 0..16 {
            assert_eq!(all_drop.link_fate(), LinkFate::Drop);
            assert_eq!(all_dup.link_fate(), LinkFate::Duplicate);
            match all_delay.link_fate() {
                LinkFate::Delay(k) => assert!((1..=3).contains(&k)),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    // -- burst schedules --

    type BurstFixture = (Vec<NodeId>, Vec<Vec<NodeId>>, Vec<(u32, u32)>);

    fn burst_fixture() -> BurstFixture {
        // 8 groups of 4 on a 3-cube: group g holds nodes 4g..4g+3, group
        // edges differ in one bit.
        let members: Vec<NodeId> = (0..32).map(NodeId).collect();
        let groups: Vec<Vec<NodeId>> =
            (0..8u64).map(|g| (4 * g..4 * g + 4).map(NodeId).collect()).collect();
        let mut edges = Vec::new();
        for g in 0..8u32 {
            for bit in 0..3 {
                let h = g ^ (1 << bit);
                if g < h {
                    edges.push((g, h));
                }
            }
        }
        (members, groups, edges)
    }

    #[test]
    fn burst_schedule_replays_bit_identically() {
        let draw = |seed: u64| {
            let mut s = BurstSchedule::new(seed)
                .with_burst(Burst {
                    at: 5,
                    frac: 0.25,
                    target: BurstTarget::Groups,
                    storm_window: 4,
                })
                .with_burst(Burst {
                    at: 9,
                    frac: 0.25,
                    target: BurstTarget::Contiguous,
                    storm_window: 1,
                })
                .with_partition(TimedPartition { at: 12, heal_at: 20, side_frac: 0.3 });
            let (members, groups, edges) = burst_fixture();
            let a = s.draw_burst(0, &members, &groups, &edges);
            let b = s.draw_burst(1, &members, &groups, &edges);
            let side: Vec<NodeId> = s.draw_partition_side(0, &members).into_iter().collect();
            (a, b, side)
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn group_burst_kills_whole_groups_and_spares_the_pivot() {
        let (members, groups, edges) = burst_fixture();
        let mut s = BurstSchedule::new(7).with_burst(Burst {
            at: 3,
            frac: 0.5,
            target: BurstTarget::Groups,
            storm_window: 2,
        });
        let victims = s.draw_burst(0, &members, &groups, &edges);
        assert!(victims.len() >= 16, "budget floor(0.5*32)=16, got {}", victims.len());
        let victim_set: BTreeSet<NodeId> = victims.iter().map(|&(v, _)| v).collect();
        // Victims are unions of whole groups, and at least one group (the
        // pivot) is fully spared.
        let mut spared = 0;
        for g in &groups {
            let hit = g.iter().filter(|v| victim_set.contains(v)).count();
            assert!(hit == 0 || hit == g.len(), "group partially hit: {hit}/{}", g.len());
            if hit == 0 {
                spared += 1;
            }
        }
        assert!(spared >= 1);
        // Storm returns land strictly inside (at, at + window].
        for &(_, back) in &victims {
            assert!((4..=5).contains(&back), "return round {back} outside storm window");
        }
    }

    #[test]
    fn contiguous_burst_takes_a_wrapped_run() {
        let (members, groups, edges) = burst_fixture();
        let mut s = BurstSchedule::new(11).with_burst(Burst {
            at: 2,
            frac: 0.25,
            target: BurstTarget::Contiguous,
            storm_window: 0,
        });
        let victims = s.draw_burst(0, &members, &groups, &edges);
        assert_eq!(victims.len(), 8);
        // window 0 behaves as 1: everyone returns the next round.
        assert!(victims.iter().all(|&(_, back)| back == 3));
        // The victim ids form one contiguous run modulo n.
        let ids: Vec<u64> = victims.iter().map(|&(v, _)| v.raw()).collect();
        let start = *ids.iter().find(|&&i| !ids.contains(&((i + 32 - 1) % 32))).unwrap_or(&ids[0]);
        let expect: BTreeSet<u64> = (0..8).map(|k| (start + k) % 32).collect();
        assert_eq!(ids.into_iter().collect::<BTreeSet<_>>(), expect);
    }

    #[test]
    fn partition_side_respects_fraction() {
        let (members, _, _) = burst_fixture();
        let mut s = BurstSchedule::new(3).with_partition(TimedPartition {
            at: 1,
            heal_at: 4,
            side_frac: 0.3,
        });
        let side = s.draw_partition_side(0, &members);
        assert_eq!(side.len(), 9); // floor(0.3 * 32)
        assert_eq!(s.partitions_due(1), vec![0]);
        assert!(s.partitions_due(2).is_empty());
    }

    #[test]
    fn null_schedule_is_null() {
        let s = BurstSchedule::null();
        assert!(s.is_null());
        assert!(s.bursts_due(0).is_empty() && s.partitions_due(0).is_empty());
        assert!(!BurstSchedule::new(1)
            .with_burst(Burst {
                at: 0,
                frac: 0.1,
                target: BurstTarget::Contiguous,
                storm_window: 1
            })
            .is_null());
    }

    #[test]
    fn burst_schedule_checkpoint_roundtrip_preserves_draws() {
        let mk = || {
            BurstSchedule::new(99)
                .with_burst(Burst {
                    at: 4,
                    frac: 0.4,
                    target: BurstTarget::Groups,
                    storm_window: 3,
                })
                .with_partition(TimedPartition { at: 8, heal_at: 12, side_frac: 0.2 })
        };
        let (members, groups, edges) = burst_fixture();
        let mut warm = mk();
        // Advance the stream, snapshot mid-flight, then compare the next
        // draws of the original vs the restored copy.
        let _ = warm.draw_burst(0, &members, &groups, &edges);
        let mut restored = BurstSchedule::load(&warm.save()).expect("roundtrip");
        assert_eq!(
            warm.draw_partition_side(0, &members),
            restored.draw_partition_side(0, &members)
        );
    }

    #[test]
    #[should_panic(expected = "burst fraction")]
    fn burst_fraction_out_of_range_panics() {
        let _ = BurstSchedule::new(0).with_burst(Burst {
            at: 0,
            frac: 1.5,
            target: BurstTarget::Contiguous,
            storm_window: 1,
        });
    }

    #[test]
    #[should_panic(expected = "heal after")]
    fn partition_healing_before_start_panics() {
        let _ = BurstSchedule::new(0).with_partition(TimedPartition {
            at: 5,
            heal_at: 5,
            side_frac: 0.1,
        });
    }
}
