//! DoS blocking semantics.
//!
//! An `r`-bounded adversary may block any `r`-fraction of the current nodes
//! in a round. A blocked node can neither send nor receive in that round.
//! A message sent from `v` to `w` in round `i` is received and processed by
//! `w` only if
//!
//! * `v` is non-blocked in round `i`, and
//! * `w` is non-blocked in round `i` **and** round `i + 1`.
//!
//! If so, `w` is called *available* in round `i + 1`. The engine consults a
//! [`BlockSet`] per round and applies exactly this rule.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The set of nodes blocked in a given round.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSet {
    blocked: HashSet<NodeId>,
}

impl BlockSet {
    /// No node blocked.
    pub fn none() -> Self {
        Self::default()
    }

    /// Block exactly the given nodes. (Shadows the `FromIterator` method
    /// by design — both behave identically.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Self { blocked: iter.into_iter().collect() }
    }

    /// Is `node` blocked?
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.blocked.contains(&node)
    }

    /// Number of blocked nodes.
    pub fn len(&self) -> usize {
        self.blocked.len()
    }

    /// True if no node is blocked.
    pub fn is_empty(&self) -> bool {
        self.blocked.is_empty()
    }

    /// Add a node to the set.
    pub fn insert(&mut self, node: NodeId) {
        self.blocked.insert(node);
    }

    /// Iterate over blocked nodes (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.blocked.iter().copied()
    }

    /// The fraction of `n` nodes this set blocks.
    pub fn fraction_of(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.blocked.len() as f64 / n as f64
        }
    }

    /// Check the adversary's budget: at most `r * n` nodes blocked.
    pub fn within_bound(&self, r: f64, n: usize) -> bool {
        (self.blocked.len() as f64) <= r * n as f64 + 1e-9
    }
}

impl FromIterator<NodeId> for BlockSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        BlockSet::from_iter(iter)
    }
}

/// Decide whether a message sent in round `i` is delivered in round `i + 1`.
///
/// `blocked_at_send` is the block set of round `i`; `blocked_at_recv` the
/// block set of round `i + 1`.
#[inline]
pub fn delivered(
    from: NodeId,
    to: NodeId,
    blocked_at_send: &BlockSet,
    blocked_at_recv: &BlockSet,
) -> bool {
    !blocked_at_send.contains(from)
        && !blocked_at_send.contains(to)
        && !blocked_at_recv.contains(to)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(ids: &[u64]) -> BlockSet {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn delivery_requires_sender_unblocked_at_send() {
        let send = bs(&[1]);
        let recv = bs(&[]);
        assert!(!delivered(NodeId(1), NodeId(2), &send, &recv));
        assert!(delivered(NodeId(3), NodeId(2), &send, &recv));
    }

    #[test]
    fn delivery_requires_receiver_unblocked_in_both_rounds() {
        // Receiver blocked at the send round: dropped.
        assert!(!delivered(NodeId(1), NodeId(2), &bs(&[2]), &bs(&[])));
        // Receiver blocked at the receive round: dropped.
        assert!(!delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[2])));
        // Unblocked in both: delivered.
        assert!(delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[])));
    }

    #[test]
    fn sender_blocked_only_at_receive_round_is_fine() {
        // Only the *send-round* status of the sender matters.
        assert!(delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[1])));
    }

    #[test]
    fn delivery_rule_full_truth_table() {
        // Section 1.1: a message v -> w sent in round i is delivered iff
        // v is non-blocked at i, and w is non-blocked at i AND i+1. The
        // sender's status at i+1 is irrelevant. Enumerate all 8
        // combinations of the three relevant bits.
        let (v, w) = (NodeId(1), NodeId(2));
        for v_send in [false, true] {
            for w_send in [false, true] {
                for w_recv in [false, true] {
                    let mut send = BlockSet::none();
                    let mut recv = BlockSet::none();
                    if v_send {
                        send.insert(v);
                    }
                    if w_send {
                        send.insert(w);
                    }
                    if w_recv {
                        recv.insert(w);
                    }
                    let expect = !v_send && !w_send && !w_recv;
                    assert_eq!(
                        delivered(v, w, &send, &recv),
                        expect,
                        "v@send={v_send} w@send={w_send} w@recv={w_recv}"
                    );
                    // Blocking the sender at the receive round must never
                    // change the outcome.
                    recv.insert(v);
                    assert_eq!(
                        delivered(v, w, &send, &recv),
                        expect,
                        "sender status at i+1 must be irrelevant"
                    );
                }
            }
        }
    }

    #[test]
    fn self_send_follows_the_same_rule() {
        // v -> v: blocked in either round kills it (v is both endpoints).
        let v = NodeId(5);
        assert!(delivered(v, v, &bs(&[]), &bs(&[])));
        assert!(!delivered(v, v, &bs(&[5]), &bs(&[])));
        assert!(!delivered(v, v, &bs(&[]), &bs(&[5])));
    }

    #[test]
    fn delivery_is_per_edge_not_global() {
        // A block set only affects edges touching its members.
        let send = bs(&[7]);
        let recv = bs(&[8]);
        assert!(delivered(NodeId(1), NodeId(2), &send, &recv));
        assert!(!delivered(NodeId(7), NodeId(2), &send, &recv));
        assert!(!delivered(NodeId(1), NodeId(8), &send, &recv));
    }

    #[test]
    fn bound_check() {
        let set = bs(&[1, 2, 3]);
        assert!(set.within_bound(0.5, 6));
        assert!(!set.within_bound(0.4, 6));
        assert_eq!(set.fraction_of(6), 0.5);
        assert_eq!(BlockSet::none().fraction_of(0), 0.0);
    }

    #[test]
    fn insert_and_iter() {
        let mut set = BlockSet::none();
        assert!(set.is_empty());
        set.insert(NodeId(9));
        assert!(set.contains(NodeId(9)));
        assert_eq!(set.iter().count(), 1);
    }
}
