//! DoS blocking semantics and the generalized fault model.
//!
//! An `r`-bounded adversary may block any `r`-fraction of the current nodes
//! in a round. A blocked node can neither send nor receive in that round.
//! A message sent from `v` to `w` in round `i` is received and processed by
//! `w` only if
//!
//! * `v` is non-blocked in round `i`, and
//! * `w` is non-blocked in round `i` **and** round `i + 1`.
//!
//! If so, `w` is called *available* in round `i + 1`. The engine consults a
//! [`BlockSet`] per round and applies exactly this rule.
//!
//! Beyond the paper's model, a [`FaultModel`] composes the blocking rule
//! with *link faults* (probabilistic message drop, duplication and bounded
//! extra delay) and *node faults* (crash-stop, crash-recovery with state
//! loss, and a network partition window). All fault randomness derives from
//! a dedicated seed-keyed stream and messages are judged in the engine's
//! canonical delivery order, so faulty runs replay bit-for-bit. The
//! [`FaultModel::null`] model draws nothing and changes nothing: under it
//! the engine behaves exactly as the Section 1.1 delivery rule prescribes,
//! digest streams included.

use crate::rng::{stream, NodeRng};
use crate::NodeId;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The set of nodes blocked in a given round.
///
/// Backed by a `BTreeSet` so iteration order is deterministic: block sets
/// feed RNG draws and digests downstream, where arbitrary order would break
/// replay identity.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSet {
    blocked: BTreeSet<NodeId>,
}

impl BlockSet {
    /// No node blocked.
    pub fn none() -> Self {
        Self::default()
    }

    /// Block exactly the given nodes. (Shadows the `FromIterator` method
    /// by design — both behave identically.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Self { blocked: iter.into_iter().collect() }
    }

    /// Is `node` blocked?
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.blocked.contains(&node)
    }

    /// Number of blocked nodes.
    pub fn len(&self) -> usize {
        self.blocked.len()
    }

    /// True if no node is blocked.
    pub fn is_empty(&self) -> bool {
        self.blocked.is_empty()
    }

    /// Add a node to the set.
    pub fn insert(&mut self, node: NodeId) {
        self.blocked.insert(node);
    }

    /// Iterate over blocked nodes in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.blocked.iter().copied()
    }

    /// The fraction of `n` nodes this set blocks.
    pub fn fraction_of(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.blocked.len() as f64 / n as f64
        }
    }

    /// Check the adversary's budget: at most `floor(r * n)` nodes blocked.
    ///
    /// The bound is exact in the integers — an `r`-bounded adversary may
    /// block an `r`-fraction of the nodes, and a fraction of nodes is a
    /// whole number — matching the `floor` budget [`crate::NodeId`]-level
    /// adversaries actually spend.
    pub fn within_bound(&self, r: f64, n: usize) -> bool {
        self.blocked.len() <= (r * n as f64).floor() as usize
    }
}

impl FromIterator<NodeId> for BlockSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        BlockSet::from_iter(iter)
    }
}

/// Decide whether a message sent in round `i` is delivered in round `i + 1`.
///
/// `blocked_at_send` is the block set of round `i`; `blocked_at_recv` the
/// block set of round `i + 1`.
#[inline]
pub fn delivered(
    from: NodeId,
    to: NodeId,
    blocked_at_send: &BlockSet,
    blocked_at_recv: &BlockSet,
) -> bool {
    !blocked_at_send.contains(from)
        && !blocked_at_send.contains(to)
        && !blocked_at_recv.contains(to)
}

// ---------------------------------------------------------------------------
// Generalized fault model (beyond the paper's Section 1.1)
// ---------------------------------------------------------------------------

/// Probabilistic link faults applied to every message that survives the
/// Section 1.1 delivery rule and the node-fault checks.
///
/// Fates are mutually exclusive and judged in priority order
/// drop > duplicate > delay, with exactly one uniform draw per configured
/// fate so the draw sequence is a pure function of the delivery order.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice in the same round.
    pub dup_prob: f64,
    /// Probability a message is held back for extra rounds.
    pub delay_prob: f64,
    /// Maximum extra delay in rounds; actual delays are uniform in
    /// `1..=max_delay`. Ignored when `delay_prob` is zero.
    pub max_delay: u64,
}

impl LinkFaults {
    /// A perfectly reliable link.
    pub const NONE: Self = Self { drop_prob: 0.0, dup_prob: 0.0, delay_prob: 0.0, max_delay: 0 };

    /// True if this configuration can never alter a delivery.
    pub fn is_null(&self) -> bool {
        self.drop_prob <= 0.0 && self.dup_prob <= 0.0 && self.delay_prob <= 0.0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self::NONE
    }
}

/// A scheduled node fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeFault {
    /// The node halts permanently at the start of round `at`.
    CrashStop { at: u64 },
    /// The node halts at round `at` and comes back `down_for` rounds later
    /// with total state loss: the engine clears its inbox, re-keys its RNG
    /// stream and calls [`crate::Protocol::on_crash_recover`].
    CrashRecover { at: u64, down_for: u64 },
}

impl NodeFault {
    /// Is a node with this fault down (neither sending nor receiving nor
    /// computing) in `round`?
    pub fn down_at(&self, round: u64) -> bool {
        match *self {
            NodeFault::CrashStop { at } => round >= at,
            NodeFault::CrashRecover { at, down_for } => round >= at && round < at + down_for,
        }
    }

    /// The round in which the node comes back, if it ever does.
    pub fn recovery_round(&self) -> Option<u64> {
        match *self {
            NodeFault::CrashStop { .. } => None,
            NodeFault::CrashRecover { at, down_for } => Some(at + down_for),
        }
    }
}

/// A network partition: during rounds `from..until`, no message crosses
/// between `side` and its complement. Traffic within either side is
/// unaffected.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// One side of the cut (the complement is everything else).
    pub side: BTreeSet<NodeId>,
    /// First partitioned round (inclusive).
    pub from: u64,
    /// First healed round (exclusive end of the window).
    pub until: u64,
}

impl Partition {
    /// Does the partition cut the edge `a -- b` in `round`?
    pub fn cuts(&self, a: NodeId, b: NodeId, round: u64) -> bool {
        round >= self.from && round < self.until && self.side.contains(&a) != self.side.contains(&b)
    }
}

/// The fate of one message under [`LinkFaults`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFate {
    /// Delivered normally.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered twice this round.
    Duplicate,
    /// Held back; delivered the given number of rounds late.
    Delay(u64),
}

/// A composed fault model interposed on the engine's delivery path.
///
/// The model sits *behind* the Section 1.1 blocking rule: a message first
/// has to survive the [`BlockSet`] check, then the node-fault and partition
/// checks, and only then is its link fate drawn. All draws come from one
/// ChaCha stream keyed by `(seed, FAULT_STREAM, FAULT_PURPOSE)` and happen
/// in the engine's canonical delivery order, so a faulty run replays
/// identically from its seed. [`FaultModel::null`] (the engine default)
/// short-circuits every check and draws nothing.
#[derive(Clone, Debug)]
pub struct FaultModel {
    link: LinkFaults,
    node_faults: BTreeMap<NodeId, NodeFault>,
    partition: Option<Partition>,
    rng: NodeRng,
}

/// Pseudo-node id keying the fault model's RNG stream (distinct from any
/// real node and from the fuzzer's plan stream).
const FAULT_STREAM: u64 = u64::MAX - 2;
/// Purpose tag of the fault model's RNG stream.
const FAULT_PURPOSE: u64 = 0xFA_017;

impl FaultModel {
    /// The identity model: no link faults, no node faults, no partition.
    pub fn null() -> Self {
        Self::new(0)
    }

    /// An empty model drawing its link-fault randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            link: LinkFaults::NONE,
            node_faults: BTreeMap::new(),
            partition: None,
            rng: stream(seed, FAULT_STREAM, FAULT_PURPOSE),
        }
    }

    /// Set the link-fault configuration.
    pub fn with_link(mut self, link: LinkFaults) -> Self {
        self.link = link;
        self
    }

    /// Schedule a node fault. At most one fault per node; a second call for
    /// the same node replaces the first.
    pub fn with_node_fault(mut self, node: NodeId, fault: NodeFault) -> Self {
        self.node_faults.insert(node, fault);
        self
    }

    /// Install a partition window.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// True if the model can never alter a run: the engine skips all fault
    /// processing, preserving the exact Section 1.1 semantics (and digest
    /// streams) of a model-free run.
    pub fn is_null(&self) -> bool {
        self.link.is_null() && self.node_faults.is_empty() && self.partition.is_none()
    }

    /// The link-fault configuration.
    pub fn link(&self) -> &LinkFaults {
        &self.link
    }

    /// The scheduled node faults.
    pub fn node_faults(&self) -> &BTreeMap<NodeId, NodeFault> {
        &self.node_faults
    }

    /// Is `node` down (crashed and not yet recovered) in `round`?
    pub fn down(&self, node: NodeId, round: u64) -> bool {
        self.node_faults.get(&node).is_some_and(|f| f.down_at(round))
    }

    /// All nodes down in `round`, as a block-set the engine composes with
    /// the adversary's.
    pub fn down_set(&self, round: u64) -> BlockSet {
        self.node_faults.iter().filter(|(_, f)| f.down_at(round)).map(|(&v, _)| v).collect()
    }

    /// Nodes whose crash-recovery completes at the start of `round`, in id
    /// order.
    pub fn recovering(&self, round: u64) -> Vec<NodeId> {
        self.node_faults
            .iter()
            .filter(|(_, f)| f.recovery_round() == Some(round))
            .map(|(&v, _)| v)
            .collect()
    }

    /// Does the partition cut `from -> to` in `round`?
    pub fn cut(&self, from: NodeId, to: NodeId, round: u64) -> bool {
        self.partition.as_ref().is_some_and(|p| p.cuts(from, to, round))
    }

    /// Judge the link fate of one message that passed all other checks.
    /// Draws exactly one uniform per configured fate (in drop, duplicate,
    /// delay order) plus one for the delay length, so the stream position
    /// is a pure function of the judged-message sequence.
    pub fn link_fate(&mut self) -> LinkFate {
        let link = self.link;
        judge_link_fate(&link, &mut self.rng)
    }

    /// [`Self::link_fate`] drawing from a caller-supplied stream instead of
    /// the model's own. Relaxed-order backends (simnet-xl fast mode) use
    /// per-shard streams so shards can judge fates concurrently; the draw
    /// discipline (one uniform per configured fate, in drop > duplicate >
    /// delay order) is identical, so per-stream fate sequences stay a pure
    /// function of that stream's judged-message order.
    pub fn link_fate_with(&self, rng: &mut NodeRng) -> LinkFate {
        judge_link_fate(&self.link, rng)
    }
}

/// Shared fate-judging core of [`FaultModel::link_fate`] /
/// [`FaultModel::link_fate_with`].
fn judge_link_fate(link: &LinkFaults, rng: &mut NodeRng) -> LinkFate {
    if link.is_null() {
        return LinkFate::Deliver;
    }
    if link.drop_prob > 0.0 && rng.random::<f64>() < link.drop_prob {
        return LinkFate::Drop;
    }
    if link.dup_prob > 0.0 && rng.random::<f64>() < link.dup_prob {
        return LinkFate::Duplicate;
    }
    if link.delay_prob > 0.0 && link.max_delay > 0 && rng.random::<f64>() < link.delay_prob {
        return LinkFate::Delay(rng.random_range(1..=link.max_delay));
    }
    LinkFate::Deliver
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

use crate::checkpoint::{
    f64_bits, field, get_f64_bits, get_str, get_u64, missing, Checkpoint, CkptResult,
};
use serde_json::Value;

impl Checkpoint for BlockSet {
    fn save(&self) -> Value {
        Value::Array(self.blocked.iter().map(|v| Value::from(v.raw())).collect())
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let ids = v.as_array().ok_or_else(|| missing("block set"))?;
        let blocked = ids
            .iter()
            .map(|x| x.as_u64().map(NodeId).ok_or_else(|| missing("block set id")))
            .collect::<CkptResult<BTreeSet<NodeId>>>()?;
        Ok(Self { blocked })
    }
}

impl Checkpoint for LinkFaults {
    fn save(&self) -> Value {
        serde_json::json!({
            "drop_bits": f64_bits(self.drop_prob),
            "dup_bits": f64_bits(self.dup_prob),
            "delay_bits": f64_bits(self.delay_prob),
            "max_delay": self.max_delay,
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(Self {
            drop_prob: get_f64_bits(v, "drop_bits")?,
            dup_prob: get_f64_bits(v, "dup_bits")?,
            delay_prob: get_f64_bits(v, "delay_bits")?,
            max_delay: get_u64(v, "max_delay")?,
        })
    }
}

impl Checkpoint for NodeFault {
    fn save(&self) -> Value {
        match *self {
            NodeFault::CrashStop { at } => serde_json::json!({ "kind": "stop", "at": at }),
            NodeFault::CrashRecover { at, down_for } => {
                serde_json::json!({ "kind": "recover", "at": at, "down_for": down_for })
            }
        }
    }

    fn load(v: &Value) -> CkptResult<Self> {
        match get_str(v, "kind")? {
            "stop" => Ok(NodeFault::CrashStop { at: get_u64(v, "at")? }),
            "recover" => Ok(NodeFault::CrashRecover {
                at: get_u64(v, "at")?,
                down_for: get_u64(v, "down_for")?,
            }),
            other => Err(crate::checkpoint::CkptError::Corrupt(format!(
                "unknown node-fault kind `{other}`"
            ))),
        }
    }
}

impl Checkpoint for Partition {
    fn save(&self) -> Value {
        serde_json::json!({
            "side": Value::Array(self.side.iter().map(|v| Value::from(v.raw())).collect()),
            "from": self.from,
            "until": self.until,
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let side = crate::checkpoint::get_array(v, "side")?
            .iter()
            .map(|x| x.as_u64().map(NodeId).ok_or_else(|| missing("side id")))
            .collect::<CkptResult<BTreeSet<NodeId>>>()?;
        Ok(Self { side, from: get_u64(v, "from")?, until: get_u64(v, "until")? })
    }
}

impl Checkpoint for FaultModel {
    fn save(&self) -> Value {
        serde_json::json!({
            "link": self.link.save(),
            "node_faults": Value::Array(
                self.node_faults
                    .iter()
                    .map(|(&v, f)| serde_json::json!({ "node": v.raw(), "fault": f.save() }))
                    .collect(),
            ),
            "partition": match &self.partition {
                Some(p) => p.save(),
                None => Value::Null,
            },
            "rng": self.rng.save(),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let mut node_faults = BTreeMap::new();
        for entry in crate::checkpoint::get_array(v, "node_faults")? {
            let node = NodeId(get_u64(entry, "node")?);
            node_faults.insert(node, NodeFault::load(field(entry, "fault")?)?);
        }
        let partition = match field(v, "partition")? {
            Value::Null => None,
            p => Some(Partition::load(p)?),
        };
        Ok(Self {
            link: LinkFaults::load(field(v, "link")?)?,
            node_faults,
            partition,
            rng: NodeRng::load(field(v, "rng")?)?,
        })
    }
}

impl<M: Checkpoint> Checkpoint for crate::message::Envelope<M> {
    fn save(&self) -> Value {
        serde_json::json!({
            "from": self.from.raw(),
            "to": self.to.raw(),
            "sent_round": self.sent_round,
            "msg": self.msg.save(),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(Self {
            from: NodeId(get_u64(v, "from")?),
            to: NodeId(get_u64(v, "to")?),
            sent_round: get_u64(v, "sent_round")?,
            msg: M::load(field(v, "msg")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(ids: &[u64]) -> BlockSet {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn delivery_requires_sender_unblocked_at_send() {
        let send = bs(&[1]);
        let recv = bs(&[]);
        assert!(!delivered(NodeId(1), NodeId(2), &send, &recv));
        assert!(delivered(NodeId(3), NodeId(2), &send, &recv));
    }

    #[test]
    fn delivery_requires_receiver_unblocked_in_both_rounds() {
        // Receiver blocked at the send round: dropped.
        assert!(!delivered(NodeId(1), NodeId(2), &bs(&[2]), &bs(&[])));
        // Receiver blocked at the receive round: dropped.
        assert!(!delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[2])));
        // Unblocked in both: delivered.
        assert!(delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[])));
    }

    #[test]
    fn sender_blocked_only_at_receive_round_is_fine() {
        // Only the *send-round* status of the sender matters.
        assert!(delivered(NodeId(1), NodeId(2), &bs(&[]), &bs(&[1])));
    }

    #[test]
    fn delivery_rule_full_truth_table() {
        // Section 1.1: a message v -> w sent in round i is delivered iff
        // v is non-blocked at i, and w is non-blocked at i AND i+1. The
        // sender's status at i+1 is irrelevant. Enumerate all 8
        // combinations of the three relevant bits.
        let (v, w) = (NodeId(1), NodeId(2));
        for v_send in [false, true] {
            for w_send in [false, true] {
                for w_recv in [false, true] {
                    let mut send = BlockSet::none();
                    let mut recv = BlockSet::none();
                    if v_send {
                        send.insert(v);
                    }
                    if w_send {
                        send.insert(w);
                    }
                    if w_recv {
                        recv.insert(w);
                    }
                    let expect = !v_send && !w_send && !w_recv;
                    assert_eq!(
                        delivered(v, w, &send, &recv),
                        expect,
                        "v@send={v_send} w@send={w_send} w@recv={w_recv}"
                    );
                    // Blocking the sender at the receive round must never
                    // change the outcome.
                    recv.insert(v);
                    assert_eq!(
                        delivered(v, w, &send, &recv),
                        expect,
                        "sender status at i+1 must be irrelevant"
                    );
                }
            }
        }
    }

    #[test]
    fn self_send_follows_the_same_rule() {
        // v -> v: blocked in either round kills it (v is both endpoints).
        let v = NodeId(5);
        assert!(delivered(v, v, &bs(&[]), &bs(&[])));
        assert!(!delivered(v, v, &bs(&[5]), &bs(&[])));
        assert!(!delivered(v, v, &bs(&[]), &bs(&[5])));
    }

    #[test]
    fn delivery_is_per_edge_not_global() {
        // A block set only affects edges touching its members.
        let send = bs(&[7]);
        let recv = bs(&[8]);
        assert!(delivered(NodeId(1), NodeId(2), &send, &recv));
        assert!(!delivered(NodeId(7), NodeId(2), &send, &recv));
        assert!(!delivered(NodeId(1), NodeId(8), &send, &recv));
    }

    #[test]
    fn bound_check() {
        let set = bs(&[1, 2, 3]);
        assert!(set.within_bound(0.5, 6));
        assert!(!set.within_bound(0.4, 6));
        assert_eq!(set.fraction_of(6), 0.5);
        assert_eq!(BlockSet::none().fraction_of(0), 0.0);
    }

    #[test]
    fn bound_is_exact_at_the_boundary() {
        // Exactly floor(r * n) blocked nodes is legal; one more is not.
        // r = 0.3, n = 10: budget is exactly 3.
        assert!(bs(&[1, 2, 3]).within_bound(0.3, 10));
        assert!(!bs(&[1, 2, 3, 4]).within_bound(0.3, 10));
        // r = 0.5, n = 7: budget is floor(3.5) = 3.
        assert!(bs(&[1, 2, 3]).within_bound(0.5, 7));
        assert!(!bs(&[1, 2, 3, 4]).within_bound(0.5, 7));
        // A zero bound admits only the empty set.
        assert!(BlockSet::none().within_bound(0.0, 10));
        assert!(!bs(&[1]).within_bound(0.0, 10));
        // Float grime like 0.1 * 3 = 0.30000000000000004 must not leak an
        // extra unit of budget.
        assert!(!bs(&[1]).within_bound(0.1, 3));
    }

    #[test]
    fn iter_is_sorted() {
        let set = bs(&[9, 2, 7, 4]);
        let order: Vec<u64> = set.iter().map(|v| v.raw()).collect();
        assert_eq!(order, vec![2, 4, 7, 9]);
    }

    #[test]
    fn insert_and_iter() {
        let mut set = BlockSet::none();
        assert!(set.is_empty());
        set.insert(NodeId(9));
        assert!(set.contains(NodeId(9)));
        assert_eq!(set.iter().count(), 1);
    }

    // -- FaultModel ---------------------------------------------------------

    #[test]
    fn null_model_is_null_and_draws_nothing() {
        let mut m = FaultModel::null();
        assert!(m.is_null());
        let before = m.rng.get_word_pos();
        for _ in 0..10 {
            assert_eq!(m.link_fate(), LinkFate::Deliver);
        }
        assert_eq!(m.rng.get_word_pos(), before, "null model must not consume randomness");
        assert!(m.down_set(5).is_empty());
        assert!(!m.cut(NodeId(1), NodeId(2), 5));
    }

    #[test]
    fn crash_stop_is_forever_crash_recover_is_a_window() {
        let stop = NodeFault::CrashStop { at: 3 };
        assert!(!stop.down_at(2));
        assert!(stop.down_at(3));
        assert!(stop.down_at(1_000_000));
        assert_eq!(stop.recovery_round(), None);

        let rec = NodeFault::CrashRecover { at: 3, down_for: 4 };
        assert!(!rec.down_at(2));
        assert!(rec.down_at(3));
        assert!(rec.down_at(6));
        assert!(!rec.down_at(7));
        assert_eq!(rec.recovery_round(), Some(7));
    }

    #[test]
    fn down_set_and_recovering_follow_the_schedule() {
        let m = FaultModel::new(1)
            .with_node_fault(NodeId(1), NodeFault::CrashStop { at: 2 })
            .with_node_fault(NodeId(2), NodeFault::CrashRecover { at: 1, down_for: 3 });
        assert!(!m.is_null());
        assert_eq!(m.down_set(0).len(), 0);
        assert_eq!(m.down_set(1).len(), 1);
        assert_eq!(m.down_set(2).len(), 2);
        assert_eq!(m.down_set(4).len(), 1, "node 2 recovered at round 4");
        assert_eq!(m.recovering(4), vec![NodeId(2)]);
        assert!(m.recovering(3).is_empty());
    }

    #[test]
    fn partition_cuts_only_across_and_only_in_window() {
        let p = Partition { side: [NodeId(1), NodeId(2)].into_iter().collect(), from: 5, until: 8 };
        let m = FaultModel::new(2).with_partition(p);
        // Across the cut, inside the window.
        assert!(m.cut(NodeId(1), NodeId(3), 5));
        assert!(m.cut(NodeId(3), NodeId(1), 7));
        // Within a side.
        assert!(!m.cut(NodeId(1), NodeId(2), 6));
        assert!(!m.cut(NodeId(3), NodeId(4), 6));
        // Outside the window.
        assert!(!m.cut(NodeId(1), NodeId(3), 4));
        assert!(!m.cut(NodeId(1), NodeId(3), 8));
    }

    #[test]
    fn link_fates_are_deterministic_in_the_seed() {
        let fates = |seed: u64| {
            let mut m = FaultModel::new(seed).with_link(LinkFaults {
                drop_prob: 0.3,
                dup_prob: 0.2,
                delay_prob: 0.2,
                max_delay: 4,
            });
            (0..64).map(|_| m.link_fate()).collect::<Vec<_>>()
        };
        assert_eq!(fates(7), fates(7));
        assert_ne!(fates(7), fates(8));
    }

    #[test]
    fn extreme_probabilities_force_fates() {
        let mut all_drop = FaultModel::new(1).with_link(LinkFaults {
            drop_prob: 1.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
        });
        let mut all_dup = FaultModel::new(1).with_link(LinkFaults {
            drop_prob: 0.0,
            dup_prob: 1.0,
            delay_prob: 0.0,
            max_delay: 0,
        });
        let mut all_delay = FaultModel::new(1).with_link(LinkFaults {
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 1.0,
            max_delay: 3,
        });
        for _ in 0..16 {
            assert_eq!(all_drop.link_fate(), LinkFate::Drop);
            assert_eq!(all_dup.link_fate(), LinkFate::Duplicate);
            match all_delay.link_fate() {
                LinkFate::Delay(k) => assert!((1..=3).contains(&k)),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }
}
