//! # simnet — synchronous message-passing overlay simulator
//!
//! This crate implements the network model of Drees, Gmyr and Scheideler,
//! *Churn- and DoS-resistant Overlay Networks Based on Network
//! Reconfiguration* (SPAA 2016), Section 1.1:
//!
//! * Nodes operate in **synchronized rounds**. Each round has three steps:
//!   a node first receives all messages sent to it in the previous round,
//!   then performs arbitrary local computation, and finally sends a distinct
//!   message to each node whose identifier it knows.
//! * The **communication work** of a node in a round is the total number of
//!   bits it sends and receives; [`accounting`] tracks it per node per round.
//! * Under a **DoS attack** a blocked node can neither send nor receive.
//!   A message sent from `v` to `w` in round `i` is received and processed
//!   by `w` only if `v` is non-blocked in round `i` and `w` is non-blocked
//!   in rounds `i` *and* `i + 1` (in which case `w` is called *available*
//!   in round `i + 1`). [`fault`] implements exactly this rule.
//! * Beyond the paper's model, an optional [`fault::FaultModel`] composes
//!   the blocking rule with link faults (probabilistic drop, duplication,
//!   bounded delay) and node faults (crash-stop, crash-recovery with state
//!   loss, partitions) — seed-derived and replay-deterministic. The default
//!   null model changes nothing.
//! * Nodes are identified by opaque [`NodeId`]s of `O(log n)` bits; knowing
//!   an id is what permits sending to it (this is an *overlay* model — any
//!   node may message any other node whose id it holds).
//!
//! The engine is deterministic: all randomness flows from per-node
//! [`rand_chacha`] streams derived from a master seed (see [`rng`]), and
//! rounds step nodes in parallel with rayon without affecting the outcome.
//!
//! ## Quick example
//!
//! ```
//! use simnet::{Network, NodeId, Protocol, Ctx, Payload};
//!
//! #[derive(Clone)]
//! struct Ping(u32);
//! impl Payload for Ping {
//!     fn size_bits(&self) -> u64 { 32 }
//! }
//!
//! /// Every node forwards a counter to its successor in a ring.
//! struct Ring { next: NodeId, seen: u32 }
//! impl Protocol for Ring {
//!     type Msg = Ping;
//!     fn on_round(&mut self, ctx: &mut Ctx<'_, Ping>) {
//!         for env in ctx.take_inbox() {
//!             self.seen = self.seen.max(env.msg.0);
//!         }
//!         let next = self.next;
//!         ctx.send(next, Ping(self.seen + 1));
//!     }
//! }
//!
//! let n = 8u64;
//! let mut net = Network::new(42);
//! for i in 0..n {
//!     net.add_node(NodeId(i), Ring { next: NodeId((i + 1) % n), seen: 0 });
//! }
//! for _ in 0..10 {
//!     net.step();
//! }
//! assert!(net.node(NodeId(0)).unwrap().seen > 0);
//! ```

pub mod accounting;
pub mod backend;
pub mod checkpoint;
pub mod conduct;
pub mod digest;
pub mod engine;
pub mod fault;
pub mod id;
pub mod instrument;
pub mod message;
pub mod observer;
pub mod protocol;
pub mod rng;
pub mod trace;

pub use accounting::{CommStats, RoundWork};
pub use backend::SimEngine;
pub use checkpoint::{Checkpoint, Checkpointer, CkptError, CkptResult};
pub use conduct::{ByzantineConduct, Conduct, SendFate};
pub use digest::{Digest, RoundDigest, RunManifest};
pub use engine::{Network, ParMode, PAR_THRESHOLD};
pub use fault::{
    BlockSet, Burst, BurstSchedule, BurstTarget, FaultModel, LinkFate, LinkFaults, NodeFault,
    Partition, TimedPartition,
};
pub use id::NodeId;
pub use message::{Envelope, Payload};
pub use observer::{AdaptiveAdversary, ObserverView, ViewBuffer};
pub use protocol::{Ctx, Protocol};
pub use rng::{stream, NodeRng};
pub use trace::{Trace, TraceEvent};
