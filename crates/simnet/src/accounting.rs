//! Communication-work accounting.
//!
//! The paper bounds, for every protocol, the *communication work* of a node
//! in a round: the total number of bits it sends plus the bits it receives.
//! The engine charges each delivered or sent message to both endpoints and
//! aggregates per round; experiments read the maxima off [`CommStats`] to
//! verify the paper's polylogarithmic work bounds (e.g. Theorem 2's
//! `O(log^(2+log(2+eps)) n)`).

use serde::{Deserialize, Serialize};

/// Work done by the busiest node in one round, plus aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundWork {
    /// Round index.
    pub round: u64,
    /// Maximum bits sent+received by any single node this round.
    pub max_node_bits: u64,
    /// Sum over nodes of bits handled this round. A message sent in round
    /// `i` and delivered in round `i + 1` contributes its size to round `i`
    /// (sender side) and to round `i + 1` (receiver side).
    pub total_bits: u64,
    /// Maximum number of message events (sends + receives) at any single
    /// node this round.
    pub max_node_msgs: u64,
    /// Total message events this round (see `total_bits` for the charging
    /// convention).
    pub total_msgs: u64,
}

/// Running communication statistics for a simulation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CommStats {
    per_round: Vec<RoundWork>,
}

impl CommStats {
    /// Create empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one finished round.
    pub fn push(&mut self, work: RoundWork) {
        self.per_round.push(work);
    }

    /// All recorded rounds, oldest first.
    pub fn rounds(&self) -> &[RoundWork] {
        &self.per_round
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.per_round.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.per_round.is_empty()
    }

    /// The largest per-node communication work observed in any round.
    ///
    /// This is the quantity the paper's work bounds constrain.
    pub fn max_node_bits(&self) -> u64 {
        self.per_round.iter().map(|r| r.max_node_bits).max().unwrap_or(0)
    }

    /// The largest per-node message count observed in any round.
    pub fn max_node_msgs(&self) -> u64 {
        self.per_round.iter().map(|r| r.max_node_msgs).max().unwrap_or(0)
    }

    /// Total bits moved over the whole simulation.
    pub fn total_bits(&self) -> u64 {
        self.per_round.iter().map(|r| r.total_bits).sum()
    }

    /// Total messages moved over the whole simulation.
    pub fn total_msgs(&self) -> u64 {
        self.per_round.iter().map(|r| r.total_msgs).sum()
    }

    /// Drop all recorded rounds (e.g. between experiment phases) while
    /// keeping the allocation.
    pub fn clear(&mut self) {
        self.per_round.clear();
    }

    /// Statistics for the suffix of rounds starting at `from_round`.
    pub fn since(&self, from_round: u64) -> CommStats {
        CommStats {
            per_round: self.per_round.iter().filter(|r| r.round >= from_round).copied().collect(),
        }
    }
}

/// Scratch accumulator used inside the engine while a round executes.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkAccumulator {
    /// bits\[slot\] for the current round.
    pub bits: Vec<u64>,
    /// msgs\[slot\] for the current round.
    pub msgs: Vec<u64>,
}

impl WorkAccumulator {
    pub(crate) fn reset(&mut self, n_slots: usize) {
        self.bits.clear();
        self.bits.resize(n_slots, 0);
        self.msgs.clear();
        self.msgs.resize(n_slots, 0);
    }

    pub(crate) fn charge(&mut self, slot: usize, bits: u64) {
        self.bits[slot] += bits;
        self.msgs[slot] += 1;
    }

    pub(crate) fn finish(&self, round: u64) -> RoundWork {
        RoundWork {
            round,
            max_node_bits: self.bits.iter().copied().max().unwrap_or(0),
            total_bits: self.bits.iter().sum::<u64>(),
            max_node_msgs: self.msgs.iter().copied().max().unwrap_or(0),
            total_msgs: self.msgs.iter().sum::<u64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_charges_both_endpoints() {
        let mut acc = WorkAccumulator::default();
        acc.reset(3);
        // One 100-bit message charged to sender (slot 0) and receiver (slot 2).
        acc.charge(0, 100);
        acc.charge(2, 100);
        let w = acc.finish(7);
        assert_eq!(w.round, 7);
        assert_eq!(w.max_node_bits, 100);
        assert_eq!(w.total_bits, 200);
        assert_eq!(w.total_msgs, 2);
        assert_eq!(w.max_node_msgs, 1);
    }

    #[test]
    fn stats_track_maximum_across_rounds() {
        let mut s = CommStats::new();
        s.push(RoundWork {
            round: 0,
            max_node_bits: 10,
            total_bits: 30,
            max_node_msgs: 1,
            total_msgs: 3,
        });
        s.push(RoundWork {
            round: 1,
            max_node_bits: 50,
            total_bits: 60,
            max_node_msgs: 4,
            total_msgs: 5,
        });
        assert_eq!(s.max_node_bits(), 50);
        assert_eq!(s.max_node_msgs(), 4);
        assert_eq!(s.total_bits(), 90);
        assert_eq!(s.total_msgs(), 8);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn since_filters_rounds() {
        let mut s = CommStats::new();
        for r in 0..10 {
            s.push(RoundWork { round: r, max_node_bits: r, ..Default::default() });
        }
        let tail = s.since(7);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.max_node_bits(), 9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CommStats::new();
        assert!(s.is_empty());
        assert_eq!(s.max_node_bits(), 0);
        assert_eq!(s.total_msgs(), 0);
    }
}
