//! Anchor crate for the repository-root `tests/` directory; the integration
//! test targets are declared in this package's manifest and live in
//! `../../tests/`.
