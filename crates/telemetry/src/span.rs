//! Structured spans and typed protocol events.
//!
//! Events subsume and extend the simulator's `TraceEvent` vocabulary with
//! the protocol-level milestones the overlay stack emits: sampling
//! started/finished, epochs, healing actions, invariant violations,
//! adversary decisions, checkpoints. They land in a bounded ring buffer —
//! the newest events win and evictions are counted, so a report always
//! states exactly how much it is missing.
//!
//! Spans are scoped timers: a [`Span`] guard bumps a per-name invocation
//! counter on drop and, when wall-clock timing is on, records the elapsed
//! nanoseconds into a per-name histogram. With timing off a span leaves
//! only the deterministic count.

use std::collections::VecDeque;

/// The typed event vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A node joined the simulation (subsumes `TraceEvent::NodeAdded`).
    NodeAdded,
    /// A node left the simulation (subsumes `TraceEvent::NodeRemoved`).
    NodeRemoved,
    /// A node completed crash-recovery (subsumes `TraceEvent::NodeRecovered`).
    NodeRecovered,
    /// A sampling primitive started.
    SamplingStarted,
    /// A sampling primitive delivered its samples.
    SamplingFinished,
    /// A reconfiguration epoch completed (successfully or not).
    EpochFinished,
    /// A bridge/wiring structure was built during reconfiguration.
    BridgeBuilt,
    /// A member missed a reconfiguration broadcast.
    Desync,
    /// A healing re-request attempt was sent.
    RetryAttempt,
    /// A re-request succeeded; the member is synchronized again.
    Resync,
    /// A member's retry budget ran out.
    RetryExhausted,
    /// A member was evicted (stale heartbeat or exhausted retries).
    Eviction,
    /// A recovered node was re-admitted via the join path.
    Rejoin,
    /// A crash was injected.
    Crash,
    /// An invariant monitor recorded a violation.
    Violation,
    /// An adversary spent blocking budget.
    BudgetSpend,
    /// An adversary strategy made a decision.
    StrategyChoice,
    /// A checkpoint was written or restored.
    Checkpoint,
    /// The recovery state machine changed mode (Normal/Degraded/SafeMode/
    /// Recovering); the target mode travels in the event detail.
    ModeTransition,
    /// Anything else; the name travels in the event detail.
    Custom,
}

impl EventKind {
    /// Stable lower-kebab name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::NodeAdded => "node-added",
            EventKind::NodeRemoved => "node-removed",
            EventKind::NodeRecovered => "node-recovered",
            EventKind::SamplingStarted => "sampling-started",
            EventKind::SamplingFinished => "sampling-finished",
            EventKind::EpochFinished => "epoch-finished",
            EventKind::BridgeBuilt => "bridge-built",
            EventKind::Desync => "desync",
            EventKind::RetryAttempt => "retry-attempt",
            EventKind::Resync => "resync",
            EventKind::RetryExhausted => "retry-exhausted",
            EventKind::Eviction => "eviction",
            EventKind::Rejoin => "rejoin",
            EventKind::Crash => "crash",
            EventKind::Violation => "violation",
            EventKind::BudgetSpend => "budget-spend",
            EventKind::StrategyChoice => "strategy-choice",
            EventKind::Checkpoint => "checkpoint",
            EventKind::ModeTransition => "mode-transition",
            EventKind::Custom => "custom",
        }
    }

    /// Parse an exported name back (for report tooling).
    pub fn from_name(s: &str) -> Option<Self> {
        const ALL: [EventKind; 20] = [
            EventKind::NodeAdded,
            EventKind::NodeRemoved,
            EventKind::NodeRecovered,
            EventKind::SamplingStarted,
            EventKind::SamplingFinished,
            EventKind::EpochFinished,
            EventKind::BridgeBuilt,
            EventKind::Desync,
            EventKind::RetryAttempt,
            EventKind::Resync,
            EventKind::RetryExhausted,
            EventKind::Eviction,
            EventKind::Rejoin,
            EventKind::Crash,
            EventKind::Violation,
            EventKind::BudgetSpend,
            EventKind::StrategyChoice,
            EventKind::Checkpoint,
            EventKind::ModeTransition,
            EventKind::Custom,
        ];
        ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (assigned at record time; gaps never occur
    /// — evicted events are counted, not renumbered).
    pub seq: u64,
    /// Simulation round (or epoch, for epoch-granularity emitters).
    pub round: u64,
    /// Event type.
    pub kind: EventKind,
    /// The node concerned, when there is one.
    pub node: Option<u64>,
    /// A free numeric payload (budget spent, retry attempt index, ...).
    pub value: u64,
    /// Short human-readable context.
    pub detail: String,
}

/// Bounded event ring: keeps the most recent `cap` events and counts what
/// it had to evict.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    next_seq: u64,
    /// Events evicted because the ring was full.
    pub overflow: u64,
    buf: VecDeque<Event>,
}

impl EventRing {
    /// Ring holding up to `cap` events.
    pub fn new(cap: usize) -> Self {
        Self { cap, next_seq: 0, overflow: 0, buf: VecDeque::new() }
    }

    /// Record one event, evicting the oldest when full.
    pub fn push(
        &mut self,
        round: u64,
        kind: EventKind,
        node: Option<u64>,
        value: u64,
        detail: String,
    ) {
        let ev = Event { seq: self.next_seq, round, kind, node, value, detail };
        self.next_seq += 1;
        if self.cap == 0 {
            self.overflow += 1;
            return;
        }
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.overflow += 1;
        }
        self.buf.push_back(ev);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (retained + evicted).
    pub fn total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let mut r = EventRing::new(3);
        for i in 0..5u64 {
            r.push(i, EventKind::Eviction, Some(i), 0, String::new());
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overflow, 2);
        assert_eq!(r.total(), 5);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "newest events survive");
    }

    #[test]
    fn zero_capacity_counts_everything_as_overflow() {
        let mut r = EventRing::new(0);
        r.push(0, EventKind::Crash, None, 0, String::new());
        assert!(r.is_empty());
        assert_eq!(r.overflow, 1);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in [
            EventKind::NodeAdded,
            EventKind::SamplingStarted,
            EventKind::EpochFinished,
            EventKind::Desync,
            EventKind::Violation,
            EventKind::BudgetSpend,
            EventKind::StrategyChoice,
            EventKind::Checkpoint,
            EventKind::Custom,
        ] {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::from_name("no-such-kind"), None);
    }
}
