//! JSONL export and re-import of a captured run.
//!
//! One line per record, each a small JSON object tagged by `"type"`:
//! `meta`, `counter`, `gauge`, `hist`, `phase`, `event`, `overflow`. The
//! format is line-appendable, greppable, and diff-stable: records are
//! emitted in a fixed order (meta, counters, gauges, histograms, phases,
//! events, overflow) and metric keys are already canonically sorted, so a
//! timing-off capture of a deterministic run serializes byte-identically
//! every time.
//!
//! The `trace-report` binary parses these files back with
//! [`RunTelemetry::from_jsonl`].

use crate::profiler::{Phase, PhaseStat, ProfilerSnapshot};
use crate::registry::{HistSnapshot, Snapshot};
use crate::span::{Event, EventKind};
use serde_json::{json, Value};

/// Everything a recorder captured for one run, in exportable form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTelemetry {
    /// Free-form run description (experiment id, seed, config), in
    /// insertion order.
    pub meta: Vec<(String, String)>,
    /// Whether wall-clock timing was sampled (when false every byte below
    /// is deterministic).
    pub timing: bool,
    /// Metrics registry snapshot.
    pub snapshot: Snapshot,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring.
    pub events_overflow: u64,
    /// Per-phase profile.
    pub profile: ProfilerSnapshot,
}

impl RunTelemetry {
    /// Serialize to JSONL (one record per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |v: Value| {
            out.push_str(&serde_json::to_string(&v).expect("telemetry records serialize"));
            out.push('\n');
        };

        let mut meta = serde_json::Map::new();
        for (k, v) in &self.meta {
            meta.insert(k.clone(), Value::String(v.clone()));
        }
        push(json!({"type": "meta", "timing": self.timing, "run": Value::Object(meta)}));

        for (key, &v) in &self.snapshot.counters {
            push(json!({"type": "counter", "key": key.as_str(), "value": v}));
        }
        for (key, &v) in &self.snapshot.gauges {
            push(json!({"type": "gauge", "key": key.as_str(), "value": v}));
        }
        for (key, h) in &self.snapshot.histograms {
            let buckets = Value::Array(h.buckets.iter().map(|&b| json!(b)).collect());
            push(json!({
                "type": "hist",
                "key": key.as_str(),
                "buckets": buckets,
                "count": h.count,
                "sum": h.sum,
                "min": h.min,
                "max": h.max,
            }));
        }
        for stat in &self.profile.phases {
            if stat.enters == 0 && stat.bits == 0 && stat.msgs == 0 {
                continue;
            }
            push(json!({
                "type": "phase",
                "phase": stat.phase.name(),
                "enters": stat.enters,
                "wall_ns": stat.wall_ns,
                "bits": stat.bits,
                "msgs": stat.msgs,
            }));
        }
        for ev in &self.events {
            let node = ev.node.map_or(Value::Null, |n| json!(n));
            push(json!({
                "type": "event",
                "seq": ev.seq,
                "round": ev.round,
                "kind": ev.kind.name(),
                "node": node,
                "value": ev.value,
                "detail": ev.detail.as_str(),
            }));
        }
        push(json!({"type": "overflow", "events_dropped": self.events_overflow}));
        out
    }

    /// Write the JSONL export to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_jsonl())
    }

    /// Parse a JSONL export back. Unknown record types are skipped so the
    /// format can grow; malformed lines are errors.
    pub fn from_jsonl(text: &str) -> Result<RunTelemetry, String> {
        let mut run = RunTelemetry::default();
        let mut phases: Vec<PhaseStat> = Phase::ALL
            .iter()
            .map(|&p| PhaseStat { phase: p, enters: 0, wall_ns: 0, bits: 0, msgs: 0 })
            .collect();
        let mut saw_phase = false;

        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let get = |field: &str| -> Result<u64, String> {
                v.get(field)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {}: missing `{field}`", lineno + 1))
            };
            let get_str = |field: &str| -> Result<String, String> {
                v.get(field)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: missing `{field}`", lineno + 1))
            };
            match v.get("type").and_then(Value::as_str) {
                Some("meta") => {
                    run.timing = v.get("timing").and_then(Value::as_bool).unwrap_or(false);
                    if let Some(obj) = v.get("run").and_then(Value::as_object) {
                        for (k, val) in obj.iter() {
                            if let Some(s) = val.as_str() {
                                run.meta.push((k.clone(), s.to_string()));
                            }
                        }
                    }
                }
                Some("counter") => {
                    run.snapshot.counters.insert(get_str("key")?, get("value")?);
                }
                Some("gauge") => {
                    run.snapshot.gauges.insert(get_str("key")?, get("value")?);
                }
                Some("hist") => {
                    let buckets = v
                        .get("buckets")
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("line {}: missing `buckets`", lineno + 1))?
                        .iter()
                        .map(|b| b.as_u64().unwrap_or(0))
                        .collect();
                    run.snapshot.histograms.insert(
                        get_str("key")?,
                        HistSnapshot {
                            buckets,
                            count: get("count")?,
                            sum: get("sum")?,
                            min: get("min")?,
                            max: get("max")?,
                        },
                    );
                }
                Some("phase") => {
                    let name = get_str("phase")?;
                    let phase = Phase::from_name(&name)
                        .ok_or_else(|| format!("line {}: unknown phase `{name}`", lineno + 1))?;
                    phases[phase.index()] = PhaseStat {
                        phase,
                        enters: get("enters")?,
                        wall_ns: get("wall_ns")?,
                        bits: get("bits")?,
                        msgs: get("msgs")?,
                    };
                    saw_phase = true;
                }
                Some("event") => {
                    let kind_name = get_str("kind")?;
                    let kind = EventKind::from_name(&kind_name).ok_or_else(|| {
                        format!("line {}: unknown event kind `{kind_name}`", lineno + 1)
                    })?;
                    run.events.push(Event {
                        seq: get("seq")?,
                        round: get("round")?,
                        kind,
                        node: v.get("node").and_then(Value::as_u64),
                        value: get("value")?,
                        detail: get_str("detail").unwrap_or_default(),
                    });
                }
                Some("overflow") => {
                    run.events_overflow = get("events_dropped")?;
                }
                Some(_) => {} // forward compatibility: skip unknown records
                None => return Err(format!("line {}: record without `type`", lineno + 1)),
            }
        }
        if saw_phase {
            run.profile = ProfilerSnapshot { phases };
        }
        Ok(run)
    }

    /// Meta value by key.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, EventKind, Phase, Telemetry};

    fn sample_run() -> RunTelemetry {
        let t = Telemetry::new(Config { enabled: true, timing: false, events_cap: 2 });
        t.counter("net.msgs", &[("family", "dos")]).add(42);
        t.gauge("net.peak_bits", &[]).record_max(512);
        let h = t.histogram("round.bits", &[]);
        h.record(0);
        h.record(3);
        h.record(4096);
        t.emit(1, EventKind::Desync, Some(5), 2, || "missed broadcast".into());
        t.emit(2, EventKind::Resync, Some(5), 0, String::new);
        t.emit(9, EventKind::Eviction, None, 0, String::new); // evicts the desync
        {
            let _p = t.phase(Phase::Compute);
            t.add_work(Phase::Compute, 100, 7);
        }
        t.capture(&[("exp", "unit"), ("seed", "3")])
    }

    #[test]
    fn jsonl_roundtrips() {
        let run = sample_run();
        let text = run.to_jsonl();
        let parsed = RunTelemetry::from_jsonl(&text).unwrap();
        assert_eq!(parsed, run);
        assert_eq!(parsed.meta("exp"), Some("unit"));
        assert_eq!(parsed.events_overflow, 1);
    }

    #[test]
    fn export_is_line_oriented_and_tagged() {
        let text = sample_run().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"type\":\"meta\""), "meta leads: {}", lines[0]);
        assert!(lines.last().unwrap().contains("\"type\":\"overflow\""));
        for line in &lines {
            serde_json::from_str(line).expect("every line is standalone JSON");
        }
    }

    #[test]
    fn unknown_record_types_are_skipped() {
        let mut text = sample_run().to_jsonl();
        text.push_str("{\"type\":\"future-record\",\"x\":1}\n");
        assert!(RunTelemetry::from_jsonl(&text).is_ok());
        assert!(RunTelemetry::from_jsonl("{\"no_type\":true}\n").is_err());
    }

    #[test]
    fn empty_capture_exports_cleanly() {
        let run = Telemetry::collector().capture(&[]);
        let parsed = RunTelemetry::from_jsonl(&run.to_jsonl()).unwrap();
        assert!(parsed.snapshot.is_empty());
        assert!(parsed.events.is_empty());
    }
}
