//! The metrics registry: named counters, gauges and log-bucketed
//! histograms with labels, an atomic hot path, and deterministic
//! snapshot/merge.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of an
//! `Arc`ed atomic cell; obtaining one takes the registry lock once, after
//! which every update is lock-free. A handle obtained from a disabled
//! recorder carries no cell and every operation is a single branch — the
//! zero-overhead-when-disabled guarantee.
//!
//! Snapshots order metrics by their canonical key (`name{k=v,...}` with
//! sorted label keys), so two runs that record the same values produce
//! byte-identical exports regardless of registration order or thread
//! schedule.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Relaxed is enough everywhere: metrics are monotone accumulations read
/// after the workers they observe have joined, and nothing branches on
/// them mid-run.
const ORD: Ordering = Ordering::Relaxed;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of a value under the log-2 bucketing rule.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (the value a percentile estimate
/// reports for a sample landing in that bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Render the canonical metric key: `name` alone, or `name{k=v,...}` with
/// label keys in sorted order.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::with_capacity(name.len() + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// A monotone counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every update (disabled recorder).
    pub fn noop() -> Self {
        Self(None)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, ORD);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(ORD))
    }
}

/// A last-value-or-maximum gauge. `set` overwrites; `record_max` keeps the
/// running maximum — the shape the paper's per-round work bounds need.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that ignores every update (disabled recorder).
    pub fn noop() -> Self {
        Self(None)
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.store(v, ORD);
        }
    }

    /// Keep the maximum of the current value and `v`.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.fetch_max(v, ORD);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(ORD))
    }
}

#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// A handle that ignores every update (disabled recorder).
    pub fn noop() -> Self {
        Self(None)
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.buckets[bucket_of(v)].fetch_add(1, ORD);
            c.count.fetch_add(1, ORD);
            c.sum.fetch_add(v, ORD);
            c.min.fetch_min(v, ORD);
            c.max.fetch_max(v, ORD);
        }
    }

    /// Number of recorded samples (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count.load(ORD))
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCell>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The named-metric table. Handle lookup locks; updates do not.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle for `name{labels}`, registering it on first use.
    /// Panics if the key is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = metric_key(name, labels);
        let mut m = self.metrics.lock().unwrap();
        match m.entry(key).or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0)))) {
            Metric::Counter(c) => Counter(Some(Arc::clone(c))),
            other => panic!(
                "metric `{}` already registered as {}",
                metric_key(name, labels),
                other.kind()
            ),
        }
    }

    /// Gauge handle for `name{labels}` (same registration rules).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = metric_key(name, labels);
        let mut m = self.metrics.lock().unwrap();
        match m.entry(key).or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0)))) {
            Metric::Gauge(g) => Gauge(Some(Arc::clone(g))),
            other => panic!(
                "metric `{}` already registered as {}",
                metric_key(name, labels),
                other.kind()
            ),
        }
    }

    /// Histogram handle for `name{labels}` (same registration rules).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = metric_key(name, labels);
        let mut m = self.metrics.lock().unwrap();
        match m.entry(key).or_insert_with(|| Metric::Histogram(Arc::new(HistCell::new()))) {
            Metric::Histogram(h) => Histogram(Some(Arc::clone(h))),
            other => panic!(
                "metric `{}` already registered as {}",
                metric_key(name, labels),
                other.kind()
            ),
        }
    }

    /// Deterministic point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().unwrap();
        let mut snap = Snapshot::default();
        for (key, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(key.clone(), c.load(ORD));
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(key.clone(), g.load(ORD));
                }
                Metric::Histogram(h) => {
                    let mut buckets: Vec<u64> = h.buckets.iter().map(|b| b.load(ORD)).collect();
                    while buckets.last() == Some(&0) {
                        buckets.pop();
                    }
                    let count = h.count.load(ORD);
                    snap.histograms.insert(
                        key.clone(),
                        HistSnapshot {
                            buckets,
                            count,
                            sum: h.sum.load(ORD),
                            min: if count == 0 { 0 } else { h.min.load(ORD) },
                            max: h.max.load(ORD),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Fold a snapshot into the live registry: counters add, gauges keep
    /// the maximum, histogram buckets add. This is how a per-run worker
    /// collector folds into a long-lived aggregate recorder.
    pub fn absorb(&self, snap: &Snapshot) {
        for (key, &v) in &snap.counters {
            let mut m = self.metrics.lock().unwrap();
            match m
                .entry(key.clone())
                .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
            {
                Metric::Counter(c) => {
                    c.fetch_add(v, ORD);
                }
                other => panic!("metric `{key}` already registered as {}", other.kind()),
            }
        }
        for (key, &v) in &snap.gauges {
            let mut m = self.metrics.lock().unwrap();
            match m.entry(key.clone()).or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0))))
            {
                Metric::Gauge(g) => {
                    g.fetch_max(v, ORD);
                }
                other => panic!("metric `{key}` already registered as {}", other.kind()),
            }
        }
        for (key, h) in &snap.histograms {
            let mut m = self.metrics.lock().unwrap();
            match m
                .entry(key.clone())
                .or_insert_with(|| Metric::Histogram(Arc::new(HistCell::new())))
            {
                Metric::Histogram(cell) => {
                    for (i, &b) in h.buckets.iter().enumerate().take(HIST_BUCKETS) {
                        cell.buckets[i].fetch_add(b, ORD);
                    }
                    cell.count.fetch_add(h.count, ORD);
                    cell.sum.fetch_add(h.sum, ORD);
                    if h.count > 0 {
                        cell.min.fetch_min(h.min, ORD);
                        cell.max.fetch_max(h.max, ORD);
                    }
                }
                other => panic!("metric `{key}` already registered as {}", other.kind()),
            }
        }
    }
}

/// Exported state of one histogram: trimmed bucket counts plus exact
/// aggregates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Bucket counts under [`bucket_of`], trailing zeros trimmed.
    pub buckets: Vec<u64>,
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merge another histogram in (bucket-wise addition; bucket vectors of
    /// different lengths pad the shorter one).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &b) in other.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
        if other.count > 0 {
            self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A deterministic point-in-time copy of a registry, mergeable across
/// rayon workers and serializable by the export layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by canonical key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by canonical key.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by canonical key.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Counter value by canonical key (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value by canonical key (0 when absent).
    pub fn gauge(&self, key: &str) -> u64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Histogram by canonical key.
    pub fn histogram(&self, key: &str) -> Option<&HistSnapshot> {
        self.histograms.get(key)
    }

    /// Merge another snapshot in: counters add, gauges keep the maximum,
    /// histograms merge bucket-wise. The merge is associative and
    /// commutative, so per-worker snapshots can fold in any order.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(0);
            *e = (*e).max(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn keys_are_canonical() {
        assert_eq!(metric_key("x", &[]), "x");
        assert_eq!(metric_key("x", &[("b", "2"), ("a", "1")]), "x{a=1,b=2}", "labels must sort");
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = Registry::new();
        let c = r.counter("msgs", &[("family", "dos")]);
        c.add(3);
        c.inc();
        let g = r.gauge("peak", &[]);
        g.record_max(10);
        g.record_max(7);
        let h = r.histogram("bits", &[]);
        h.record(0);
        h.record(5);
        h.record(1000);

        let s = r.snapshot();
        assert_eq!(s.counter("msgs{family=dos}"), 4);
        assert_eq!(s.gauge("peak"), 10);
        let hs = s.histogram("bits").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 1005);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 1000);
        assert_eq!(hs.buckets[0], 1); // the zero
        assert_eq!(hs.buckets[bucket_of(5)], 1);
        assert_eq!(hs.buckets[bucket_of(1000)], 1);
    }

    #[test]
    fn same_key_returns_same_cell() {
        let r = Registry::new();
        let a = r.counter("x", &[("k", "v")]);
        let b = r.counter("x", &[("k", "v")]);
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x{k=v}"), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("x", &[]);
        let _ = r.gauge("x", &[]);
    }

    #[test]
    fn noop_handles_record_nothing() {
        let c = Counter::noop();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.record_max(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.record(1);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let mk = |c: u64, g: u64, samples: &[u64]| {
            let r = Registry::new();
            r.counter("c", &[]).add(c);
            r.gauge("g", &[]).record_max(g);
            let h = r.histogram("h", &[]);
            for &s in samples {
                h.record(s);
            }
            r.snapshot()
        };
        let a = mk(1, 10, &[1, 2, 300]);
        let b = mk(5, 3, &[4]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 6);
        assert_eq!(ab.gauge("g"), 10);
        assert_eq!(ab.histogram("h").unwrap().count, 4);
        assert_eq!(ab.histogram("h").unwrap().min, 1);
        assert_eq!(ab.histogram("h").unwrap().max, 300);
    }

    #[test]
    fn registry_absorbs_snapshots() {
        let parent = Registry::new();
        parent.counter("c", &[]).add(10);
        let worker = Registry::new();
        worker.counter("c", &[]).add(5);
        worker.gauge("g", &[]).record_max(7);
        worker.histogram("h", &[]).record(3);
        parent.absorb(&worker.snapshot());
        let s = parent.snapshot();
        assert_eq!(s.counter("c"), 15);
        assert_eq!(s.gauge("g"), 7);
        assert_eq!(s.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn concurrent_updates_are_counted_exactly() {
        let r = std::sync::Arc::new(Registry::new());
        let c = r.counter("n", &[]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.snapshot().counter("n"), 4000);
    }
}
