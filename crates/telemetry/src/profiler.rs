//! The round profiler: wall-clock and work (bits / message events) per
//! simulation phase.
//!
//! The engine brackets each part of a round — deliver, compute, send — in
//! a phase guard; higher layers use the healing / monitor / reconfig /
//! sampling phases. Wall-clock is only sampled when timing is enabled, so
//! a timing-off profile is deterministic (enter counts and work only) and
//! a disabled recorder pays a single branch per guard.
//!
//! Profiler state is observability only: it is never hashed into round
//! digests and never checkpointed, so replay identity is untouched.

use std::sync::atomic::{AtomicU64, Ordering};

const ORD: Ordering = Ordering::Relaxed;

/// The profiled phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Message delivery (engine step 1).
    Deliver,
    /// Local protocol computation (engine step 2).
    Compute,
    /// Outbox collection and send charging (engine step 3).
    Send,
    /// Self-healing bookkeeping (retries, evictions, rejoins).
    Healing,
    /// Invariant monitoring.
    Monitor,
    /// Reconfiguration epochs (sampling + permutation + wiring).
    Reconfig,
    /// Sampling primitives (Algorithms 1/2 and baselines).
    Sampling,
    /// Result/export I/O.
    Io,
}

impl Phase {
    /// Stable lower-case name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Deliver => "deliver",
            Phase::Compute => "compute",
            Phase::Send => "send",
            Phase::Healing => "healing",
            Phase::Monitor => "monitor",
            Phase::Reconfig => "reconfig",
            Phase::Sampling => "sampling",
            Phase::Io => "io",
        }
    }

    /// Every phase, in export order.
    pub const ALL: [Phase; 8] = [
        Phase::Deliver,
        Phase::Compute,
        Phase::Send,
        Phase::Healing,
        Phase::Monitor,
        Phase::Reconfig,
        Phase::Sampling,
        Phase::Io,
    ];

    /// Parse an exported name back (for report tooling).
    pub fn from_name(s: &str) -> Option<Self> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::Deliver => 0,
            Phase::Compute => 1,
            Phase::Send => 2,
            Phase::Healing => 3,
            Phase::Monitor => 4,
            Phase::Reconfig => 5,
            Phase::Sampling => 6,
            Phase::Io => 7,
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct PhaseCell {
    pub enters: AtomicU64,
    pub wall_ns: AtomicU64,
    pub bits: AtomicU64,
    pub msgs: AtomicU64,
}

/// Per-phase accumulators, updated lock-free.
#[derive(Debug, Default)]
pub struct RoundProfiler {
    pub(crate) cells: [PhaseCell; Phase::ALL.len()],
}

impl RoundProfiler {
    /// Count one phase entry.
    pub(crate) fn enter(&self, phase: Phase) {
        self.cells[phase.index()].enters.fetch_add(1, ORD);
    }

    /// Add measured wall-clock time.
    pub(crate) fn add_wall_ns(&self, phase: Phase, ns: u64) {
        self.cells[phase.index()].wall_ns.fetch_add(ns, ORD);
    }

    /// Attribute communication work to a phase.
    pub(crate) fn add_work(&self, phase: Phase, bits: u64, msgs: u64) {
        let cell = &self.cells[phase.index()];
        cell.bits.fetch_add(bits, ORD);
        cell.msgs.fetch_add(msgs, ORD);
    }

    /// Deterministic copy. `timing` controls whether wall-clock totals are
    /// included (they are zeroed otherwise, keeping exports byte-stable).
    pub fn snapshot(&self, timing: bool) -> ProfilerSnapshot {
        ProfilerSnapshot {
            phases: Phase::ALL
                .iter()
                .map(|&p| {
                    let cell = &self.cells[p.index()];
                    PhaseStat {
                        phase: p,
                        enters: cell.enters.load(ORD),
                        wall_ns: if timing { cell.wall_ns.load(ORD) } else { 0 },
                        bits: cell.bits.load(ORD),
                        msgs: cell.msgs.load(ORD),
                    }
                })
                .collect(),
        }
    }
}

/// One phase's accumulated totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// The phase.
    pub phase: Phase,
    /// Times the phase was entered.
    pub enters: u64,
    /// Accumulated wall-clock nanoseconds (0 with timing off).
    pub wall_ns: u64,
    /// Bits of communication work attributed to the phase.
    pub bits: u64,
    /// Message events attributed to the phase.
    pub msgs: u64,
}

/// Point-in-time copy of the profiler, in fixed phase order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfilerSnapshot {
    /// One entry per [`Phase::ALL`] member, in that order.
    pub phases: Vec<PhaseStat>,
}

impl ProfilerSnapshot {
    /// The totals for `phase` (all zeros when the phase never ran or the
    /// profile is empty).
    pub fn stat(&self, phase: Phase) -> PhaseStat {
        self.phases.iter().copied().find(|p| p.phase == phase).unwrap_or(PhaseStat {
            phase,
            enters: 0,
            wall_ns: 0,
            bits: 0,
            msgs: 0,
        })
    }

    /// Phases actually entered, hottest first (by wall-clock when timed,
    /// by enter count otherwise).
    pub fn hottest(&self) -> Vec<PhaseStat> {
        let mut v: Vec<PhaseStat> = self.phases.iter().copied().filter(|p| p.enters > 0).collect();
        let timed = v.iter().any(|p| p.wall_ns > 0);
        if timed {
            v.sort_by_key(|p| std::cmp::Reverse(p.wall_ns));
        } else {
            v.sort_by_key(|p| std::cmp::Reverse(p.enters));
        }
        v
    }

    /// Merge another profile in (element-wise addition).
    pub fn merge(&mut self, other: &ProfilerSnapshot) {
        if self.phases.is_empty() {
            self.phases = other.phases.clone();
            return;
        }
        for stat in &other.phases {
            if let Some(mine) = self.phases.iter_mut().find(|p| p.phase == stat.phase) {
                mine.enters += stat.enters;
                mine.wall_ns += stat.wall_ns;
                mine.bits += stat.bits;
                mine.msgs += stat.msgs;
            } else {
                self.phases.push(*stat);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_snapshot() {
        let p = RoundProfiler::default();
        p.enter(Phase::Deliver);
        p.enter(Phase::Deliver);
        p.add_work(Phase::Deliver, 128, 2);
        p.add_wall_ns(Phase::Deliver, 500);
        let timed = p.snapshot(true);
        let stat = timed.phases[Phase::Deliver.index()];
        assert_eq!((stat.enters, stat.bits, stat.msgs, stat.wall_ns), (2, 128, 2, 500));
        let untimed = p.snapshot(false);
        assert_eq!(untimed.phases[Phase::Deliver.index()].wall_ns, 0, "timing off zeroes wall");
    }

    #[test]
    fn hottest_sorts_by_wall_then_enters() {
        let p = RoundProfiler::default();
        p.enter(Phase::Deliver);
        p.enter(Phase::Compute);
        p.enter(Phase::Compute);
        let untimed = p.snapshot(false).hottest();
        assert_eq!(untimed[0].phase, Phase::Compute);
        p.add_wall_ns(Phase::Deliver, 999);
        p.add_wall_ns(Phase::Compute, 1);
        let timed = p.snapshot(true).hottest();
        assert_eq!(timed[0].phase, Phase::Deliver);
    }

    #[test]
    fn profile_merge_adds() {
        let a = RoundProfiler::default();
        a.enter(Phase::Send);
        a.add_work(Phase::Send, 10, 1);
        let b = RoundProfiler::default();
        b.enter(Phase::Send);
        b.add_work(Phase::Send, 5, 2);
        let mut s = a.snapshot(false);
        s.merge(&b.snapshot(false));
        let stat = s.phases[Phase::Send.index()];
        assert_eq!((stat.enters, stat.bits, stat.msgs), (2, 15, 3));
    }

    #[test]
    fn names_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }
}
