//! # telemetry — unified observability for the overlay stack
//!
//! The paper's claims are quantitative — per-node communication work
//! (Section 1.1), reconfiguration rounds (Theorem 5), congestion and
//! empty-segment bounds (Lemmas 11–12) — so the reproduction measures
//! everything through one recorder with three pillars:
//!
//! * a **metrics registry** ([`registry`]) — named counters, gauges and
//!   log-bucketed histograms with labels, an atomic hot path, and
//!   deterministic snapshot/merge for rayon workers;
//! * **structured spans and events** ([`span`]) — scoped timers plus typed
//!   protocol events (sampling, epochs, healing, violations, adversary
//!   decisions, checkpoints), ring-buffered with overflow accounting;
//! * a **round profiler** ([`profiler`]) — wall-clock and work per
//!   simulation phase (deliver/compute/send, healing, monitor, ...).
//!
//! ## The two guarantees
//!
//! **Zero overhead when disabled.** [`Telemetry::disabled`] carries no
//! state; every operation on it is a single branch, and handles vended by
//! it are no-ops. The simulation engine runs with a disabled recorder
//! unless one is attached.
//!
//! **Determinism when enabled.** With wall-clock timing off (the default)
//! every exported byte is a pure function of the run: metric keys sort
//! canonically, event sequence numbers are assigned in emission order, and
//! profiler wall-clock fields are zeroed. Telemetry is never hashed into
//! round digests and never checkpointed, so replay identity is untouched
//! either way — the CI determinism guard pins this.
//!
//! ## Env knobs
//!
//! | variable | effect |
//! |---|---|
//! | `TELEMETRY=off` | [`Telemetry::from_env`] returns the disabled recorder |
//! | `TELEMETRY_TIMING=1` | sample wall-clock in spans and phase guards |
//! | `TELEMETRY_EVENTS_CAP=N` | event ring capacity (default 4096) |

pub mod export;
pub mod profiler;
pub mod registry;
pub mod span;

pub use export::RunTelemetry;
pub use profiler::{Phase, PhaseStat, ProfilerSnapshot};
pub use registry::{Counter, Gauge, HistSnapshot, Histogram, Snapshot};
pub use span::{Event, EventKind};

use profiler::RoundProfiler;
use registry::Registry;
use span::EventRing;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default event-ring capacity.
pub const DEFAULT_EVENTS_CAP: usize = 4096;

/// Recorder configuration (see the crate docs for the env knobs).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Record anything at all?
    pub enabled: bool,
    /// Sample wall-clock time in spans and phase guards. Off keeps every
    /// export byte-deterministic.
    pub timing: bool,
    /// Event ring capacity.
    pub events_cap: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self { enabled: true, timing: false, events_cap: DEFAULT_EVENTS_CAP }
    }
}

impl Config {
    /// Read the `TELEMETRY*` env knobs (defaults: enabled, timing off,
    /// cap 4096).
    pub fn from_env() -> Self {
        let enabled = !matches!(
            std::env::var("TELEMETRY").as_deref(),
            Ok("off") | Ok("0") | Ok("false") | Ok("none")
        );
        let timing =
            matches!(std::env::var("TELEMETRY_TIMING").as_deref(), Ok("1") | Ok("on") | Ok("true"));
        let events_cap = std::env::var("TELEMETRY_EVENTS_CAP")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_EVENTS_CAP);
        Self { enabled, timing, events_cap }
    }
}

#[derive(Debug)]
struct Inner {
    timing: bool,
    registry: Registry,
    events: Mutex<EventRing>,
    profiler: RoundProfiler,
}

/// The recorder handle. Cloning shares the underlying collector;
/// [`Telemetry::with_labels`] derives a handle that stamps base labels on
/// every metric it registers (family, phase, node-class, ...).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    labels: Vec<(String, String)>,
}

impl Telemetry {
    /// The no-op recorder: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled collector with the given configuration.
    pub fn new(cfg: Config) -> Self {
        if !cfg.enabled {
            return Self::disabled();
        }
        Self {
            inner: Some(Arc::new(Inner {
                timing: cfg.timing,
                registry: Registry::new(),
                events: Mutex::new(EventRing::new(cfg.events_cap)),
                profiler: RoundProfiler::default(),
            })),
            labels: Vec::new(),
        }
    }

    /// An enabled, timing-off collector — the deterministic default used
    /// by instrumented runners.
    pub fn collector() -> Self {
        Self::new(Config { enabled: true, timing: false, events_cap: DEFAULT_EVENTS_CAP })
    }

    /// Recorder configured from the `TELEMETRY*` env knobs.
    pub fn from_env() -> Self {
        Self::new(Config::from_env())
    }

    /// Is anything recorded at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Is wall-clock timing sampled?
    pub fn timing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.timing)
    }

    /// A handle sharing this collector that stamps `labels` onto every
    /// metric it registers (appended to any labels the call site passes).
    pub fn with_labels(&self, labels: &[(&str, &str)]) -> Telemetry {
        let mut out = self.clone();
        out.labels.extend(labels.iter().map(|(k, v)| (k.to_string(), v.to_string())));
        out
    }

    fn merged<'a>(&'a self, labels: &'a [(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut all: Vec<(&str, &str)> =
            self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        all.extend_from_slice(labels);
        all
    }

    /// Counter handle (no-op on a disabled recorder).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name, &self.merged(labels)),
            None => Counter::noop(),
        }
    }

    /// Gauge handle (no-op on a disabled recorder).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name, &self.merged(labels)),
            None => Gauge::noop(),
        }
    }

    /// Histogram handle (no-op on a disabled recorder).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(name, &self.merged(labels)),
            None => Histogram::noop(),
        }
    }

    /// Record a typed event. `detail` is only rendered when the recorder
    /// is enabled, so formatting costs nothing on the no-op path.
    #[inline]
    pub fn emit(
        &self,
        round: u64,
        kind: EventKind,
        node: Option<u64>,
        value: u64,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(i) = &self.inner {
            i.events.lock().unwrap().push(round, kind, node, value, detail());
        }
    }

    /// Open a scoped span: the guard bumps `span.count{span=name}` on drop
    /// and, when timing is on, records elapsed nanoseconds into
    /// `span.ns{span=name}`.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { count: Counter::noop(), ns: Histogram::noop(), start: None },
            Some(i) => {
                let span_label = [("span", name)];
                let labels = self.merged(&span_label);
                SpanGuard {
                    count: i.registry.counter("span.count", &labels),
                    ns: if i.timing {
                        i.registry.histogram("span.ns", &labels)
                    } else {
                        Histogram::noop()
                    },
                    start: i.timing.then(Instant::now),
                }
            }
        }
    }

    /// Bracket a profiled phase: the guard counts the entry and, when
    /// timing is on, accumulates wall-clock on drop.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseGuard {
        match &self.inner {
            None => PhaseGuard { inner: None, phase, start: None },
            Some(i) => {
                i.profiler.enter(phase);
                PhaseGuard { inner: Some(Arc::clone(i)), phase, start: i.timing.then(Instant::now) }
            }
        }
    }

    /// Attribute communication work (bits, message events) to a phase.
    #[inline]
    pub fn add_work(&self, phase: Phase, bits: u64, msgs: u64) {
        if let Some(i) = &self.inner {
            i.profiler.add_work(phase, bits, msgs);
        }
    }

    /// Deterministic snapshot of the metrics registry (empty when
    /// disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.inner.as_ref().map(|i| i.registry.snapshot()).unwrap_or_default()
    }

    /// Retained events plus the overflow count (empty when disabled).
    pub fn events(&self) -> (Vec<Event>, u64) {
        match &self.inner {
            None => (Vec::new(), 0),
            Some(i) => {
                let ring = i.events.lock().unwrap();
                (ring.events().cloned().collect(), ring.overflow)
            }
        }
    }

    /// Profiler snapshot (wall-clock zeroed unless timing is on; empty
    /// when disabled).
    pub fn profile(&self) -> ProfilerSnapshot {
        self.inner.as_ref().map(|i| i.profiler.snapshot(i.timing)).unwrap_or_default()
    }

    /// Fold another recorder's state into this one: counters add, gauges
    /// keep maxima, histogram buckets add, events append (renumbered),
    /// profiler phases add. Used by instrumented runners to fold a per-run
    /// collector into a long-lived experiment recorder.
    pub fn absorb(&self, other: &Telemetry) {
        let Some(i) = &self.inner else { return };
        if !other.enabled() {
            return;
        }
        i.registry.absorb(&other.snapshot());
        let (events, overflow) = other.events();
        {
            let mut ring = i.events.lock().unwrap();
            ring.overflow += overflow;
            for ev in events {
                ring.push(ev.round, ev.kind, ev.node, ev.value, ev.detail);
            }
        }
        i.profiler.absorb(&other.profile());
    }

    /// Capture everything into an exportable [`RunTelemetry`] record.
    /// `meta` is free-form run description (experiment id, seed, config).
    pub fn capture(&self, meta: &[(&str, &str)]) -> RunTelemetry {
        let (events, events_overflow) = self.events();
        RunTelemetry {
            meta: meta.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            timing: self.timing(),
            snapshot: self.snapshot(),
            events,
            events_overflow,
            profile: self.profile(),
        }
    }
}

impl RoundProfiler {
    /// Element-wise addition of a snapshot (see [`Telemetry::absorb`]).
    pub(crate) fn absorb(&self, snap: &ProfilerSnapshot) {
        for stat in &snap.phases {
            let cell = &self.cells[stat.phase.index()];
            use std::sync::atomic::Ordering::Relaxed;
            cell.enters.fetch_add(stat.enters, Relaxed);
            cell.wall_ns.fetch_add(stat.wall_ns, Relaxed);
            cell.bits.fetch_add(stat.bits, Relaxed);
            cell.msgs.fetch_add(stat.msgs, Relaxed);
        }
    }
}

/// Scoped span guard (see [`Telemetry::span`]).
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    count: Counter,
    ns: Histogram,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.count.inc();
        if let Some(start) = self.start {
            self.ns.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Scoped phase guard (see [`Telemetry::phase`]).
#[must_use = "a phase guard measures the scope it lives in"]
pub struct PhaseGuard {
    inner: Option<Arc<Inner>>,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let (Some(i), Some(start)) = (&self.inner, self.start) {
            i.profiler.add_wall_ns(self.phase, start.elapsed().as_nanos() as u64);
        }
    }
}

/// `span!(tel, "epoch")` — open a scoped span on recorder `tel`.
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        $tel.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_noop() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.counter("c", &[]).add(5);
        t.gauge("g", &[]).record_max(5);
        t.histogram("h", &[]).record(5);
        t.emit(0, EventKind::Crash, None, 0, || unreachable!("detail must not render"));
        {
            let _s = t.span("x");
            let _p = t.phase(Phase::Compute);
        }
        t.add_work(Phase::Compute, 10, 1);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.events().0.len(), 0);
        assert!(t.profile().phases.is_empty());
    }

    #[test]
    fn base_labels_stamp_every_metric() {
        let t = Telemetry::collector();
        let fam = t.with_labels(&[("family", "dos")]);
        fam.counter("rounds", &[]).inc();
        fam.counter("rounds", &[("phase", "p1")]).inc();
        let s = t.snapshot();
        assert_eq!(s.counter("rounds{family=dos}"), 1);
        assert_eq!(s.counter("rounds{family=dos,phase=p1}"), 1);
    }

    #[test]
    fn spans_count_without_timing() {
        let t = Telemetry::collector();
        for _ in 0..3 {
            let _s = span!(t, "epoch");
        }
        let s = t.snapshot();
        assert_eq!(s.counter("span.count{span=epoch}"), 3);
        assert!(s.histogram("span.ns{span=epoch}").is_none(), "no wall-clock with timing off");
    }

    #[test]
    fn spans_time_when_timing_on() {
        let t = Telemetry::new(Config { enabled: true, timing: true, events_cap: 16 });
        {
            let _s = t.span("work");
        }
        let s = t.snapshot();
        assert_eq!(s.counter("span.count{span=work}"), 1);
        assert_eq!(s.histogram("span.ns{span=work}").unwrap().count, 1);
    }

    #[test]
    fn phases_profile_work_and_enters() {
        let t = Telemetry::collector();
        {
            let _p = t.phase(Phase::Deliver);
            t.add_work(Phase::Deliver, 256, 4);
        }
        let prof = t.profile();
        let stat = prof.phases[Phase::Deliver.index()];
        assert_eq!((stat.enters, stat.bits, stat.msgs, stat.wall_ns), (1, 256, 4, 0));
    }

    #[test]
    fn events_flow_into_the_ring() {
        let t = Telemetry::new(Config { enabled: true, timing: false, events_cap: 2 });
        t.emit(1, EventKind::Desync, Some(7), 0, || "lost broadcast".into());
        t.emit(2, EventKind::Resync, Some(7), 1, String::new);
        t.emit(3, EventKind::Eviction, Some(9), 0, String::new);
        let (events, overflow) = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(overflow, 1);
        assert_eq!(events[0].kind, EventKind::Resync);
        assert_eq!(events[1].node, Some(9));
    }

    #[test]
    fn absorb_folds_a_worker_collector() {
        let parent = Telemetry::collector();
        parent.counter("net.rounds", &[]).add(2);
        let worker = Telemetry::collector();
        worker.counter("net.rounds", &[]).add(3);
        worker.gauge("net.max_node_bits", &[]).record_max(64);
        worker.emit(5, EventKind::EpochFinished, None, 1, String::new);
        {
            let _p = worker.phase(Phase::Sampling);
        }
        parent.absorb(&worker);
        let s = parent.snapshot();
        assert_eq!(s.counter("net.rounds"), 5);
        assert_eq!(s.gauge("net.max_node_bits"), 64);
        assert_eq!(parent.events().0.len(), 1);
        assert_eq!(parent.profile().phases[Phase::Sampling.index()].enters, 1);
    }

    #[test]
    fn identical_runs_capture_identically() {
        let run = || {
            let t = Telemetry::collector();
            for i in 0..10u64 {
                t.counter("c", &[("family", "x")]).add(i);
                t.histogram("h", &[]).record(i * i);
                t.emit(i, EventKind::EpochFinished, Some(i), i, || format!("epoch {i}"));
                let _p = t.phase(Phase::Compute);
            }
            t.capture(&[("exp", "unit"), ("seed", "1")]).to_jsonl()
        };
        assert_eq!(run(), run(), "timing-off capture must be byte-identical");
    }
}
