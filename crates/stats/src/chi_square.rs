//! Chi-square goodness-of-fit testing.
//!
//! Used to check the uniformity claims: Theorem 3 (exactly uniform
//! hypercube samples), Theorem 2 / Lemma 2 (almost uniform H-graph
//! samples), and Lemma 10 (uniformly random reconfigured Hamilton cycles).

/// The chi-square statistic of observed counts against expected counts.
///
/// Panics if the slices differ in length or any expectation is
/// non-positive.
pub fn chi_square_stat(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected count must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Chi-square statistic and p-value of observed counts against the uniform
/// distribution over `observed.len()` cells.
///
/// Returns `(statistic, p_value)` with `df = len - 1`.
pub fn uniform_fit(observed: &[u64]) -> (f64, f64) {
    assert!(observed.len() >= 2, "need at least 2 cells");
    let total: u64 = observed.iter().sum();
    let e = total as f64 / observed.len() as f64;
    let expected = vec![e; observed.len()];
    let stat = chi_square_stat(observed, &expected);
    (stat, chi_square_pvalue(stat, (observed.len() - 1) as f64))
}

/// Upper-tail p-value `P[X >= stat]` for a chi-square distribution with
/// `df` degrees of freedom: the regularized upper incomplete gamma
/// `Q(df/2, stat/2)`.
pub fn chi_square_pvalue(stat: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    if stat <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, stat / 2.0)
}

/// `ln Γ(x)` by the Lanczos approximation (|error| < 2e-10 for x > 0).
fn ln_gamma(x: f64) -> f64 {
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)` by series expansion
/// (valid for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-14 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` by continued fraction
/// (valid for `x >= a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
fn gamma_q(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        (1.0 - gamma_p_series(a, x)).clamp(0.0, 1.0)
    } else {
        gamma_q_cf(a, x).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_perfect_fit_is_zero() {
        let obs = [25u64, 25, 25, 25];
        let exp = [25.0; 4];
        assert_eq!(chi_square_stat(&obs, &exp), 0.0);
    }

    #[test]
    fn known_pvalues() {
        // Reference values from standard chi-square tables.
        assert!((chi_square_pvalue(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_pvalue(18.307, 10.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_pvalue(2.706, 1.0) - 0.10).abs() < 1e-3);
        assert!((chi_square_pvalue(23.209, 10.0) - 0.01).abs() < 1e-3);
    }

    #[test]
    fn pvalue_edges() {
        assert_eq!(chi_square_pvalue(0.0, 5.0), 1.0);
        assert!(chi_square_pvalue(1e6, 5.0) < 1e-12);
    }

    #[test]
    fn uniform_fit_accepts_uniform_data() {
        // Mildly noisy uniform counts should give a comfortable p-value.
        let obs = [103u64, 97, 99, 101, 95, 105];
        let (stat, p) = uniform_fit(&obs);
        assert!(stat < 2.0, "stat {stat}");
        assert!(p > 0.5, "p {p}");
    }

    #[test]
    fn uniform_fit_rejects_skewed_data() {
        let obs = [500u64, 10, 10, 10, 10, 10];
        let (_, p) = uniform_fit(&obs);
        assert!(p < 1e-6);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(5.0) - (24f64).ln()).abs() < 1e-9);
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }
}
