//! Chi-square goodness-of-fit testing.
//!
//! Used to check the uniformity claims: Theorem 3 (exactly uniform
//! hypercube samples), Theorem 2 / Lemma 2 (almost uniform H-graph
//! samples), and Lemma 10 (uniformly random reconfigured Hamilton cycles).

/// The chi-square statistic of observed counts against expected counts.
///
/// Panics if the slices differ in length or any expectation is
/// non-positive.
pub fn chi_square_stat(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected count must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Chi-square statistic and p-value of observed counts against the uniform
/// distribution over `observed.len()` cells.
///
/// Returns `(statistic, p_value)` with `df = len - 1`.
pub fn uniform_fit(observed: &[u64]) -> (f64, f64) {
    assert!(observed.len() >= 2, "need at least 2 cells");
    let total: u64 = observed.iter().sum();
    let e = total as f64 / observed.len() as f64;
    let expected = vec![e; observed.len()];
    let stat = chi_square_stat(observed, &expected);
    (stat, chi_square_pvalue(stat, (observed.len() - 1) as f64))
}

/// Two-sample chi-square homogeneity test: were `a` and `b` drawn from the
/// same distribution over the shared cells?
///
/// Builds the 2 × k contingency table, computes expectations under the
/// pooled (homogeneous) hypothesis, and returns `(statistic, p_value)`
/// with `df = k' - 1` where `k'` counts cells with a non-zero pooled
/// total (both-empty cells carry no information and are skipped). Returns
/// `(0.0, 1.0)` when fewer than two informative cells or either sample is
/// empty — a degenerate table cannot witness a difference.
///
/// The caller is responsible for bucket widths; for validity of the
/// chi-square approximation merge buckets until expected counts are ≥ 5
/// (see `equivalence::merge_low_buckets`).
pub fn homogeneity(a: &[u64], b: &[u64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    if na == 0 || nb == 0 {
        return (0.0, 1.0);
    }
    let n = (na + nb) as f64;
    let (mut stat, mut cells) = (0.0f64, 0usize);
    for (&x, &y) in a.iter().zip(b) {
        let pooled = (x + y) as f64;
        if pooled == 0.0 {
            continue;
        }
        cells += 1;
        let ea = na as f64 * pooled / n;
        let eb = nb as f64 * pooled / n;
        let (da, db) = (x as f64 - ea, y as f64 - eb);
        stat += da * da / ea + db * db / eb;
    }
    if cells < 2 {
        return (0.0, 1.0);
    }
    (stat, chi_square_pvalue(stat, (cells - 1) as f64))
}

/// Upper-tail p-value `P[X >= stat]` for a chi-square distribution with
/// `df` degrees of freedom: the regularized upper incomplete gamma
/// `Q(df/2, stat/2)`.
pub fn chi_square_pvalue(stat: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    if stat <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, stat / 2.0)
}

/// `ln Γ(x)` by the Lanczos approximation (|error| < 2e-10 for x > 0).
fn ln_gamma(x: f64) -> f64 {
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)` by series expansion
/// (valid for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-14 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` by continued fraction
/// (valid for `x >= a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
fn gamma_q(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        (1.0 - gamma_p_series(a, x)).clamp(0.0, 1.0)
    } else {
        gamma_q_cf(a, x).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_perfect_fit_is_zero() {
        let obs = [25u64, 25, 25, 25];
        let exp = [25.0; 4];
        assert_eq!(chi_square_stat(&obs, &exp), 0.0);
    }

    #[test]
    fn known_pvalues() {
        // Reference values from standard chi-square tables.
        assert!((chi_square_pvalue(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_pvalue(18.307, 10.0) - 0.05).abs() < 1e-3);
        assert!((chi_square_pvalue(2.706, 1.0) - 0.10).abs() < 1e-3);
        assert!((chi_square_pvalue(23.209, 10.0) - 0.01).abs() < 1e-3);
    }

    #[test]
    fn pvalue_edges() {
        assert_eq!(chi_square_pvalue(0.0, 5.0), 1.0);
        assert!(chi_square_pvalue(1e6, 5.0) < 1e-12);
    }

    #[test]
    fn uniform_fit_accepts_uniform_data() {
        // Mildly noisy uniform counts should give a comfortable p-value.
        let obs = [103u64, 97, 99, 101, 95, 105];
        let (stat, p) = uniform_fit(&obs);
        assert!(stat < 2.0, "stat {stat}");
        assert!(p > 0.5, "p {p}");
    }

    #[test]
    fn uniform_fit_rejects_skewed_data() {
        let obs = [500u64, 10, 10, 10, 10, 10];
        let (_, p) = uniform_fit(&obs);
        assert!(p < 1e-6);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(5.0) - (24f64).ln()).abs() < 1e-9);
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn homogeneity_of_identical_tables_is_exact() {
        // Closed form: identical rows give expected == observed in every
        // cell, so the statistic is exactly 0 and p exactly 1.
        let a = [30u64, 50, 20, 0, 40];
        let (stat, p) = homogeneity(&a, &a);
        assert_eq!(stat, 0.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn homogeneity_accepts_uniform_vs_uniform() {
        // Two independent near-uniform draws over 6 cells: the statistic
        // stays far below the rejection region.
        let a = [101u64, 98, 103, 99, 100, 99];
        let b = [97u64, 104, 99, 101, 96, 103];
        let (stat, p) = homogeneity(&a, &b);
        assert!(stat < 5.0, "stat {stat}");
        assert!(p > 0.2, "p {p}");
    }

    #[test]
    fn homogeneity_rejects_shifted_binomial() {
        // Binomial(4, 1/2) scaled to 1600 samples vs the same histogram
        // shifted one cell right: grossly different profiles.
        let a = [100u64, 400, 600, 400, 100, 0];
        let b = [0u64, 100, 400, 600, 400, 100];
        let (_, p) = homogeneity(&a, &b);
        assert!(p < 1e-12, "p {p}");
    }

    #[test]
    fn homogeneity_known_two_by_two_value() {
        // Hand-computed 2×2 table: a = [10, 20], b = [20, 10].
        // Pooled = [30, 30], N = 60, every expectation is 15, each of the
        // four cells contributes 25/15, stat = 100/15 = 6.666…, df = 1.
        let (stat, p) = homogeneity(&[10, 20], &[20, 10]);
        assert!((stat - 100.0 / 15.0).abs() < 1e-12, "stat {stat}");
        assert!((p - chi_square_pvalue(100.0 / 15.0, 1.0)).abs() < 1e-15);
    }

    #[test]
    fn homogeneity_degenerate_tables_are_inconclusive() {
        // Single-bucket histograms (or all mass pooled in one cell) have
        // df = 0: nothing can be rejected.
        assert_eq!(homogeneity(&[42], &[17]), (0.0, 1.0));
        assert_eq!(homogeneity(&[5, 0, 0], &[9, 0, 0]), (0.0, 1.0));
        // Empty samples are likewise inconclusive, not a panic.
        assert_eq!(homogeneity(&[0, 0], &[3, 4]), (0.0, 1.0));
    }

    #[test]
    fn homogeneity_skips_empty_cells() {
        // A both-zero cell must not change the result.
        let (s1, p1) = homogeneity(&[10, 20], &[20, 10]);
        let (s2, p2) = homogeneity(&[10, 0, 20], &[20, 0, 10]);
        assert_eq!(s1, s2);
        assert_eq!(p1, p2);
    }
}
