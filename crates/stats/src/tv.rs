//! Total-variation distance.
//!
//! Lemma 2 bounds the pointwise deviation of the walk distribution from
//! uniform by `n^-alpha`; the corresponding aggregate measure is the
//! total-variation distance, which the sampling experiments report.

/// Total-variation distance between two distributions given as
/// probability vectors: `0.5 * sum |p_i - q_i|`.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Total-variation distance of empirical counts from the uniform
/// distribution over `support` outcomes. `counts` may omit zero cells;
/// the remaining `support - counts.len()` cells are treated as zeros.
pub fn tv_distance_uniform(counts: &[u64], support: usize) -> f64 {
    assert!(support >= counts.len(), "support smaller than observed cells");
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let u = 1.0 / support as f64;
    let observed: f64 = counts.iter().map(|&c| (c as f64 / total as f64 - u).abs()).sum();
    let missing = (support - counts.len()) as f64 * u;
    0.5 * (observed + missing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_distance_one() {
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
    }

    #[test]
    fn uniform_counts_have_small_distance() {
        let counts = [100u64, 100, 100, 100];
        assert_eq!(tv_distance_uniform(&counts, 4), 0.0);
    }

    #[test]
    fn concentrated_counts_have_large_distance() {
        // Everything on one of 4 cells: TV = 0.5 * (3/4 + 3 * 1/4) = 0.75.
        let counts = [400u64, 0, 0, 0];
        assert!((tv_distance_uniform(&counts, 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn implicit_zero_cells_count() {
        // Uniform over observed 2 cells, but support is 4.
        let counts = [50u64, 50];
        // each observed cell: |1/2 - 1/4| = 1/4; missing mass 2 * 1/4.
        assert!((tv_distance_uniform(&counts, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_are_zero_distance() {
        assert_eq!(tv_distance_uniform(&[], 10), 0.0);
    }

    #[test]
    fn shifted_binomial_has_closed_form_distance() {
        // Binomial(2, 1/2) = [1/4, 1/2, 1/4] against itself shifted one
        // cell right: TV = 0.5 * (1/4 + 1/4 + 1/4 + 1/4) = 1/2.
        let p = [0.25, 0.5, 0.25, 0.0];
        let q = [0.0, 0.25, 0.5, 0.25];
        assert!((tv_distance(&p, &q) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn degenerate_single_bucket_histograms() {
        // All mass in one cell on both sides: identical point masses are
        // at distance 0, disjoint point masses at the maximum 1.
        assert_eq!(tv_distance(&[1.0], &[1.0]), 0.0);
        assert_eq!(tv_distance(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]), 1.0);
        // Uniform over a support of one cell IS the point mass.
        assert_eq!(tv_distance_uniform(&[999], 1), 0.0);
    }

    #[test]
    fn uniform_vs_uniform_counts_at_different_scales() {
        // Same uniform shape at different sample sizes: exactly zero.
        let small = [10u64, 10, 10, 10];
        assert_eq!(tv_distance_uniform(&small, 4), 0.0);
        let large = [100_000u64; 4];
        assert_eq!(tv_distance_uniform(&large, 4), 0.0);
    }
}
