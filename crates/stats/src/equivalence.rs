//! Statistical-equivalence harness for relaxed-order execution modes.
//!
//! The simnet-xl fast mode (`SIMNET_BACKEND=xl:fast`) relaxes the global
//! message-delivery order, so its runs are *not* bit-identical to the
//! parity/legacy digest stream — the claim to validate is weaker and
//! distributional: for every observable the paper's theorems speak about
//! (walk-outcome distributions, node degrees, group sizes, per-round event
//! counts), fast runs are drawn from the same distribution as parity runs.
//!
//! This module is that validation layer, consumed by
//! `tests/fast_mode_equivalence.rs`. The protocol, per comparison:
//!
//! 1. **Seed replication.** The caller gathers counts from R independent
//!    seeds per mode and pools them (`pool_counts`), so a single unlucky
//!    seed cannot dominate and the sample sizes are honest inputs to the
//!    thresholds below.
//! 2. **TV distance** ([`crate::tv_distance`]) between the two pooled
//!    empirical distributions, rejected above [`tv_threshold`]. For two
//!    empirical distributions with `n1`/`n2` samples over `k` cells,
//!    `E[TV] ≤ (√(k/n1) + √(k/n2))/2` (per-cell binomial deviation plus
//!    Cauchy–Schwarz), so the threshold is **3×** that bound: far enough
//!    out that same-distribution pairs pass with huge margin, close enough
//!    that a constant-offset bias (the failure mode a reordering bug
//!    produces) still trips it.
//! 3. **Chi-square homogeneity** ([`crate::chi_square::homogeneity`]) on
//!    the same table after [`merge_low_buckets`] (pooled expectations ≥ 5,
//!    the classical validity rule), rejected below `alpha`. The default
//!    `alpha = 1e-4` is deliberately conservative: one suite runs dozens
//!    of comparisons, and at 1e-4 the familywise false-reject rate stays
//!    below ~1% while a genuine distribution shift at these sample sizes
//!    yields p-values many orders of magnitude smaller.
//!
//! Both tests run because they fail differently: TV catches bulk mass
//! shifts but dilutes tail differences; chi-square is sharp on per-cell
//! deviations but blind below its bucket-merge floor.

use crate::chi_square::homogeneity;
use crate::tv::tv_distance;

/// Rejection thresholds of the harness. See the module docs for the
/// rationale behind each default.
#[derive(Clone, Copy, Debug)]
pub struct EquivalenceConfig {
    /// Per-test chi-square rejection level (reject when `p < alpha`).
    pub alpha: f64,
    /// Safety factor on the expected-TV bound of two same-distribution
    /// empirical samples; 3.0 by default.
    pub tv_safety: f64,
    /// Minimum pooled expected count per chi-square bucket; adjacent
    /// buckets are merged below it. 5.0 is the classical validity rule.
    pub min_expected: f64,
}

impl Default for EquivalenceConfig {
    fn default() -> Self {
        Self { alpha: 1e-4, tv_safety: 3.0, min_expected: 5.0 }
    }
}

/// One named comparison in a report: what was tested, the statistic, the
/// threshold it was held against, and the verdict.
#[derive(Clone, Debug)]
pub struct EquivalenceCheck {
    /// Caller-supplied label, e.g. `"hgraph/outcomes/tv"`.
    pub name: String,
    /// The computed statistic (TV distance, or chi-square p-value).
    pub statistic: f64,
    /// The bound it must respect (upper for TV, lower for p-values).
    pub threshold: f64,
    /// Whether the comparison passed.
    pub passed: bool,
    /// Human-readable context for failure messages.
    pub detail: String,
}

/// Outcome of a batch of comparisons.
#[derive(Clone, Debug, Default)]
pub struct EquivalenceReport {
    /// Every check run, in submission order.
    pub checks: Vec<EquivalenceCheck>,
}

impl EquivalenceReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failing checks.
    pub fn failures(&self) -> impl Iterator<Item = &EquivalenceCheck> {
        self.checks.iter().filter(|c| !c.passed)
    }

    /// Panic with a readable summary of every failing check; no-op when
    /// all passed. Intended for use in tests.
    pub fn assert_ok(&self) {
        if self.passed() {
            return;
        }
        let mut msg = String::from("statistical-equivalence failures:\n");
        for c in self.failures() {
            msg.push_str(&format!(
                "  {}: statistic {:.6} vs threshold {:.6} ({})\n",
                c.name, c.statistic, c.threshold, c.detail
            ));
        }
        msg.push_str(&format!(
            "({} of {} checks failed)",
            self.failures().count(),
            self.checks.len()
        ));
        panic!("{msg}");
    }
}

/// The TV-distance rejection threshold for two empirical distributions of
/// `n1` and `n2` samples over `support` cells: `safety` times the
/// expected-TV bound `(√(k/n1) + √(k/n2))/2`, clamped to `1.0` (TV cannot
/// exceed 1, so tiny samples are effectively unfalsifiable — by design).
pub fn tv_threshold(n1: u64, n2: u64, support: usize, safety: f64) -> f64 {
    if n1 == 0 || n2 == 0 || support == 0 {
        return 1.0;
    }
    let k = support as f64;
    let bound = 0.5 * ((k / n1 as f64).sqrt() + (k / n2 as f64).sqrt());
    (safety * bound).min(1.0)
}

/// Merge adjacent buckets of the paired histograms until every pooled
/// cell count reaches the chi-square validity floor: with row totals
/// `nA`/`nB`, a pooled count of `min_expected · (nA + nB) / min(nA, nB)`
/// guarantees both per-row expectations are ≥ `min_expected`. A trailing
/// underfull remainder is folded into the last kept bucket.
pub fn merge_low_buckets(a: &[u64], b: &[u64], min_expected: f64) -> (Vec<u64>, Vec<u64>) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    if na == 0 || nb == 0 {
        return (a.to_vec(), b.to_vec());
    }
    let floor = min_expected * (na + nb) as f64 / na.min(nb) as f64;
    let (mut ma, mut mb) = (Vec::new(), Vec::new());
    let (mut ca, mut cb) = (0u64, 0u64);
    for (&x, &y) in a.iter().zip(b) {
        ca += x;
        cb += y;
        if (ca + cb) as f64 >= floor {
            ma.push(ca);
            mb.push(cb);
            (ca, cb) = (0, 0);
        }
    }
    if ca + cb > 0 {
        match (ma.last_mut(), mb.last_mut()) {
            (Some(la), Some(lb)) => {
                *la += ca;
                *lb += cb;
            }
            _ => {
                ma.push(ca);
                mb.push(cb);
            }
        }
    }
    (ma, mb)
}

/// Pool per-seed count histograms cell-wise (seed replication step). All
/// histograms must share a length; returns an empty vec for no runs.
pub fn pool_counts(runs: &[Vec<u64>]) -> Vec<u64> {
    let Some(first) = runs.first() else { return Vec::new() };
    let mut pooled = vec![0u64; first.len()];
    for run in runs {
        assert_eq!(run.len(), pooled.len(), "histogram length mismatch across seeds");
        for (cell, &x) in pooled.iter_mut().zip(run) {
            *cell += x;
        }
    }
    pooled
}

/// Batch builder: feed it paired count tables, collect a report.
#[derive(Debug, Default)]
pub struct EquivalenceHarness {
    cfg: EquivalenceConfig,
    report: EquivalenceReport,
}

impl EquivalenceHarness {
    /// A harness with the given thresholds.
    pub fn new(cfg: EquivalenceConfig) -> Self {
        Self { cfg, report: EquivalenceReport::default() }
    }

    /// Compare two count histograms over the same cells (outcome, degree
    /// or group-size distributions): records one TV check and one
    /// chi-square homogeneity check under `name`.
    pub fn compare_counts(&mut self, name: &str, parity: &[u64], fast: &[u64]) {
        assert_eq!(parity.len(), fast.len(), "{name}: histogram length mismatch");
        let n1: u64 = parity.iter().sum();
        let n2: u64 = fast.iter().sum();
        let support = parity.iter().zip(fast).filter(|(&a, &b)| a + b > 0).count();

        let (p_dist, q_dist): (Vec<f64>, Vec<f64>) = if n1 == 0 || n2 == 0 {
            (vec![], vec![])
        } else {
            (
                parity.iter().map(|&c| c as f64 / n1 as f64).collect(),
                fast.iter().map(|&c| c as f64 / n2 as f64).collect(),
            )
        };
        let tv = if p_dist.is_empty() {
            // One side empty: equal only if both are.
            if n1 == n2 {
                0.0
            } else {
                1.0
            }
        } else {
            tv_distance(&p_dist, &q_dist)
        };
        let tv_max = tv_threshold(n1, n2, support, self.cfg.tv_safety);
        self.report.checks.push(EquivalenceCheck {
            name: format!("{name}/tv"),
            statistic: tv,
            threshold: tv_max,
            passed: tv <= tv_max,
            detail: format!("TV over {support} cells, samples {n1} vs {n2}"),
        });

        let (ma, mb) = merge_low_buckets(parity, fast, self.cfg.min_expected);
        let (stat, p) = homogeneity(&ma, &mb);
        self.report.checks.push(EquivalenceCheck {
            name: format!("{name}/chi2"),
            statistic: p,
            threshold: self.cfg.alpha,
            passed: p >= self.cfg.alpha,
            detail: format!("chi² {stat:.3} over {} merged cells", ma.len()),
        });
    }

    /// Compare per-round event-count series (delivered/dropped/… per
    /// round). Rounds act as the cells of a homogeneity table; the
    /// question is whether the two modes spread the same event mass over
    /// time the same way.
    pub fn compare_round_counts(&mut self, name: &str, parity: &[u64], fast: &[u64]) {
        self.compare_counts(name, parity, fast);
    }

    /// Consume the harness, yielding the report.
    pub fn finish(self) -> EquivalenceReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histograms_pass() {
        let mut h = EquivalenceHarness::new(EquivalenceConfig::default());
        let counts = [1000u64, 2000, 3000, 2000, 1000];
        h.compare_counts("identical", &counts, &counts);
        let report = h.finish();
        assert!(report.passed(), "{report:?}");
        report.assert_ok();
    }

    #[test]
    fn noisy_same_distribution_passes() {
        // Two binomial-ish draws of ~8000 samples that differ only by
        // sampling noise (well within one standard deviation per cell).
        let a = [510u64, 1980, 3010, 1990, 510];
        let b = [490u64, 2020, 2985, 2015, 490];
        let mut h = EquivalenceHarness::new(EquivalenceConfig::default());
        h.compare_counts("noisy", &a, &b);
        h.finish().assert_ok();
    }

    #[test]
    fn shifted_binomial_fails_both_tests() {
        let a = [1000u64, 4000, 6000, 4000, 1000, 0];
        let b = [0u64, 1000, 4000, 6000, 4000, 1000];
        let mut h = EquivalenceHarness::new(EquivalenceConfig::default());
        h.compare_counts("shifted", &a, &b);
        let report = h.finish();
        assert_eq!(report.failures().count(), 2, "{report:?}");
    }

    #[test]
    fn degenerate_single_bucket_is_vacuously_equivalent() {
        // All mass in one cell on both sides: no degrees of freedom, and
        // the TV distance between the two point masses is zero.
        let mut h = EquivalenceHarness::new(EquivalenceConfig::default());
        h.compare_counts("degenerate", &[12345], &[54321]);
        h.finish().assert_ok();
    }

    #[test]
    fn tv_threshold_shrinks_with_samples_and_grows_with_support() {
        let loose = tv_threshold(100, 100, 10, 3.0);
        let tight = tv_threshold(100_000, 100_000, 10, 3.0);
        assert!(tight < loose);
        assert!(tv_threshold(100_000, 100_000, 100, 3.0) > tight);
        assert_eq!(tv_threshold(0, 50, 4, 3.0), 1.0, "empty sample is unfalsifiable");
        // 3·(√(k/n1)+√(k/n2))/2 at k=4, n=400: 3·(0.1+0.1)/2 = 0.3.
        assert!((tv_threshold(400, 400, 4, 3.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn merge_low_buckets_reaches_the_floor() {
        let a = [1u64, 1, 1, 1, 1, 1, 100];
        let b = [1u64, 1, 1, 1, 1, 1, 100];
        let (ma, mb) = merge_low_buckets(&a, &b, 5.0);
        assert_eq!(ma, mb);
        // Floor is 5 * 212/106 = 10 pooled; the six 1-cells merge until
        // they hit it (pairs pool to 4, so all six fold forward).
        let na: u64 = ma.iter().sum();
        assert_eq!(na, 106);
        for (i, (&x, &y)) in ma.iter().zip(&mb).enumerate() {
            // Every merged cell except possibly the last satisfies the floor.
            if i + 1 < ma.len() {
                assert!(x + y >= 10, "cell {i}: {x}+{y}");
            }
        }
    }

    #[test]
    fn pool_counts_sums_cellwise() {
        let runs = vec![vec![1u64, 2, 3], vec![10, 20, 30], vec![100, 200, 300]];
        assert_eq!(pool_counts(&runs), vec![111, 222, 333]);
        assert!(pool_counts(&[]).is_empty());
    }
}
