//! Growth-shape fitting.
//!
//! The headline quantitative claim of the paper is that rapid node sampling
//! and reconfiguration take `Θ(log log n)` rounds while the plain
//! random-walk approach needs `Θ(log n)` — an exponential separation. The
//! experiments verify the *shape* of measured round counts by least-squares
//! fitting `y = a + b·f(n)` for `f = log2` and `f = log2 ∘ log2` and
//! comparing goodness of fit.

use serde::{Deserialize, Serialize};

/// Result of fitting `y = a + b * f(n)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GrowthFit {
    /// Intercept.
    pub a: f64,
    /// Slope with respect to the transformed predictor.
    pub b: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r2: f64,
}

/// Least-squares fit of `y = a + b * x`.
fn linear_fit(x: &[f64], y: &[f64]) -> GrowthFit {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    let b = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let a = my - b * mx;
    let ss_res: f64 = x.iter().zip(y).map(|(xi, yi)| (yi - (a + b * xi)).powi(2)).sum();
    let ss_tot: f64 = y.iter().map(|yi| (yi - my).powi(2)).sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    GrowthFit { a, b, r2 }
}

/// Fit `y = a + b * log2(n)`.
pub fn fit_log(ns: &[u64], ys: &[f64]) -> GrowthFit {
    let x: Vec<f64> = ns.iter().map(|&n| (n.max(2) as f64).log2()).collect();
    linear_fit(&x, ys)
}

/// Fit `y = a + b * log2(log2(n))`.
pub fn fit_loglog(ns: &[u64], ys: &[f64]) -> GrowthFit {
    let x: Vec<f64> = ns.iter().map(|&n| (n.max(4) as f64).log2().log2()).collect();
    linear_fit(&x, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns() -> Vec<u64> {
        (8..=24).map(|e| 1u64 << e).collect()
    }

    #[test]
    fn loglog_series_prefers_loglog_fit() {
        let ns = ns();
        let ys: Vec<f64> = ns.iter().map(|&n| 3.0 + 2.0 * (n as f64).log2().log2()).collect();
        let ll = fit_loglog(&ns, &ys);
        let l = fit_log(&ns, &ys);
        assert!(ll.r2 > 0.999);
        assert!((ll.b - 2.0).abs() < 1e-9);
        assert!(ll.r2 > l.r2);
    }

    #[test]
    fn log_series_prefers_log_fit() {
        let ns = ns();
        let ys: Vec<f64> = ns.iter().map(|&n| 1.0 + 0.5 * (n as f64).log2()).collect();
        let l = fit_log(&ns, &ys);
        let ll = fit_loglog(&ns, &ys);
        assert!(l.r2 > 0.999);
        assert!((l.b - 0.5).abs() < 1e-9);
        assert!(l.r2 > ll.r2);
    }

    #[test]
    fn constant_series_has_zero_slope() {
        let ns = ns();
        let ys = vec![7.0; ns.len()];
        let fit = fit_log(&ns, &ys);
        assert_eq!(fit.b, 0.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_rejected() {
        fit_log(&[1024], &[3.0]);
    }
}
