//! The paper's Chernoff bounds (Lemma 1) as calculators.
//!
//! For independent binary `X_1..X_n` with `X = sum X_i`, `mu = E[X]`:
//!
//! * `Pr[X >= (1+delta) mu] <= exp(-min(delta^2, delta) mu / 3)` for
//!   `delta > 0`;
//! * `Pr[X <= (1-delta) mu] <= exp(-delta^2 mu / 2)` for `0 < delta < 1`.
//!
//! These are used to size constants: e.g. Lemma 7 chooses `c` so that with
//! `m_i = (2+eps)^(T-i) c log n` the sampling algorithm succeeds w.h.p.;
//! [`smallest_c_for_whp`] computes the smallest such `c`.

/// Upper-tail bound `Pr[X >= (1+delta) mu]`.
pub fn chernoff_upper(delta: f64, mu: f64) -> f64 {
    assert!(delta > 0.0 && mu >= 0.0);
    (-(delta * delta).min(delta) * mu / 3.0).exp()
}

/// Lower-tail bound `Pr[X <= (1-delta) mu]`.
pub fn chernoff_lower(delta: f64, mu: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0 && mu >= 0.0);
    (-delta * delta * mu / 2.0).exp()
}

/// The smallest constant `c` such that with `mu >= c * log2(n)` the
/// upper-tail Chernoff bound at deviation `epsilon` is at most
/// `n^-k` — the "choose a constant c" step of Lemmas 7, 9 and 16.
///
/// Derivation: `exp(-eps^2 c log2(n) / 3) <= n^-k` iff
/// `c >= 3 k ln(2) / eps^2` (using `min(d^2, d) = d^2` for `eps <= 1`).
pub fn smallest_c_for_whp(epsilon: f64, k: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon <= 1.0 && k > 0.0);
    3.0 * k * std::f64::consts::LN_2 / (epsilon * epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_decay_with_mu() {
        assert!(chernoff_upper(0.5, 100.0) < chernoff_upper(0.5, 10.0));
        assert!(chernoff_lower(0.5, 100.0) < chernoff_lower(0.5, 10.0));
    }

    #[test]
    fn upper_bound_uses_linear_regime_for_large_delta() {
        // delta = 4: min(16, 4) = 4.
        let b = chernoff_upper(4.0, 3.0);
        assert!((b - (-4.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_probabilities() {
        for &(d, m) in &[(0.1, 1.0), (0.9, 50.0), (2.0, 7.0)] {
            let u = chernoff_upper(d, m);
            assert!((0.0..=1.0).contains(&u));
        }
        let l = chernoff_lower(0.3, 20.0);
        assert!((0.0..=1.0).contains(&l));
    }

    #[test]
    fn smallest_c_guarantees_the_target() {
        let eps = 0.5;
        let k = 2.0;
        let c = smallest_c_for_whp(eps, k);
        for n in [1u64 << 8, 1u64 << 16, 1u64 << 24] {
            let mu = c * (n as f64).log2();
            let bound = chernoff_upper(eps, mu);
            let target = (n as f64).powf(-k);
            assert!(bound <= target * 1.0001, "n={n}: {bound} > {target}");
        }
    }

    #[test]
    #[should_panic]
    fn lower_bound_rejects_delta_one() {
        chernoff_lower(1.0, 10.0);
    }
}
