//! Descriptive statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample: mean, standard deviation, min/max and
/// selected percentiles.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample. Returns the zero summary for empty input.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
        }
    }

    /// Summarize integer-valued observations.
    pub fn of_ints<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Self::of(&v)
    }
}

/// Percentile by the nearest-rank method on a pre-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&v);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn of_ints_converts() {
        let s = Summary::of_ints([2u64, 4, 6]);
        assert_eq!(s.mean, 4.0);
    }
}
