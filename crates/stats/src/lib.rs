//! # overlay-stats — statistics for verifying the paper's probabilistic claims
//!
//! Provides the estimators the experiment harness uses to check w.h.p.
//! statements empirically:
//!
//! * [`chi_square`] — goodness-of-fit against the uniform (and arbitrary)
//!   distributions, for the uniformity claims of Theorems 2/3 and Lemma 10.
//! * [`tv`] — total-variation distance between empirical and target
//!   distributions (the "almost uniform" bound of Lemma 2).
//! * [`histogram`] / [`summary`] — descriptive statistics for group sizes,
//!   congestion, segment lengths.
//! * [`chernoff`] — the paper's Chernoff bounds (Lemma 1) as calculators,
//!   used to size constants like `c` in Lemma 7 and Lemma 16.
//! * [`shape`] — growth-shape fitting to distinguish `Θ(log log n)` from
//!   `Θ(log n)` round-count series (the exponential-improvement claim).
//! * [`equivalence`] — the statistical-equivalence harness that validates
//!   relaxed-order execution modes (simnet-xl `fast`) against the parity
//!   oracle: TV distance plus chi-square homogeneity with documented
//!   rejection thresholds.

pub mod chernoff;
pub mod chi_square;
pub mod equivalence;
pub mod histogram;
pub mod shape;
pub mod summary;
pub mod tv;

pub use chernoff::{chernoff_lower, chernoff_upper, smallest_c_for_whp};
pub use chi_square::{chi_square_pvalue, chi_square_stat, homogeneity, uniform_fit};
pub use equivalence::{
    merge_low_buckets, pool_counts, tv_threshold, EquivalenceCheck, EquivalenceConfig,
    EquivalenceHarness, EquivalenceReport,
};
pub use histogram::{BucketHistogram, Histogram};
pub use shape::{fit_log, fit_loglog, GrowthFit};
pub use summary::Summary;
pub use tv::{tv_distance, tv_distance_uniform};
