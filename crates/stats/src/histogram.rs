//! Integer-valued histograms (counts per outcome), used by the uniformity
//! tests over node samples and group assignments.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// A frequency count over hashable outcomes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Histogram<T: Eq + Hash> {
    counts: HashMap<T, u64>,
    total: u64,
}

impl<T: Eq + Hash> Histogram<T> {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: HashMap::new(), total: 0 }
    }

    /// Record one observation.
    pub fn add(&mut self, value: T) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `k` observations of `value`.
    pub fn add_n(&mut self, value: T, k: u64) {
        *self.counts.entry(value).or_insert(0) += k;
        self.total += k;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct outcomes observed.
    pub fn support(&self) -> usize {
        self.counts.len()
    }

    /// Count of a specific outcome (0 if never seen).
    pub fn count(&self, value: &T) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Iterate over `(outcome, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&T, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// The raw counts as a vector (arbitrary order) — the input format of
    /// the chi-square and TV tests. Outcomes never observed must be
    /// appended by the caller as zeros (the tests take the support size).
    pub fn counts(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }

    /// Counts including `support_size - support()` implicit zeros, for
    /// tests over a known finite outcome space.
    pub fn counts_with_zeros(&self, support_size: usize) -> Vec<u64> {
        assert!(
            support_size >= self.counts.len(),
            "support_size {support_size} smaller than observed support {}",
            self.counts.len()
        );
        let mut v = self.counts();
        v.resize(support_size, 0);
        v
    }

    /// Largest single count.
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }
}

impl<T: Eq + Hash> FromIterator<T> for Histogram<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut h = Self::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

/// A log2-bucketed histogram over `u64` values: bucket 0 counts zeros,
/// bucket `i >= 1` counts values in `[2^(i-1), 2^i)`. The bucket layout
/// matches the telemetry crate's histogram export, so bucket vectors from
/// `results/*_telemetry.json` load directly via
/// [`BucketHistogram::from_buckets`] for percentile estimation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketHistogram {
    buckets: Vec<u64>,
    total: u64,
}

impl BucketHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild from an exported bucket vector (trailing zeros optional).
    pub fn from_buckets(buckets: &[u64]) -> Self {
        let mut h = Self { buckets: buckets.to_vec(), total: buckets.iter().sum() };
        while h.buckets.last() == Some(&0) {
            h.buckets.pop();
        }
        h
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let b = if value == 0 { 0 } else { 64 - value.leading_zeros() as usize };
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.total += 1;
    }

    /// Observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The bucket counts (no trailing zeros).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Fold another histogram in, padding whichever bucket vector is
    /// shorter (merging exports with different bucket counts is routine:
    /// trailing zero buckets are trimmed on export).
    pub fn merge(&mut self, other: &Self) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.total += other.total;
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`): the
    /// exclusive upper edge of the bucket holding the `ceil(q * total)`-th
    /// smallest observation. `None` when empty. Within-bucket positions
    /// are unknown, so this is exact only in the log2 sense — sufficient
    /// for the order-of-magnitude tables the run report prints.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket 0 holds exactly the zeros; bucket i >= 1 is
                // [2^(i-1), 2^i), upper edge 2^i - 1.
                return Some(if i == 0 { 0 } else { (1u64 << i) - 1 });
            }
        }
        None // unreachable: seen == total >= rank by the end
    }
}

impl FromIterator<u64> for BucketHistogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Self::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let h: Histogram<u32> = [1, 2, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert_eq!(h.support(), 3);
        assert_eq!(h.count(&3), 3);
        assert_eq!(h.count(&9), 0);
        assert_eq!(h.max_count(), 3);
    }

    #[test]
    fn counts_with_zeros_pads() {
        let h: Histogram<u32> = [1, 1].into_iter().collect();
        let c = h.counts_with_zeros(4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.iter().sum::<u64>(), 2);
    }

    #[test]
    #[should_panic(expected = "smaller than observed")]
    fn counts_with_zeros_rejects_small_support() {
        let h: Histogram<u32> = [1, 2, 3].into_iter().collect();
        h.counts_with_zeros(2);
    }

    #[test]
    fn add_n_bulk() {
        let mut h = Histogram::new();
        h.add_n("x", 5);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(&"x"), 5);
    }

    #[test]
    fn bucket_histogram_empty_percentiles() {
        let h = BucketHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(1.0), None);
        // Merging an empty histogram is a no-op.
        let mut other: BucketHistogram = [1u64, 2, 3].into_iter().collect();
        let before = other.clone();
        other.merge(&h);
        assert_eq!(other, before);
    }

    #[test]
    fn bucket_histogram_single_bucket_merge() {
        // All values land in bucket 3 ([4, 8)).
        let mut a: BucketHistogram = [4u64, 5, 7].into_iter().collect();
        let b: BucketHistogram = [6u64, 6].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.buckets(), &[0, 0, 0, 5]);
        // Every percentile resolves to the single bucket's upper edge.
        assert_eq!(a.percentile(0.01), Some(7));
        assert_eq!(a.percentile(1.0), Some(7));
    }

    #[test]
    fn bucket_histogram_merge_different_bucket_counts() {
        // a spans buckets 0..=1, b spans buckets 0..=5: merge must pad.
        let mut a = BucketHistogram::from_buckets(&[2, 3]);
        let b = BucketHistogram::from_buckets(&[1, 0, 0, 0, 0, 4]);
        a.merge(&b);
        assert_eq!(a.total(), 10);
        assert_eq!(a.buckets(), &[3, 3, 0, 0, 0, 4]);
        // Merging the short one into the long one gives the same result.
        let mut c = BucketHistogram::from_buckets(&[1, 0, 0, 0, 0, 4]);
        c.merge(&BucketHistogram::from_buckets(&[2, 3]));
        assert_eq!(a, c);
        // Ranks: 3 zeros, then 3 ones, then 4 values in [16, 32).
        assert_eq!(a.percentile(0.3), Some(0));
        assert_eq!(a.percentile(0.6), Some(1));
        assert_eq!(a.percentile(0.99), Some(31));
    }

    #[test]
    fn bucket_histogram_record_matches_telemetry_bucketing() {
        let mut h = BucketHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 8, 1024] {
            h.record(v);
        }
        // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4 -> 3; 8 -> 4;
        // 1024 -> bucket 11.
        assert_eq!(h.buckets(), &[1, 1, 2, 1, 1, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(h.percentile(1.0), Some(2047));
        // from_buckets trims trailing zeros.
        let t = BucketHistogram::from_buckets(&[1, 2, 0, 0]);
        assert_eq!(t.buckets(), &[1, 2]);
        assert_eq!(t.total(), 3);
    }
}
