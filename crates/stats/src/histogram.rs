//! Integer-valued histograms (counts per outcome), used by the uniformity
//! tests over node samples and group assignments.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// A frequency count over hashable outcomes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Histogram<T: Eq + Hash> {
    counts: HashMap<T, u64>,
    total: u64,
}

impl<T: Eq + Hash> Histogram<T> {
    /// Empty histogram.
    pub fn new() -> Self {
        Self { counts: HashMap::new(), total: 0 }
    }

    /// Record one observation.
    pub fn add(&mut self, value: T) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `k` observations of `value`.
    pub fn add_n(&mut self, value: T, k: u64) {
        *self.counts.entry(value).or_insert(0) += k;
        self.total += k;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct outcomes observed.
    pub fn support(&self) -> usize {
        self.counts.len()
    }

    /// Count of a specific outcome (0 if never seen).
    pub fn count(&self, value: &T) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Iterate over `(outcome, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&T, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// The raw counts as a vector (arbitrary order) — the input format of
    /// the chi-square and TV tests. Outcomes never observed must be
    /// appended by the caller as zeros (the tests take the support size).
    pub fn counts(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }

    /// Counts including `support_size - support()` implicit zeros, for
    /// tests over a known finite outcome space.
    pub fn counts_with_zeros(&self, support_size: usize) -> Vec<u64> {
        assert!(
            support_size >= self.counts.len(),
            "support_size {support_size} smaller than observed support {}",
            self.counts.len()
        );
        let mut v = self.counts();
        v.resize(support_size, 0);
        v
    }

    /// Largest single count.
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }
}

impl<T: Eq + Hash> FromIterator<T> for Histogram<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut h = Self::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let h: Histogram<u32> = [1, 2, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert_eq!(h.support(), 3);
        assert_eq!(h.count(&3), 3);
        assert_eq!(h.count(&9), 0);
        assert_eq!(h.max_count(), 3);
    }

    #[test]
    fn counts_with_zeros_pads() {
        let h: Histogram<u32> = [1, 1].into_iter().collect();
        let c = h.counts_with_zeros(4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.iter().sum::<u64>(), 2);
    }

    #[test]
    #[should_panic(expected = "smaller than observed")]
    fn counts_with_zeros_rejects_small_support() {
        let h: Histogram<u32> = [1, 2, 3].into_iter().collect();
        h.counts_with_zeros(2);
    }

    #[test]
    fn add_n_bulk() {
        let mut h = Histogram::new();
        h.add_n("x", 5);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(&"x"), 5);
    }
}
