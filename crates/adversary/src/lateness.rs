//! Topology history and `t`-late views.
//!
//! The DoS adversary of the paper may base its blocking decisions **only on
//! the topology of the overlay network**, and a `t`-late adversary only on
//! topology that is at least `t` rounds old. The harness records a
//! [`TopologySnapshot`] every round; [`TopologyHistory`] then serves the
//! newest snapshot that is at least `t` rounds stale, so an adversary
//! implementation physically cannot read fresher state.

use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::VecDeque;

/// What the adversary may see: node set, overlay edges, and (if the overlay
/// is group-structured like Sections 5/6) the group composition and
/// group-level adjacency. No message contents, no node-internal state.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TopologySnapshot {
    /// Round this snapshot was taken in.
    pub round: u64,
    /// All nodes present.
    pub nodes: Vec<NodeId>,
    /// Undirected overlay edges.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Group composition (empty if the overlay is not group-structured).
    pub groups: Vec<Vec<NodeId>>,
    /// Adjacency between groups, as index pairs into `groups`.
    pub group_edges: Vec<(u32, u32)>,
}

impl TopologySnapshot {
    /// A snapshot with only a node list (for adversaries that ignore
    /// structure).
    pub fn nodes_only(round: u64, nodes: Vec<NodeId>) -> Self {
        Self { round, nodes, ..Self::default() }
    }
}

/// Ring buffer of snapshots serving exactly-`t`-late views.
#[derive(Clone, Debug, Default)]
pub struct TopologyHistory {
    lateness: u64,
    buf: VecDeque<TopologySnapshot>,
}

impl TopologyHistory {
    /// A history enforcing `t`-lateness. `lateness == 0` models the
    /// current-topology adversary used as a control.
    pub fn new(lateness: u64) -> Self {
        Self { lateness, buf: VecDeque::new() }
    }

    /// The enforced lateness `t`.
    pub fn lateness(&self) -> u64 {
        self.lateness
    }

    /// Record the current topology. Snapshots must be pushed in
    /// nondecreasing round order.
    pub fn push(&mut self, snap: TopologySnapshot) {
        if let Some(last) = self.buf.back() {
            assert!(snap.round >= last.round, "snapshots must be pushed in round order");
        }
        self.buf.push_back(snap);
    }

    /// The newest snapshot that is at least `t` rounds old as of
    /// `current_round`, or `None` if no such snapshot exists yet.
    ///
    /// Also prunes snapshots that can never be served again.
    pub fn view(&mut self, current_round: u64) -> Option<&TopologySnapshot> {
        let cutoff = current_round.checked_sub(self.lateness)?;
        // Drop all but the newest snapshot with round <= cutoff.
        while self.buf.len() >= 2 && self.buf[1].round <= cutoff {
            self.buf.pop_front();
        }
        self.buf.front().filter(|s| s.round <= cutoff)
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(round: u64) -> TopologySnapshot {
        TopologySnapshot::nodes_only(round, vec![NodeId(round)])
    }

    #[test]
    fn view_is_at_least_t_old() {
        let mut h = TopologyHistory::new(3);
        for r in 0..10 {
            h.push(snap(r));
        }
        let v = h.view(10).unwrap();
        assert_eq!(v.round, 7, "must serve the newest snapshot that is >= 3 old");
        // Never fresher than t.
        for cur in 3..10 {
            let mut h2 = TopologyHistory::new(3);
            for r in 0..10 {
                h2.push(snap(r));
            }
            let got = h2.view(cur).unwrap().round;
            assert!(cur - got >= 3);
        }
    }

    #[test]
    fn zero_lateness_serves_current() {
        let mut h = TopologyHistory::new(0);
        h.push(snap(5));
        assert_eq!(h.view(5).unwrap().round, 5);
    }

    #[test]
    fn too_early_gives_none() {
        let mut h = TopologyHistory::new(4);
        h.push(snap(0));
        h.push(snap(1));
        assert!(h.view(3).is_none(), "no snapshot is 4 rounds old yet");
        assert!(h.view(4).is_some());
    }

    #[test]
    fn pruning_keeps_served_snapshot() {
        let mut h = TopologyHistory::new(2);
        for r in 0..100 {
            h.push(snap(r));
        }
        let _ = h.view(100);
        assert!(h.len() <= 3, "history should prune, kept {}", h.len());
        // Still serves correctly after pruning.
        assert_eq!(h.view(100).unwrap().round, 98);
    }

    #[test]
    #[should_panic(expected = "round order")]
    fn out_of_order_push_panics() {
        let mut h = TopologyHistory::new(1);
        h.push(snap(5));
        h.push(snap(3));
    }
}
