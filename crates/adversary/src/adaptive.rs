//! Adaptive red-team adversaries.
//!
//! The oblivious adversaries of [`crate::dos`] fix a strategy up front and
//! draw from their own randomness; the *adaptive* adversaries here react
//! round by round to what the overlay actually looks like — still under
//! the paper's information rule (topology only, at least `t` rounds late)
//! and budget rule (at most an `r`-fraction of current nodes blocked per
//! round). Strategies implement [`simnet::AdaptiveAdversary`]; the
//! [`AdaptiveHarness`] mediates between them and the runner, enforcing
//! lateness through a [`ViewBuffer`] and clamping over-budget answers so a
//! strategy can never exceed the model's power.
//!
//! The suite:
//!
//! * [`MinCutAttack`] — computes a sparsest vertex cut of the (stale) view
//!   and silences the separator, disconnecting the cheapest region it can
//!   find. On group-structured overlays the node graph is implied by the
//!   groups (intra-group cliques, inter-group complete bipartite), which
//!   makes the separator "every member of the victim group's neighbor
//!   groups" — the strongest structural attack on Sections 5/6.
//! * [`HighDegreeAttack`] — silences hubs: highest-degree nodes first,
//!   with group leaders (each group's smallest id, the introducer in our
//!   join construction) promoted ahead of ordinary members.
//! * [`OscillatingPartition`] — alternates between blocking the lower and
//!   upper half of the id space every `period` rounds, forcing the healing
//!   layer to chase a moving target and re-admit each side repeatedly.
//! * [`FollowTheHealer`] — re-blocks nodes right after they rejoin: the
//!   view marks nodes that reappeared, the strategy keeps a recency queue
//!   and spends its budget on the most recently healed first, starving the
//!   heal path's progress.
//!
//! [`Attacker`] abstracts "observe a snapshot, emit a block set" so
//! runners drive oblivious [`DosAdversary`]s, adaptive harnesses and
//! recorded [`crate::shrink::ReplayAdversary`] traces interchangeably.

use crate::dos::DosAdversary;
use crate::lateness::TopologySnapshot;
use overlay_graphs::{sparsest_vertex_cut, Adjacency};
use simnet::observer::{AdaptiveAdversary, ObserverView, ViewBuffer};
use simnet::{BlockSet, NodeId};
use std::collections::{BTreeSet, VecDeque};
use telemetry::{EventKind, Telemetry};

/// Round-stepped adversary interface: the runner shows the adversary the
/// current topology every round (lateness is the adversary's own
/// responsibility) and asks for the round's block set.
pub trait Attacker {
    /// Record the current topology; called every round before [`block`].
    ///
    /// [`block`]: Attacker::block
    fn observe(&mut self, snap: TopologySnapshot);
    /// The nodes to block this round; `n_current` defines the budget.
    fn block(&mut self, round: u64, n_current: usize) -> BlockSet;
    /// Human-readable label for experiment tables and repro files.
    fn label(&self) -> String;
}

impl<A: Attacker + ?Sized> Attacker for Box<A> {
    fn observe(&mut self, snap: TopologySnapshot) {
        (**self).observe(snap);
    }
    fn block(&mut self, round: u64, n_current: usize) -> BlockSet {
        (**self).block(round, n_current)
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

impl Attacker for DosAdversary {
    fn observe(&mut self, snap: TopologySnapshot) {
        DosAdversary::observe(self, snap);
    }
    fn block(&mut self, round: u64, n_current: usize) -> BlockSet {
        DosAdversary::block(self, round, n_current)
    }
    fn label(&self) -> String {
        format!("oblivious:{:?}", self.strategy())
    }
}

/// Node-level adjacency of a view. Group-structured overlays publish no
/// node edges (the topology is implied: each group is a clique, adjacent
/// groups are completely connected), so the implied edges are
/// materialized here for the graph algorithms.
fn view_adjacency(view: &ObserverView) -> Adjacency {
    if !view.edges.is_empty() || view.groups.is_empty() {
        return Adjacency::from_edges(&view.nodes, &view.edges);
    }
    let member: BTreeSet<NodeId> = view.nodes.iter().copied().collect();
    let mut edges = Vec::new();
    for grp in &view.groups {
        for (i, &a) in grp.iter().enumerate() {
            for &b in &grp[i + 1..] {
                if member.contains(&a) && member.contains(&b) {
                    edges.push((a, b));
                }
            }
        }
    }
    for &(gi, gj) in &view.group_edges {
        for &a in &view.groups[gi] {
            for &b in &view.groups[gj] {
                if member.contains(&a) && member.contains(&b) {
                    edges.push((a, b));
                }
            }
        }
    }
    Adjacency::from_edges(&view.nodes, &edges)
}

/// Fill `out` up to `budget` with the lowest-degree members not yet
/// picked (cheap victims make the leftover budget count).
fn fill_low_degree(out: &mut BTreeSet<NodeId>, view: &ObserverView, budget: usize) {
    if out.len() >= budget {
        return;
    }
    let deg = view.degrees();
    let mut rest: Vec<NodeId> = view.nodes.iter().copied().filter(|v| !out.contains(v)).collect();
    rest.sort_by_key(|v| (deg.get(v).copied().unwrap_or(0), v.raw()));
    for v in rest {
        if out.len() >= budget {
            break;
        }
        out.insert(v);
    }
}

/// FNV-1a over everything the min-cut answer depends on. The topology
/// only changes at reconfiguration boundaries, so hashing the view is
/// how [`MinCutAttack`] avoids re-running the cut search every round.
fn topology_fingerprint(view: &ObserverView, budget: usize) -> u64 {
    fn eat(h: &mut u64, x: u64) {
        *h ^= x;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    eat(&mut h, budget as u64);
    eat(&mut h, view.nodes.len() as u64);
    for v in &view.nodes {
        eat(&mut h, v.raw());
    }
    for &(a, b) in &view.edges {
        eat(&mut h, a.raw());
        eat(&mut h, b.raw());
    }
    for g in &view.groups {
        eat(&mut h, u64::MAX);
        for v in g {
            eat(&mut h, v.raw());
        }
    }
    for &(a, b) in &view.group_edges {
        eat(&mut h, a as u64);
        eat(&mut h, b as u64);
    }
    h
}

/// Lightest member-weighted group separator of the implied group graph:
/// a set of groups whose members, all silenced, leave the alive
/// supernodes disconnected. Greedy region growth from every group as a
/// seed, absorbing the heaviest boundary group each step, keeping the
/// lightest vertex boundary that fits the budget. Group counts are tiny
/// (`2^d <= n / (c log n)`), so this is cheap where the node-level cut
/// search on the implied clique graph is not.
fn group_separator(view: &ObserverView, budget: usize) -> Option<Vec<NodeId>> {
    let g = view.groups.len();
    let member: BTreeSet<NodeId> = view.nodes.iter().copied().collect();
    let live: Vec<Vec<NodeId>> = view
        .groups
        .iter()
        .map(|grp| grp.iter().copied().filter(|v| member.contains(v)).collect())
        .collect();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); g];
    for &(a, b) in &view.group_edges {
        if a < g && b < g && a != b {
            adj[a].insert(b);
            adj[b].insert(a);
        }
    }
    let mut best: Option<(usize, BTreeSet<usize>)> = None;
    for seed in 0..g {
        let mut region: BTreeSet<usize> = std::iter::once(seed).collect();
        loop {
            let boundary: BTreeSet<usize> = region
                .iter()
                .flat_map(|&x| adj[x].iter().copied())
                .filter(|y| !region.contains(y))
                .collect();
            // A boundary only separates if something is left outside it.
            if boundary.is_empty() || region.len() + boundary.len() >= g {
                break;
            }
            let weight: usize = boundary.iter().map(|&y| live[y].len()).sum();
            if weight <= budget && best.as_ref().is_none_or(|(w, _)| weight < *w) {
                best = Some((weight, boundary.clone()));
            }
            if region.len() >= g / 2 {
                break;
            }
            // Absorb the heaviest boundary group: its expensive members
            // move from the separator into the region.
            let &grow =
                boundary.iter().max_by_key(|&&y| (live[y].len(), y)).expect("boundary is nonempty");
            region.insert(grow);
        }
    }
    best.map(|(_, sep)| sep.iter().flat_map(|&y| live[y].iter().copied()).collect())
}

/// Block a sparsest vertex cut of the stale view.
///
/// Group-structured views get a member-weighted separator over the group
/// graph (supernode connectivity is what the overlay's own connectivity
/// predicate measures, and a supernode stays alive while any member is
/// unblocked — so only whole-group silencing cuts anything); explicit-edge
/// views get the node-level [`sparsest_vertex_cut`]. Either way the answer
/// is cached against a topology fingerprint, so the search reruns only
/// when the view actually changes (once per reconfiguration, not once per
/// round).
#[derive(Clone, Debug, Default)]
pub struct MinCutAttack {
    cache: Option<(u64, BlockSet)>,
}

impl AdaptiveAdversary for MinCutAttack {
    fn name(&self) -> &'static str {
        "adaptive:min-cut"
    }

    fn pick(&mut self, view: &ObserverView, budget: usize) -> BlockSet {
        let fp = topology_fingerprint(view, budget);
        if let Some((cached, picks)) = &self.cache {
            if *cached == fp {
                return picks.clone();
            }
        }
        let mut out = BTreeSet::new();
        if view.edges.is_empty() && !view.groups.is_empty() {
            if let Some(sep) = group_separator(view, budget) {
                out.extend(sep);
            }
        } else {
            let adj = view_adjacency(view);
            if let Some(cut) = sparsest_vertex_cut(&adj, budget) {
                out.extend(cut.separator);
            }
        }
        fill_low_degree(&mut out, view, budget);
        let picks = BlockSet::from_iter(out);
        self.cache = Some((fp, picks.clone()));
        picks
    }
}

/// Block the highest-degree nodes, group leaders first.
#[derive(Clone, Copy, Debug, Default)]
pub struct HighDegreeAttack;

impl AdaptiveAdversary for HighDegreeAttack {
    fn name(&self) -> &'static str {
        "adaptive:high-degree"
    }

    fn pick(&mut self, view: &ObserverView, budget: usize) -> BlockSet {
        let deg = view.degrees();
        // A group's smallest id acts as its introducer/leader in the join
        // construction; silencing leaders hits the most join paths.
        let leaders: BTreeSet<NodeId> =
            view.groups.iter().filter_map(|g| g.iter().min().copied()).collect();
        let mut order: Vec<NodeId> = view.nodes.clone();
        let n = view.nodes.len();
        order.sort_by_key(|v| {
            let score = deg.get(v).copied().unwrap_or(0) + if leaders.contains(v) { n } else { 0 };
            (std::cmp::Reverse(score), v.raw())
        });
        order.truncate(budget);
        BlockSet::from_iter(order)
    }
}

/// Alternately block the lower and upper half of the id space.
#[derive(Clone, Copy, Debug)]
pub struct OscillatingPartition {
    /// Rounds between side switches.
    pub period: u64,
}

impl Default for OscillatingPartition {
    fn default() -> Self {
        Self { period: 4 }
    }
}

impl AdaptiveAdversary for OscillatingPartition {
    fn name(&self) -> &'static str {
        "adaptive:oscillate"
    }

    fn pick(&mut self, view: &ObserverView, budget: usize) -> BlockSet {
        let period = self.period.max(1);
        let lower = (view.round / period) % 2 == 0;
        let half = view.nodes.len() / 2;
        let side: &[NodeId] = if lower { &view.nodes[..half] } else { &view.nodes[half..] };
        // Budget goes to the chosen side's border with the other half:
        // nodes nearest the split point churn in and out of the block set
        // as the sides alternate.
        let mut picks: Vec<NodeId> = side.to_vec();
        if lower {
            picks.reverse();
        }
        picks.truncate(budget);
        BlockSet::from_iter(picks)
    }
}

/// Re-block nodes immediately after the healing layer re-admits them.
#[derive(Clone, Debug)]
pub struct FollowTheHealer {
    /// Recently rejoined nodes, most recent first.
    recent: VecDeque<NodeId>,
    cap: usize,
}

impl Default for FollowTheHealer {
    fn default() -> Self {
        Self { recent: VecDeque::new(), cap: 256 }
    }
}

impl AdaptiveAdversary for FollowTheHealer {
    fn name(&self) -> &'static str {
        "adaptive:follow-healer"
    }

    fn pick(&mut self, view: &ObserverView, budget: usize) -> BlockSet {
        for &v in view.rejoined.iter().rev() {
            self.recent.retain(|&w| w != v);
            self.recent.push_front(v);
        }
        self.recent.truncate(self.cap);
        let members: BTreeSet<NodeId> = view.nodes.iter().copied().collect();
        let mut out = BTreeSet::new();
        for &v in &self.recent {
            if out.len() >= budget {
                break;
            }
            if members.contains(&v) {
                out.insert(v);
            }
        }
        fill_low_degree(&mut out, view, budget);
        BlockSet::from_iter(out)
    }
}

/// The strategy suite as a closed enum: concrete (checkpointable,
/// nameable in repro files) while still dispatching through
/// [`AdaptiveAdversary`].
#[derive(Clone, Debug)]
pub enum AdaptiveStrategy {
    /// [`MinCutAttack`].
    MinCut(MinCutAttack),
    /// [`HighDegreeAttack`].
    HighDegree(HighDegreeAttack),
    /// [`OscillatingPartition`].
    Oscillate(OscillatingPartition),
    /// [`FollowTheHealer`].
    FollowHealer(FollowTheHealer),
}

impl AdaptiveStrategy {
    /// One instance of every strategy, in a stable order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::MinCut(MinCutAttack::default()),
            Self::HighDegree(HighDegreeAttack),
            Self::Oscillate(OscillatingPartition::default()),
            Self::FollowHealer(FollowTheHealer::default()),
        ]
    }

    /// Look a strategy up by its [`AdaptiveAdversary::name`] (used when
    /// replaying repro files).
    pub fn by_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|s| s.name() == name)
    }
}

impl AdaptiveAdversary for AdaptiveStrategy {
    fn name(&self) -> &'static str {
        match self {
            Self::MinCut(s) => s.name(),
            Self::HighDegree(s) => s.name(),
            Self::Oscillate(s) => s.name(),
            Self::FollowHealer(s) => s.name(),
        }
    }

    fn pick(&mut self, view: &ObserverView, budget: usize) -> BlockSet {
        match self {
            Self::MinCut(s) => s.pick(view, budget),
            Self::HighDegree(s) => s.pick(view, budget),
            Self::Oscillate(s) => s.pick(view, budget),
            Self::FollowHealer(s) => s.pick(view, budget),
        }
    }
}

/// Runs an [`AdaptiveAdversary`] under the model's rules: snapshots age
/// through a [`ViewBuffer`] before the strategy may see them, rejoins are
/// inferred by diffing consecutive membership lists, the strategy's own
/// past block sets are appended to each view, and over-budget answers are
/// clamped deterministically (smallest ids keep priority). Optionally
/// records the emitted block-set trace for counterexample shrinking.
#[derive(Clone, Debug)]
pub struct AdaptiveHarness<S> {
    strategy: S,
    bound: f64,
    views: ViewBuffer,
    prev_nodes: Option<Vec<NodeId>>,
    /// Recent emissions shown back to the strategy (bounded).
    history: VecDeque<(u64, BlockSet)>,
    /// Full emission record `(round, blocked)` when recording.
    trace: Vec<(u64, BlockSet)>,
    record: bool,
    /// Pure observability: budget spend and strategy choices mirror into
    /// it; the strategy never sees or branches on the recorder.
    tel: Telemetry,
}

/// How many of its own past block sets the strategy gets to see.
const HISTORY_WINDOW: usize = 32;

impl<S: AdaptiveAdversary> AdaptiveHarness<S> {
    /// Harness a strategy with budget fraction `bound` and `t = lateness`.
    pub fn new(strategy: S, bound: f64, lateness: u64) -> Self {
        assert!((0.0..1.0).contains(&bound), "bound must be in [0, 1), got {bound}");
        Self {
            strategy,
            bound,
            views: ViewBuffer::new(lateness),
            prev_nodes: None,
            history: VecDeque::new(),
            trace: Vec::new(),
            record: false,
            tel: Telemetry::disabled(),
        }
    }

    /// Record every emitted block set (for the shrinker / repro files).
    pub fn recording(mut self) -> Self {
        self.record = true;
        self
    }

    /// Attach a telemetry recorder (builder-style): every emission records
    /// its budget spend (`adv.blocked` counter + histogram and a
    /// [`EventKind::BudgetSpend`] event) and the strategy identity
    /// ([`EventKind::StrategyChoice`], once per label).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        tel.emit(0, EventKind::StrategyChoice, None, 0, || self.strategy.name().to_string());
        self.tel = tel;
        self
    }

    /// The blocking budget fraction `r`.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The enforced lateness `t`.
    pub fn lateness(&self) -> u64 {
        self.views.lateness()
    }

    /// The wrapped strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// The recorded `(round, blocked)` emissions (empty unless
    /// [`recording`](Self::recording) was enabled).
    pub fn trace(&self) -> &[(u64, BlockSet)] {
        &self.trace
    }
}

impl<S: AdaptiveAdversary> Attacker for AdaptiveHarness<S> {
    fn observe(&mut self, snap: TopologySnapshot) {
        let mut view = ObserverView::new(snap.round, snap.nodes, snap.edges);
        view.groups = snap.groups;
        view.group_edges =
            snap.group_edges.iter().map(|&(a, b)| (a as usize, b as usize)).collect();
        if let Some(prev) = &self.prev_nodes {
            view.rejoined =
                view.nodes.iter().copied().filter(|v| prev.binary_search(v).is_err()).collect();
        }
        self.prev_nodes = Some(view.nodes.clone());
        self.views.push(view);
    }

    fn block(&mut self, round: u64, n_current: usize) -> BlockSet {
        let budget = (self.bound * n_current as f64).floor() as usize;
        let picks = match self.views.visible(round) {
            Some(view) if budget > 0 => {
                // The strategy always knows its own past actions — that
                // information is its own, not the network's, so it is not
                // subject to the lateness rule.
                let mut view = view.clone();
                view.blocked_history = self.history.iter().cloned().collect();
                self.strategy.pick(&view, budget)
            }
            _ => BlockSet::none(),
        };
        // Clamp, never trust: a buggy strategy must not exceed the model.
        let blocked = if picks.len() > budget {
            BlockSet::from_iter(picks.iter().take(budget))
        } else {
            picks
        };
        self.history.push_back((round, blocked.clone()));
        while self.history.len() > HISTORY_WINDOW {
            self.history.pop_front();
        }
        if self.record {
            self.trace.push((round, blocked.clone()));
        }
        if self.tel.enabled() {
            let name = self.strategy.name();
            let spent = blocked.len() as u64;
            self.tel.counter("adv.rounds", &[("strategy", name)]).inc();
            self.tel.counter("adv.blocked", &[("strategy", name)]).add(spent);
            self.tel.histogram("adv.spend", &[("strategy", name)]).record(spent);
            self.tel.emit(round, EventKind::BudgetSpend, None, spent, || {
                format!("{name} blocked {spent} of budget {budget}")
            });
        }
        blocked
    }

    fn label(&self) -> String {
        self.strategy.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_snapshot(round: u64, n: u64) -> TopologySnapshot {
        TopologySnapshot {
            round,
            nodes: (0..n).map(NodeId).collect(),
            edges: (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))).collect(),
            groups: Vec::new(),
            group_edges: Vec::new(),
        }
    }

    /// Barbell: two cliques of `k` joined by the single edge (k-1, k).
    fn barbell_snapshot(round: u64, k: u64) -> TopologySnapshot {
        let mut edges = Vec::new();
        for side in 0..2 {
            let base = side * k;
            for i in 0..k {
                for j in i + 1..k {
                    edges.push((NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push((NodeId(k - 1), NodeId(k)));
        TopologySnapshot {
            round,
            nodes: (0..2 * k).map(NodeId).collect(),
            edges,
            groups: Vec::new(),
            group_edges: Vec::new(),
        }
    }

    #[test]
    fn min_cut_finds_the_barbell_bridge() {
        let mut h = AdaptiveHarness::new(MinCutAttack::default(), 0.2, 0);
        h.observe(barbell_snapshot(0, 8));
        let b = h.block(0, 16);
        // Budget 3; the bridge endpoints are the only 1-node separators.
        assert!(b.contains(NodeId(7)) || b.contains(NodeId(8)), "bridge must be cut: {b:?}");
        assert!(b.within_bound(0.2, 16));
    }

    #[test]
    fn min_cut_uses_implied_group_topology() {
        // Path of 3 groups: isolating an end group means blocking the
        // middle group entirely.
        let groups: Vec<Vec<NodeId>> =
            (0..3).map(|g| (0..3).map(|i| NodeId(g * 3 + i)).collect()).collect();
        let snap = TopologySnapshot {
            round: 0,
            nodes: (0..9).map(NodeId).collect(),
            edges: Vec::new(),
            groups: groups.clone(),
            group_edges: vec![(0, 1), (1, 2)],
        };
        let mut h = AdaptiveHarness::new(MinCutAttack::default(), 0.4, 0);
        h.observe(snap);
        let b = h.block(0, 9);
        assert!(groups[1].iter().all(|&v| b.contains(v)), "middle group is the separator: {b:?}");
    }

    #[test]
    fn high_degree_prefers_leaders_and_hubs() {
        // Star: node 0 is the hub.
        let snap = TopologySnapshot {
            round: 0,
            nodes: (0..10).map(NodeId).collect(),
            edges: (1..10).map(|i| (NodeId(0), NodeId(i))).collect(),
            groups: Vec::new(),
            group_edges: Vec::new(),
        };
        let mut h = AdaptiveHarness::new(HighDegreeAttack, 0.11, 0);
        h.observe(snap);
        let b = h.block(0, 10);
        assert!(b.contains(NodeId(0)), "the hub must be the first pick");
    }

    #[test]
    fn oscillation_switches_sides() {
        let mut h = AdaptiveHarness::new(OscillatingPartition { period: 2 }, 0.25, 0);
        for r in 0..6 {
            h.observe(line_snapshot(r, 20));
        }
        let early = h.block(1, 20); // phase 0: lower half
        let late = h.block(4, 20); // phase 2 switched back? round 4/2 = 2 -> even -> lower
        let mid = h.block(2, 20); // round 2/2 = 1 -> odd -> upper half
        assert!(early.iter().all(|v| v.raw() < 10), "even phase blocks the lower half");
        assert!(mid.iter().all(|v| v.raw() >= 10), "odd phase blocks the upper half");
        assert_eq!(early, late);
        assert_ne!(early, mid);
    }

    #[test]
    fn follow_the_healer_reblocks_rejoiners() {
        let mut h = AdaptiveHarness::new(FollowTheHealer::default(), 0.1, 0);
        // Node 5 vanishes, then reappears.
        let full: Vec<NodeId> = (0..30).map(NodeId).collect();
        let without: Vec<NodeId> = full.iter().copied().filter(|v| v.raw() != 5).collect();
        h.observe(TopologySnapshot::nodes_only(0, full.clone()));
        h.observe(TopologySnapshot::nodes_only(1, without));
        h.observe(TopologySnapshot::nodes_only(2, full));
        let b = h.block(2, 30);
        assert!(b.contains(NodeId(5)), "the healed node is re-blocked first: {b:?}");
    }

    #[test]
    fn harness_enforces_lateness_and_budget() {
        struct Greedy;
        impl AdaptiveAdversary for Greedy {
            fn name(&self) -> &'static str {
                "test:greedy"
            }
            fn pick(&mut self, view: &ObserverView, _budget: usize) -> BlockSet {
                BlockSet::from_iter(view.nodes.iter().copied()) // ignores the budget
            }
        }
        let mut h = AdaptiveHarness::new(Greedy, 0.3, 4);
        h.observe(line_snapshot(0, 10));
        assert!(h.block(2, 10).is_empty(), "no view is 4 rounds old yet");
        let b = h.block(4, 10);
        assert_eq!(b.len(), 3, "over-budget answers are clamped");
    }

    #[test]
    fn recording_captures_the_trace() {
        let mut h = AdaptiveHarness::new(HighDegreeAttack, 0.2, 0).recording();
        for r in 0..5 {
            h.observe(line_snapshot(r, 10));
            h.block(r, 10);
        }
        assert_eq!(h.trace().len(), 5);
        assert!(h.trace().iter().all(|(_, b)| b.len() <= 2));
    }

    #[test]
    fn telemetry_tracks_budget_spend_per_strategy() {
        let tel = Telemetry::new(telemetry::Config::default());
        let mut h = AdaptiveHarness::new(HighDegreeAttack, 0.2, 0).with_telemetry(tel.clone());
        let mut total = 0;
        for r in 0..5 {
            h.observe(line_snapshot(r, 10));
            total += h.block(r, 10).len() as u64;
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("adv.rounds{strategy=adaptive:high-degree}"), 5);
        assert_eq!(snap.counter("adv.blocked{strategy=adaptive:high-degree}"), total);
        assert!(total > 0, "budget 0.2 of 10 must block someone");
        let spend =
            snap.histogram("adv.spend{strategy=adaptive:high-degree}").expect("spend histogram");
        assert_eq!(spend.count, 5);
        let (events, _) = tel.events();
        assert!(events.iter().any(|e| e.kind == EventKind::StrategyChoice));
        assert_eq!(events.iter().filter(|e| e.kind == EventKind::BudgetSpend).count(), 5);
    }
}
