//! `r`-bounded, `t`-late DoS adversaries.
//!
//! The adversary may block up to an `r`-fraction of the current nodes per
//! round, deciding only from topology that is at least `t` rounds old
//! (enforced by [`TopologyHistory`] — the strategy code never sees fresher
//! state). The strategy suite approximates the universally quantified
//! adversary of Theorem 6 with the strongest concrete attacks we know
//! against the group construction, plus a current-topology (0-late)
//! control that demonstrates the paper's impossibility remark: once the
//! adversary knows the topology, isolating a node only requires blocking
//! its polylogarithmically many neighbors.

use crate::lateness::{TopologyHistory, TopologySnapshot};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::rng::NodeRng;
use simnet::{BlockSet, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Blocking strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DosStrategy {
    /// Block a uniformly random `r`-fraction of the stale node list.
    Random,
    /// Isolate a victim: block the victim's entire (stale) neighborhood,
    /// then spend leftover budget on further victims' neighborhoods.
    IsolateNode,
    /// Attack the group structure: pick a victim group and block all nodes
    /// of its neighboring groups, isolating the victim group's members.
    GroupTargeted,
    /// Try to cut the (stale) graph: grow a BFS region to half the nodes
    /// and block its boundary.
    Bisection,
}

/// An `r`-bounded `t`-late DoS adversary.
#[derive(Debug)]
pub struct DosAdversary {
    strategy: DosStrategy,
    bound: f64,
    history: TopologyHistory,
    rng: NodeRng,
}

impl DosAdversary {
    /// Create an adversary blocking at most `bound`-fraction of the current
    /// nodes, seeing topology at least `lateness` rounds old.
    pub fn new(strategy: DosStrategy, bound: f64, lateness: u64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&bound), "bound must be in [0, 1), got {bound}");
        Self {
            strategy,
            bound,
            history: TopologyHistory::new(lateness),
            rng: simnet::rng::stream(seed, u64::MAX, 0xD05),
        }
    }

    /// The blocking budget fraction `r`.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The configured strategy.
    pub fn strategy(&self) -> DosStrategy {
        self.strategy
    }

    /// The enforced lateness `t`.
    pub fn lateness(&self) -> u64 {
        self.history.lateness()
    }

    /// Record the current topology (call every round, *before* asking for
    /// blocks; the history enforces the lateness).
    pub fn observe(&mut self, snap: TopologySnapshot) {
        self.history.push(snap);
    }

    /// The nodes to block this round. `n_current` is the current network
    /// size defining the budget `floor(bound * n_current)`.
    pub fn block(&mut self, round: u64, n_current: usize) -> BlockSet {
        let budget = (self.bound * n_current as f64).floor() as usize;
        if budget == 0 {
            return BlockSet::none();
        }
        let Some(view) = self.history.view(round) else {
            return BlockSet::none();
        };
        let view = view.clone();
        let picks = match self.strategy {
            DosStrategy::Random => pick_random(&view, budget, &mut self.rng),
            DosStrategy::IsolateNode => pick_isolate(&view, budget, &mut self.rng),
            DosStrategy::GroupTargeted => pick_group_targeted(&view, budget, &mut self.rng),
            DosStrategy::Bisection => pick_bisection(&view, budget, &mut self.rng),
        };
        debug_assert!(picks.len() <= budget);
        BlockSet::from_iter(picks)
    }
}

fn pick_random<R: Rng + ?Sized>(
    view: &TopologySnapshot,
    budget: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut nodes = view.nodes.clone();
    nodes.shuffle(rng);
    nodes.truncate(budget);
    nodes
}

fn adjacency_map(view: &TopologySnapshot) -> HashMap<NodeId, Vec<NodeId>> {
    let mut adj: HashMap<NodeId, Vec<NodeId>> =
        view.nodes.iter().map(|&v| (v, Vec::new())).collect();
    for &(a, b) in &view.edges {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    }
    adj
}

fn pick_isolate<R: Rng + ?Sized>(
    view: &TopologySnapshot,
    budget: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let adj = adjacency_map(view);
    if adj.is_empty() {
        return Vec::new();
    }
    // Victims in ascending degree order: cheapest isolations first.
    let mut victims: Vec<NodeId> = view.nodes.clone();
    victims.sort_by_key(|v| (adj.get(v).map_or(0, Vec::len), v.raw()));
    let mut blocked: HashSet<NodeId> = HashSet::new();
    for v in victims {
        let ns = adj.get(&v).map(Vec::as_slice).unwrap_or(&[]);
        let new: Vec<NodeId> =
            ns.iter().copied().filter(|w| *w != v && !blocked.contains(w)).collect();
        if blocked.len() + new.len() > budget {
            break;
        }
        blocked.extend(new);
    }
    // Spend leftover budget randomly.
    let mut rest: Vec<NodeId> =
        view.nodes.iter().copied().filter(|v| !blocked.contains(v)).collect();
    rest.shuffle(rng);
    let mut out: Vec<NodeId> = blocked.into_iter().collect();
    while out.len() < budget {
        match rest.pop() {
            Some(v) => out.push(v),
            None => break,
        }
    }
    out
}

fn pick_group_targeted<R: Rng + ?Sized>(
    view: &TopologySnapshot,
    budget: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    if view.groups.is_empty() {
        // No group structure observed — fall back to isolation.
        return pick_isolate(view, budget, rng);
    }
    let g = view.groups.len();
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); g];
    for &(a, b) in &view.group_edges {
        nbrs[a as usize].push(b);
        nbrs[b as usize].push(a);
    }
    // Choose the victim group whose neighborhood is cheapest to block.
    let cost =
        |gi: usize| -> usize { nbrs[gi].iter().map(|&j| view.groups[j as usize].len()).sum() };
    let mut order: Vec<usize> = (0..g).collect();
    order.sort_by_key(|&gi| (cost(gi), gi));
    let mut blocked: HashSet<NodeId> = HashSet::new();
    for gi in order {
        let c = cost(gi);
        if c == 0 || blocked.len() + c > budget {
            continue;
        }
        for &j in &nbrs[gi] {
            blocked.extend(view.groups[j as usize].iter().copied());
        }
        if blocked.len() + view.groups.iter().map(Vec::len).min().unwrap_or(0) > budget {
            break;
        }
    }
    // Leftover budget: block the largest half-groups to maximize the chance
    // some group loses all members.
    let mut out: Vec<NodeId> = blocked.into_iter().collect();
    let mut spare: Vec<NodeId> = view
        .groups
        .iter()
        .flat_map(|grp| grp.iter().copied())
        .filter(|v| !out.contains(v))
        .collect();
    spare.shuffle(rng);
    while out.len() < budget {
        match spare.pop() {
            Some(v) => out.push(v),
            None => break,
        }
    }
    out.truncate(budget);
    out
}

fn pick_bisection<R: Rng + ?Sized>(
    view: &TopologySnapshot,
    budget: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let adj = adjacency_map(view);
    let Some(&start) = view.nodes.first() else { return Vec::new() };
    // BFS until half the nodes are inside.
    let half = view.nodes.len() / 2;
    let mut inside: HashSet<NodeId> = HashSet::new();
    let mut q = VecDeque::from([start]);
    inside.insert(start);
    while let Some(v) = q.pop_front() {
        if inside.len() >= half {
            break;
        }
        for &w in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            if inside.len() >= half {
                break;
            }
            if inside.insert(w) {
                q.push_back(w);
            }
        }
    }
    // Block the inner boundary: inside-nodes with an edge out.
    let mut boundary: Vec<NodeId> = inside
        .iter()
        .copied()
        .filter(|v| adj.get(v).is_some_and(|ns| ns.iter().any(|w| !inside.contains(w))))
        .collect();
    boundary.sort_by_key(|v| v.raw());
    boundary.truncate(budget);
    // Leftover: random fills.
    let mut rest: Vec<NodeId> =
        view.nodes.iter().copied().filter(|v| !boundary.contains(v)).collect();
    rest.shuffle(rng);
    while boundary.len() < budget {
        match rest.pop() {
            Some(v) => boundary.push(v),
            None => break,
        }
    }
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_snapshot(round: u64, n: u64) -> TopologySnapshot {
        TopologySnapshot {
            round,
            nodes: (0..n).map(NodeId).collect(),
            edges: (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))).collect(),
            groups: Vec::new(),
            group_edges: Vec::new(),
        }
    }

    #[test]
    fn budget_respected() {
        let mut adv = DosAdversary::new(DosStrategy::Random, 0.25, 0, 1);
        adv.observe(line_snapshot(0, 100));
        let b = adv.block(0, 100);
        assert_eq!(b.len(), 25);
        assert!(b.within_bound(0.25, 100));
    }

    #[test]
    fn no_view_no_blocks() {
        let mut adv = DosAdversary::new(DosStrategy::Random, 0.25, 5, 1);
        adv.observe(line_snapshot(0, 100));
        // Round 2: the only snapshot is 2 rounds old, lateness is 5.
        assert!(adv.block(2, 100).is_empty());
        // Round 5: now it is exactly 5 old.
        assert!(!adv.block(5, 100).is_empty());
    }

    #[test]
    fn isolate_blocks_a_neighborhood() {
        let mut adv = DosAdversary::new(DosStrategy::IsolateNode, 0.1, 0, 2);
        adv.observe(line_snapshot(0, 50));
        let b = adv.block(0, 50);
        // Endpoint node 0 has a single neighbor (node 1) — cheapest victim.
        assert!(b.contains(NodeId(1)), "endpoint neighbor should be blocked");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn group_targeted_blocks_whole_neighbor_groups() {
        // 4 groups in a cycle; each group has 3 nodes.
        let groups: Vec<Vec<NodeId>> =
            (0..4).map(|g| (0..3).map(|i| NodeId(g * 3 + i)).collect()).collect();
        let snap = TopologySnapshot {
            round: 0,
            nodes: (0..12).map(NodeId).collect(),
            edges: Vec::new(),
            groups: groups.clone(),
            group_edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
        };
        let mut adv = DosAdversary::new(DosStrategy::GroupTargeted, 0.5, 0, 3);
        adv.observe(snap);
        let b = adv.block(0, 12);
        assert_eq!(b.len(), 6);
        // Some group's full neighborhood (two groups of 3) must be inside.
        let fully_blocked: Vec<usize> =
            (0..4).filter(|&g| groups[g].iter().all(|v| b.contains(*v))).collect();
        assert_eq!(fully_blocked.len(), 2, "two whole neighbor groups blocked");
    }

    #[test]
    fn bisection_cuts_a_line() {
        let mut adv = DosAdversary::new(DosStrategy::Bisection, 0.1, 0, 4);
        adv.observe(line_snapshot(0, 40));
        let b = adv.block(0, 40);
        assert!(!b.is_empty());
        // On a line, blocking the BFS boundary around the midpoint
        // disconnects it: check some middle node is blocked.
        let any_middle = (10..30).any(|i| b.contains(NodeId(i)));
        assert!(any_middle);
    }

    #[test]
    #[should_panic(expected = "bound must be in")]
    fn full_blocking_rejected() {
        DosAdversary::new(DosStrategy::Random, 1.0, 0, 0);
    }
}
