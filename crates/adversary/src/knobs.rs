//! Validated environment-driven tuning knobs.
//!
//! The fuzz and fault harnesses take their workload sizes from environment
//! variables (`FUZZ_CASES`, `SOAK_ROUNDS`, ...). Raw `parse().unwrap()`
//! turns a typo into an opaque panic; these helpers name the variable and
//! the offending value in the error, and clamp in-range-but-extreme values
//! into the documented band instead of letting a fat-fingered exponent
//! melt CI.

use std::fmt;

/// Why an environment knob could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnobError {
    /// The environment variable.
    pub name: String,
    /// The raw value found there.
    pub value: String,
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "environment variable {} must be a non-negative integer, got `{}`",
            self.name, self.value
        )
    }
}

impl std::error::Error for KnobError {}

/// Parse an already-fetched knob value: `None` (unset) yields `default`,
/// a valid integer is clamped into `[lo, hi]`, anything else is a
/// [`KnobError`] naming the variable.
pub fn parse_usize_knob(
    name: &str,
    raw: Option<&str>,
    default: usize,
    lo: usize,
    hi: usize,
) -> Result<usize, KnobError> {
    match raw {
        None => Ok(default),
        Some(text) => match text.trim().parse::<usize>() {
            Ok(v) => Ok(v.clamp(lo, hi)),
            Err(_) => Err(KnobError { name: name.to_string(), value: text.to_string() }),
        },
    }
}

/// Read `name` from the environment via [`parse_usize_knob`].
pub fn env_usize_knob(
    name: &str,
    default: usize,
    lo: usize,
    hi: usize,
) -> Result<usize, KnobError> {
    let raw = std::env::var(name).ok();
    parse_usize_knob(name, raw.as_deref(), default, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_uses_the_default() {
        assert_eq!(parse_usize_knob("X", None, 100, 1, 1000), Ok(100));
    }

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(parse_usize_knob("X", Some("250"), 100, 1, 1000), Ok(250));
        assert_eq!(parse_usize_knob("X", Some(" 7 "), 100, 1, 1000), Ok(7));
    }

    #[test]
    fn extreme_values_clamp_into_the_band() {
        assert_eq!(parse_usize_knob("X", Some("999999999"), 100, 1, 1000), Ok(1000));
        assert_eq!(parse_usize_knob("X", Some("0"), 100, 1, 1000), Ok(1));
    }

    #[test]
    fn garbage_names_the_variable_and_value() {
        let err = parse_usize_knob("FUZZ_CASES", Some("lots"), 100, 1, 1000).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("FUZZ_CASES") && msg.contains("`lots`"), "got: {msg}");
    }
}
