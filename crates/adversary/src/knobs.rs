//! Validated environment-driven tuning knobs.
//!
//! The fuzz and fault harnesses take their workload sizes from environment
//! variables (`FUZZ_CASES`, `SOAK_ROUNDS`, `BYZ_CASES`, ...). Raw
//! `parse().unwrap()` turns a typo into an opaque panic; these helpers name
//! the variable, the offending value and the permitted band in the error.
//! Out-of-range values are **rejected**, not silently clamped: a
//! fat-fingered exponent should fail loudly rather than quietly run a
//! different workload than the one asked for.

use std::fmt;

/// Why an environment knob could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnobError {
    /// The environment variable.
    pub name: String,
    /// The raw value found there.
    pub value: String,
    /// What was wrong with it.
    pub reason: KnobReason,
}

/// The specific defect in a rejected knob value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KnobReason {
    /// Empty or not parseable as a non-negative integer.
    NotAnInteger,
    /// Parsed fine but fell outside the documented band.
    OutOfRange {
        /// Inclusive lower bound.
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    },
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            KnobReason::NotAnInteger => write!(
                f,
                "environment variable {} must be a non-negative integer, got `{}`",
                self.name, self.value
            ),
            KnobReason::OutOfRange { lo, hi } => write!(
                f,
                "environment variable {} must be in [{lo}, {hi}], got `{}`",
                self.name, self.value
            ),
        }
    }
}

impl std::error::Error for KnobError {}

/// Parse an already-fetched knob value: `None` (unset) yields `default`,
/// an integer inside `[lo, hi]` passes through, and anything else — empty,
/// non-numeric, or out of range — is a [`KnobError`] naming the variable,
/// the value, and the permitted band.
pub fn parse_usize_knob(
    name: &str,
    raw: Option<&str>,
    default: usize,
    lo: usize,
    hi: usize,
) -> Result<usize, KnobError> {
    match raw {
        None => Ok(default),
        Some(text) => match text.trim().parse::<usize>() {
            Ok(v) if (lo..=hi).contains(&v) => Ok(v),
            Ok(_) => Err(KnobError {
                name: name.to_string(),
                value: text.to_string(),
                reason: KnobReason::OutOfRange { lo, hi },
            }),
            Err(_) => Err(KnobError {
                name: name.to_string(),
                value: text.to_string(),
                reason: KnobReason::NotAnInteger,
            }),
        },
    }
}

/// Read `name` from the environment via [`parse_usize_knob`].
pub fn env_usize_knob(
    name: &str,
    default: usize,
    lo: usize,
    hi: usize,
) -> Result<usize, KnobError> {
    let raw = std::env::var(name).ok();
    parse_usize_knob(name, raw.as_deref(), default, lo, hi)
}

/// [`parse_usize_knob`] for `u64`-typed knobs (round counts, hysteresis
/// windows). Bands are expressed in `usize` — every documented band fits
/// comfortably — so the error type stays uniform.
pub fn parse_u64_knob(
    name: &str,
    raw: Option<&str>,
    default: u64,
    lo: u64,
    hi: u64,
) -> Result<u64, KnobError> {
    match raw {
        None => Ok(default),
        Some(text) => match text.trim().parse::<u64>() {
            Ok(v) if (lo..=hi).contains(&v) => Ok(v),
            Ok(_) => Err(KnobError {
                name: name.to_string(),
                value: text.to_string(),
                reason: KnobReason::OutOfRange { lo: lo as usize, hi: hi as usize },
            }),
            Err(_) => Err(KnobError {
                name: name.to_string(),
                value: text.to_string(),
                reason: KnobReason::NotAnInteger,
            }),
        },
    }
}

/// Read `name` from the environment via [`parse_u64_knob`].
pub fn env_u64_knob(name: &str, default: u64, lo: u64, hi: u64) -> Result<u64, KnobError> {
    let raw = std::env::var(name).ok();
    parse_u64_knob(name, raw.as_deref(), default, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_uses_the_default() {
        assert_eq!(parse_usize_knob("X", None, 100, 1, 1000), Ok(100));
    }

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(parse_usize_knob("X", Some("250"), 100, 1, 1000), Ok(250));
        assert_eq!(parse_usize_knob("X", Some(" 7 "), 100, 1, 1000), Ok(7));
        // Boundary values are in range, not rejected.
        assert_eq!(parse_usize_knob("X", Some("1"), 100, 1, 1000), Ok(1));
        assert_eq!(parse_usize_knob("X", Some("1000"), 100, 1, 1000), Ok(1000));
    }

    #[test]
    fn out_of_range_values_are_rejected_not_clamped() {
        let err = parse_usize_knob("X", Some("999999999"), 100, 1, 1000).unwrap_err();
        assert_eq!(err.reason, KnobReason::OutOfRange { lo: 1, hi: 1000 });
        let msg = err.to_string();
        assert!(msg.contains("[1, 1000]") && msg.contains("`999999999`"), "got: {msg}");
        let err = parse_usize_knob("X", Some("0"), 100, 1, 1000).unwrap_err();
        assert_eq!(err.reason, KnobReason::OutOfRange { lo: 1, hi: 1000 });
    }

    #[test]
    fn empty_values_are_rejected_not_defaulted() {
        // An empty string is a set-but-broken variable, not an unset one.
        let err = parse_usize_knob("X", Some(""), 100, 1, 1000).unwrap_err();
        assert_eq!(err.reason, KnobReason::NotAnInteger);
        let err = parse_usize_knob("X", Some("   "), 100, 1, 1000).unwrap_err();
        assert_eq!(err.reason, KnobReason::NotAnInteger);
    }

    #[test]
    fn garbage_names_the_variable_and_value() {
        let err = parse_usize_knob("FUZZ_CASES", Some("lots"), 100, 1, 1000).unwrap_err();
        assert_eq!(err.reason, KnobReason::NotAnInteger);
        let msg = err.to_string();
        assert!(msg.contains("FUZZ_CASES") && msg.contains("`lots`"), "got: {msg}");
        let err = parse_usize_knob("FUZZ_CASES", Some("-3"), 100, 1, 1000).unwrap_err();
        assert_eq!(err.reason, KnobReason::NotAnInteger);
    }

    #[test]
    fn u64_knob_mirrors_usize_semantics() {
        assert_eq!(parse_u64_knob("R", None, 8, 1, 100_000), Ok(8));
        assert_eq!(parse_u64_knob("R", Some("42"), 8, 1, 100_000), Ok(42));
        // Boundaries included, rejections named.
        assert_eq!(parse_u64_knob("R", Some("1"), 8, 1, 100_000), Ok(1));
        assert_eq!(parse_u64_knob("R", Some("100000"), 8, 1, 100_000), Ok(100_000));
        let err = parse_u64_knob("R", Some("0"), 8, 1, 100_000).unwrap_err();
        assert_eq!(err.reason, KnobReason::OutOfRange { lo: 1, hi: 100_000 });
        let err = parse_u64_knob("R", Some(""), 8, 1, 100_000).unwrap_err();
        assert_eq!(err.reason, KnobReason::NotAnInteger);
        let err = parse_u64_knob("RECOVERY_HYSTERESIS", Some("ten"), 8, 1, 100_000).unwrap_err();
        assert!(err.to_string().contains("RECOVERY_HYSTERESIS"));
    }
}
