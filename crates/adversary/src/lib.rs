//! # overlay-adversary — churn and DoS adversaries
//!
//! Implements the two adversary models of the paper (Section 1.1):
//!
//! * [`churn`] — an omniscient adversary of churn rate `r` that prescribes
//!   node sets `W_i` with `|W_i|/r <= |W_{i+1}| <= r |W_i|`, introducing
//!   each new node to exactly one staying node and at most `ceil(r)` new
//!   nodes to any single node per round.
//! * [`dos`] — an `r`-bounded, `t`-late adversary that blocks up to an
//!   `r`-fraction of the nodes each round using only topology information
//!   that is at least `t` rounds old, served from a [`lateness`] history
//!   buffer. Includes a 0-late control adversary that demonstrates the
//!   impossibility result (any polylog-degree overlay can be disconnected
//!   by a current-topology adversary).
//! * [`fuzz`] — seed-driven generation of paper-legal fault schedules
//!   (random strategy/bound/lateness/rate combinations within the limits
//!   above) for the fuzz-testing harness.
//! * [`faults`] — beyond-model composite fault schedules (probabilistic
//!   message loss, crash-stop and crash-recovery with state loss) used by
//!   the self-healing robustness harness in `reconfig-core`.
//! * [`adaptive`] — red-team adversaries that react to the observed
//!   topology (still `t`-late and `r`-bounded): min-cut targeting,
//!   hub/leader targeting, oscillating partitions, and follow-the-healer.
//! * [`shrink`] — delta-debugging reduction of invariant-violating block
//!   traces to minimal replayable repro files.
//! * [`catastrophe`] — beyond-budget correlated-fault campaigns (mass
//!   crash bursts, rejoin storms, timed partitions) composed with the
//!   blocking attackers, with two-axis shrinkable repro traces.
//! * [`byzantine`] — Byzantine/Sybil adversary families that participate
//!   dishonestly instead of merely blocking: Sybil join campaigns, message
//!   forgery by corrupted members, eclipse attacks on the join path, and
//!   chaos mixes composable with the blocking attackers above, all driven
//!   through a budget- and lateness-enforcing harness.

pub mod adaptive;
pub mod byzantine;
pub mod catastrophe;
pub mod churn;
pub mod dos;
pub mod faults;
pub mod fuzz;
pub mod knobs;
pub mod lateness;
pub mod shrink;

pub use adaptive::{
    AdaptiveHarness, AdaptiveStrategy, Attacker, FollowTheHealer, HighDegreeAttack, MinCutAttack,
    OscillatingPartition,
};
pub use byzantine::{
    ByzActions, ByzAttacker, ByzBudget, ByzCampaign, ByzFamily, ByzHarness, ChaosCampaign,
    EclipseCampaign, ForgeCampaign, Forgery, JoinRequest, SybilCampaign,
};
pub use catastrophe::{
    shrink_catastrophe, CatastropheCampaign, CatastropheRepro, CatastropheSpec, CatastropheTrace,
};
pub use churn::{ChurnEvent, ChurnSchedule, ChurnStrategy};
pub use dos::{DosAdversary, DosStrategy};
pub use faults::{FaultConfigError, FaultSchedule};
pub use fuzz::{FaultPlan, FuzzLimits};
pub use knobs::{env_u64_knob, env_usize_knob, KnobError, KnobReason};
pub use lateness::{TopologyHistory, TopologySnapshot};
pub use shrink::{shrink_trace, AdversaryTrace, ReplayAdversary, Repro, ShrinkReport};
