//! Adversarial churn (Section 1.1).
//!
//! The adversary prescribes node sets `W_i` with churn rate `r`:
//! `|W_i|/r <= |W_{i+1}| <= r |W_i|`. Every new node is introduced to
//! exactly one staying node, and at most `ceil(r)` new nodes are introduced
//! to any single node per round. Every id enters and leaves at most once.
//!
//! The adversary is **omniscient**: strategies may inspect the full current
//! membership (and the ages we track for them) when choosing victims.
//! Operationally the schedule is queried once per reconfiguration epoch and
//! emits joins and leaves for that epoch.

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::HashMap;

/// A node joining, and the existing member it is introduced to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Join {
    /// The fresh id entering the system.
    pub new_node: NodeId,
    /// The staying member that learns `new_node`'s id.
    pub introduced_to: NodeId,
}

/// Churn prescribed for one epoch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Nodes entering, each with its introduction target.
    pub joins: Vec<Join>,
    /// Nodes prescribed to leave.
    pub leaves: Vec<NodeId>,
}

impl ChurnEvent {
    /// True if nothing happens this epoch.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }
}

/// How the omniscient adversary chooses its victims and introducers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnStrategy {
    /// Uniformly random leavers; introductions spread randomly.
    Random,
    /// Remove the oldest members first — attacks any "stable core"
    /// assumption.
    OldestFirst,
    /// Remove the youngest members first — tries to evict nodes before
    /// they are integrated.
    YoungestFirst,
    /// Introduce all new nodes to as few members as possible (respecting
    /// the `ceil(r)` cap) while removing random members — stresses the
    /// delegation path of Algorithm 3.
    Concentrated,
}

/// An omniscient churn schedule of rate `r` and per-epoch intensity in
/// `(0, 1]` (1 = use the full budget the rate allows).
#[derive(Clone, Debug)]
pub struct ChurnSchedule {
    strategy: ChurnStrategy,
    rate: f64,
    intensity: f64,
    next_id: u64,
    /// Epoch in which each current member joined.
    ages: HashMap<NodeId, u64>,
    epoch: u64,
}

impl ChurnSchedule {
    /// Create a schedule. `rate >= 1`; fresh ids are drawn starting at
    /// `first_free_id` (must exceed every existing id — ids are used at
    /// most once).
    pub fn new(strategy: ChurnStrategy, rate: f64, intensity: f64, first_free_id: u64) -> Self {
        assert!(rate >= 1.0, "churn rate must be >= 1, got {rate}");
        assert!(intensity > 0.0 && intensity <= 1.0, "intensity must be in (0, 1]");
        Self { strategy, rate, intensity, next_id: first_free_id, ages: HashMap::new(), epoch: 0 }
    }

    /// The churn rate `r`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Maximum introductions per member per epoch (`ceil(r)`).
    pub fn max_intro_per_node(&self) -> usize {
        self.rate.ceil() as usize
    }

    /// Prescribe churn for the next epoch given the current membership.
    ///
    /// Guarantees: `|members'| in [|members|/r, r |members|]`, never fewer
    /// than 4 survivors, introductions only to staying members with at most
    /// `ceil(r)` per member, and fresh never-reused ids.
    pub fn next<R: rand::Rng + ?Sized>(&mut self, members: &[NodeId], rng: &mut R) -> ChurnEvent {
        self.epoch += 1;
        for &m in members {
            self.ages.entry(m).or_insert(self.epoch - 1);
        }
        let n = members.len();
        assert!(n >= 4, "membership too small for churn");

        // Budget: leave up to (1 - 1/r) n, join up to (r - 1) n, scaled by
        // intensity, such that the size ratio constraint always holds.
        let max_leave = ((1.0 - 1.0 / self.rate) * n as f64 * self.intensity).floor() as usize;
        let max_join = ((self.rate - 1.0) * n as f64 * self.intensity).floor() as usize;
        let leaves_n = max_leave.min(n.saturating_sub(4));
        let joins_n = max_join;

        let mut pool = members.to_vec();
        match self.strategy {
            ChurnStrategy::Random | ChurnStrategy::Concentrated => pool.shuffle(rng),
            ChurnStrategy::OldestFirst => {
                pool.sort_by_key(|m| (self.ages[m], m.raw()));
            }
            ChurnStrategy::YoungestFirst => {
                pool.sort_by_key(|m| (std::cmp::Reverse(self.ages[m]), m.raw()));
            }
        }
        let leaves: Vec<NodeId> = pool[..leaves_n].to_vec();
        let stayers: Vec<NodeId> = pool[leaves_n..].to_vec();
        for l in &leaves {
            self.ages.remove(l);
        }

        // The paper's cap of ceil(r) introductions is per *round*; an epoch
        // spans several rounds, but we conservatively apply the per-round
        // cap per epoch and clamp the join budget to what stayers can take.
        let cap = self.max_intro_per_node();
        let joins_n = joins_n.min(stayers.len() * cap);
        let mut joins = Vec::with_capacity(joins_n);
        let mut intro_order: Vec<NodeId> = match self.strategy {
            // Concentrate on the fewest possible introducers.
            ChurnStrategy::Concentrated => stayers.clone(),
            _ => {
                let mut s = stayers.clone();
                s.shuffle(rng);
                s
            }
        };
        // Round-robin chunks of size `cap` over the introducer order:
        // introducer[0] gets the first `cap` joins, etc.
        intro_order.truncate(joins_n.div_ceil(cap).max(1));
        for j in 0..joins_n {
            let target = intro_order[j / cap];
            let id = NodeId(self.next_id);
            self.next_id += 1;
            self.ages.insert(id, self.epoch);
            joins.push(Join { new_node: id, introduced_to: target });
        }
        ChurnEvent { joins, leaves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn members(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn apply(members: &[NodeId], ev: &ChurnEvent) -> Vec<NodeId> {
        let mut out: Vec<NodeId> =
            members.iter().filter(|m| !ev.leaves.contains(m)).copied().collect();
        out.extend(ev.joins.iter().map(|j| j.new_node));
        out
    }

    #[test]
    fn size_ratio_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut sched = ChurnSchedule::new(ChurnStrategy::Random, 2.0, 1.0, 1000);
        let m = members(100);
        let ev = sched.next(&m, &mut rng);
        let m2 = apply(&m, &ev);
        assert!(m2.len() >= 50 && m2.len() <= 200, "size {} out of [n/r, rn]", m2.len());
    }

    #[test]
    fn introductions_respect_cap_and_stayers() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut sched = ChurnSchedule::new(ChurnStrategy::Concentrated, 3.0, 1.0, 1000);
        let m = members(60);
        let ev = sched.next(&m, &mut rng);
        let cap = sched.max_intro_per_node();
        let mut per_target: HashMap<NodeId, usize> = HashMap::new();
        for j in &ev.joins {
            assert!(!ev.leaves.contains(&j.introduced_to), "introduced to a leaver");
            *per_target.entry(j.introduced_to).or_insert(0) += 1;
        }
        for (&t, &c) in &per_target {
            assert!(c <= cap, "target {t} got {c} > cap {cap}");
        }
        // Concentrated: uses the minimum number of introducers.
        assert_eq!(per_target.len(), ev.joins.len().div_ceil(cap));
    }

    #[test]
    fn ids_are_fresh_and_unique() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut sched = ChurnSchedule::new(ChurnStrategy::Random, 2.0, 0.5, 1000);
        let mut m = members(40);
        let mut seen: Vec<NodeId> = m.clone();
        for _ in 0..5 {
            let ev = sched.next(&m, &mut rng);
            for j in &ev.joins {
                assert!(!seen.contains(&j.new_node), "id reuse: {}", j.new_node);
                seen.push(j.new_node);
            }
            m = apply(&m, &ev);
        }
    }

    #[test]
    fn oldest_first_removes_initial_members() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut sched = ChurnSchedule::new(ChurnStrategy::OldestFirst, 2.0, 0.5, 1000);
        let m = members(20);
        let ev1 = sched.next(&m, &mut rng);
        // All leavers are from the original (age-0) cohort.
        for l in &ev1.leaves {
            assert!(l.raw() < 20);
        }
        let m2 = apply(&m, &ev1);
        let ev2 = sched.next(&m2, &mut rng);
        // Second round still prefers remaining age-0 members over joiners.
        for l in &ev2.leaves {
            assert!(l.raw() < 20, "leaver {l} is not oldest-cohort");
        }
    }

    #[test]
    fn never_removes_below_four_members() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut sched = ChurnSchedule::new(ChurnStrategy::Random, 100.0, 1.0, 1000);
        let m = members(5);
        let ev = sched.next(&m, &mut rng);
        assert!(m.len() - ev.leaves.len() >= 4);
    }

    #[test]
    #[should_panic(expected = "rate must be >= 1")]
    fn sub_one_rate_rejected() {
        ChurnSchedule::new(ChurnStrategy::Random, 0.5, 1.0, 0);
    }
}
