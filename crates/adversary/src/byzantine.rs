//! Byzantine and Sybil adversary families.
//!
//! The DoS adversaries elsewhere in this crate only *silence* nodes; the
//! adversaries here additionally **participate dishonestly**: they submit
//! Sybil join requests that claim a placement, corrupt existing members
//! into Byzantine behavior, and have corrupted members forge membership
//! updates (evictions, desynchronization claims) against honest peers.
//! The families:
//!
//! * [`SybilCampaign`] — a join campaign that concentrates fresh Sybil
//!   identities into one target supernode group (the weakest group of the
//!   stale view), aiming to capture its membership majority.
//! * [`ForgeCampaign`] — corrupts existing members; the corrupted members
//!   forge `Evict`/`Desync` membership updates against honest members of
//!   their own group, draining it from the inside.
//! * [`EclipseCampaign`] — corrupts the smallest-id members: the join
//!   path's introducer choice is "smallest live member"
//!   (`reconfig_core::healing::smallest_live_introducer`), so owning the
//!   low end of the id space eclipses every honest joiner.
//! * [`ChaosCampaign`] — rotates through all of the above and composes
//!   them with an ordinary blocking [`Attacker`], so Byzantine pressure
//!   and DoS pressure land together.
//!
//! A [`ByzHarness`] mediates between a campaign and the runner exactly
//! like [`crate::adaptive::AdaptiveHarness`] does for blocking strategies:
//! views age through a [`TopologyHistory`] before the campaign may see
//! them, and every emitted action is clamped to the declared
//! [`ByzBudget`] — total Byzantine identities, joins per round, and
//! blocking fraction. A buggy or greedy campaign can never exceed the
//! declared adversary power.
//!
//! Campaigns are deterministic functions of `(view, round)`: no RNG is
//! drawn anywhere in this module, so a `(seed, campaign, budget)` triple
//! replays identically.

use crate::adaptive::Attacker;
use crate::lateness::{TopologyHistory, TopologySnapshot};
use simnet::{BlockSet, NodeId};
use std::collections::BTreeSet;
use telemetry::{EventKind, Telemetry};

/// Fresh Sybil identities start here — far above any honest id, so a
/// campaign can never collide with (or be confused for) an honest node.
pub const SYBIL_ID_BASE: u64 = 1 << 40;

/// A join attempt submitted to the overlay's join path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinRequest {
    /// The joining identity.
    pub id: NodeId,
    /// The supernode group the joiner *claims* it should be placed in.
    /// An unvalidated join path honors the claim; the quorum defense
    /// ignores it and places uniformly.
    pub claimed_group: Option<u64>,
}

/// A protocol message forged by a Byzantine member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Forgery {
    /// `by` asserts that `victim` left / must be evicted.
    Evict {
        /// The forging (Byzantine) member.
        by: NodeId,
        /// The honest member named in the forged update.
        victim: NodeId,
    },
    /// `by` feeds `victim` a stale assignment, desynchronizing it.
    Desync {
        /// The forging (Byzantine) member.
        by: NodeId,
        /// The honest member named in the forged update.
        victim: NodeId,
    },
}

impl Forgery {
    /// The forging member.
    pub fn by(&self) -> NodeId {
        match *self {
            Forgery::Evict { by, .. } | Forgery::Desync { by, .. } => by,
        }
    }

    /// The targeted honest member.
    pub fn victim(&self) -> NodeId {
        match *self {
            Forgery::Evict { victim, .. } | Forgery::Desync { victim, .. } => victim,
        }
    }
}

/// Everything a Byzantine adversary does in one round.
#[derive(Clone, Debug, Default)]
pub struct ByzActions {
    /// Ordinary DoS blocking (composed campaigns only).
    pub blocked: BlockSet,
    /// Sybil join requests submitted this round.
    pub joins: Vec<JoinRequest>,
    /// Existing members to corrupt into Byzantine behavior.
    pub corrupt: Vec<NodeId>,
    /// Forged membership updates emitted by corrupted members.
    pub forges: Vec<Forgery>,
}

impl ByzActions {
    /// True when the round carries no adversarial action at all.
    pub fn is_empty(&self) -> bool {
        self.blocked.is_empty()
            && self.joins.is_empty()
            && self.corrupt.is_empty()
            && self.forges.is_empty()
    }
}

/// The declared power of a Byzantine adversary. The harness clamps every
/// emission to these bounds.
#[derive(Clone, Copy, Debug)]
pub struct ByzBudget {
    /// Cap on total Byzantine identities (Sybil joins + corruptions) as a
    /// fraction of the current population.
    pub byz_fraction: f64,
    /// Cap on join requests per round.
    pub joins_per_round: usize,
    /// Blocking budget fraction `r` for composed DoS pressure.
    pub block_bound: f64,
}

impl Default for ByzBudget {
    fn default() -> Self {
        Self { byz_fraction: 0.1, joins_per_round: 4, block_bound: 0.0 }
    }
}

/// A Byzantine campaign: a deterministic plan of one round's actions
/// given a (stale) topology view. The harness owns lateness and budgets;
/// the campaign only decides *what* to attempt.
pub trait ByzCampaign {
    /// Short stable name for experiment tables and repro files.
    fn name(&self) -> &'static str;
    /// Plan this round's actions from the stale view. `byz` is the set of
    /// identities already Byzantine (admitted Sybils + corruptions) so a
    /// campaign can aim the remaining budget at fresh targets.
    fn plan(
        &mut self,
        view: &TopologySnapshot,
        round: u64,
        n_current: usize,
        byz: &BTreeSet<NodeId>,
    ) -> ByzActions;
}

/// Round-stepped Byzantine adversary interface, the analogue of
/// [`Attacker`] for runners that accept joins and forgeries as well as
/// block sets.
pub trait ByzAttacker {
    /// Record the current topology; called every round before [`act`].
    ///
    /// [`act`]: ByzAttacker::act
    fn observe(&mut self, snap: TopologySnapshot);
    /// The round's actions; `n_current` defines the budgets.
    fn act(&mut self, round: u64, n_current: usize) -> ByzActions;
    /// Human-readable label for experiment tables.
    fn label(&self) -> String;
}

impl<A: ByzAttacker + ?Sized> ByzAttacker for Box<A> {
    fn observe(&mut self, snap: TopologySnapshot) {
        (**self).observe(snap)
    }

    fn act(&mut self, round: u64, n_current: usize) -> ByzActions {
        (**self).act(round, n_current)
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

/// The weakest (smallest) non-empty group of a view — the cheapest
/// majority to capture. Falls back to group 0.
fn weakest_group(view: &TopologySnapshot) -> u64 {
    view.groups
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .min_by_key(|(x, g)| (g.len(), *x))
        .map(|(x, _)| x as u64)
        .unwrap_or(0)
}

/// Concentrate fresh Sybil identities into one target group.
#[derive(Clone, Debug)]
pub struct SybilCampaign {
    next_id: u64,
    /// The captured target: locked to the weakest group of the first view
    /// so the flood keeps piling onto one group instead of chasing
    /// whichever group its own joins just made non-weakest.
    target: Option<u64>,
    /// Join requests attempted per round (further clamped by the budget).
    pub rate: usize,
}

impl Default for SybilCampaign {
    fn default() -> Self {
        Self { next_id: SYBIL_ID_BASE, target: None, rate: 4 }
    }
}

impl ByzCampaign for SybilCampaign {
    fn name(&self) -> &'static str {
        "byz:sybil"
    }

    fn plan(
        &mut self,
        view: &TopologySnapshot,
        _round: u64,
        _n_current: usize,
        _byz: &BTreeSet<NodeId>,
    ) -> ByzActions {
        let target = *self.target.get_or_insert_with(|| weakest_group(view));
        let joins = (0..self.rate)
            .map(|_| {
                let id = NodeId(self.next_id);
                self.next_id += 1;
                JoinRequest { id, claimed_group: Some(target) }
            })
            .collect();
        ByzActions { joins, ..ByzActions::default() }
    }
}

/// Corrupt members and forge membership updates against their honest
/// group-mates.
#[derive(Clone, Debug)]
pub struct ForgeCampaign {
    /// Corruptions attempted per round (further clamped by the budget).
    pub corrupt_rate: usize,
    /// Forgeries emitted per corrupted member per round.
    pub forges_per_member: usize,
}

impl Default for ForgeCampaign {
    fn default() -> Self {
        Self { corrupt_rate: 1, forges_per_member: 1 }
    }
}

impl ByzCampaign for ForgeCampaign {
    fn name(&self) -> &'static str {
        "byz:forge"
    }

    fn plan(
        &mut self,
        view: &TopologySnapshot,
        round: u64,
        _n_current: usize,
        byz: &BTreeSet<NodeId>,
    ) -> ByzActions {
        // Corrupt one member per group, preferring groups that have no
        // Byzantine presence yet: a spread of single insiders forges
        // against group-mates everywhere at once, instead of piling into
        // one group (which would trade forgery reach for a concentration
        // no forgery defense could be blamed for missing). Within a
        // group, pick the largest-id honest member — an ordinary member,
        // never the smallest-id introducer.
        let mut candidates: Vec<(usize, std::cmp::Reverse<NodeId>)> = view
            .groups
            .iter()
            .filter_map(|grp| {
                let byz_here = grp.iter().filter(|v| byz.contains(v)).count();
                grp.iter()
                    .filter(|v| !byz.contains(v))
                    .max()
                    .map(|&m| (byz_here, std::cmp::Reverse(m)))
            })
            .collect();
        candidates.sort_unstable();
        let corrupt: Vec<NodeId> =
            candidates.into_iter().take(self.corrupt_rate).map(|(_, r)| r.0).collect();
        // Every Byzantine member in the view forges against honest
        // members of its own group — the membership updates a group-mate
        // is entitled to emit, which is what makes the forgery plausible.
        let mut forges = Vec::new();
        for grp in &view.groups {
            let (bad, good): (Vec<NodeId>, Vec<NodeId>) = grp.iter().partition(|v| byz.contains(v));
            for (k, &by) in bad.iter().enumerate() {
                for j in 0..self.forges_per_member {
                    if good.is_empty() {
                        break;
                    }
                    let victim = good[(round as usize + k + j) % good.len()];
                    // Alternate eviction and desync forgeries.
                    forges.push(if (round as usize + k + j) % 2 == 0 {
                        Forgery::Evict { by, victim }
                    } else {
                        Forgery::Desync { by, victim }
                    });
                }
            }
        }
        ByzActions { corrupt, forges, ..ByzActions::default() }
    }
}

/// Capture the join path: corrupt the smallest-id members, which the
/// "smallest live member" introducer rule hands every honest joiner.
#[derive(Clone, Debug)]
pub struct EclipseCampaign {
    /// Corruptions attempted per round (further clamped by the budget).
    pub corrupt_rate: usize,
}

impl Default for EclipseCampaign {
    fn default() -> Self {
        Self { corrupt_rate: 2 }
    }
}

impl ByzCampaign for EclipseCampaign {
    fn name(&self) -> &'static str {
        "byz:eclipse"
    }

    fn plan(
        &mut self,
        view: &TopologySnapshot,
        _round: u64,
        _n_current: usize,
        byz: &BTreeSet<NodeId>,
    ) -> ByzActions {
        let mut ids: Vec<NodeId> = view.nodes.clone();
        ids.sort_unstable();
        let corrupt: Vec<NodeId> =
            ids.into_iter().filter(|v| !byz.contains(v)).take(self.corrupt_rate).collect();
        ByzActions { corrupt, ..ByzActions::default() }
    }
}

/// Rotate Sybil, forge and eclipse pressure, optionally composed with an
/// ordinary blocking [`Attacker`] running inside the same round.
pub struct ChaosCampaign {
    sybil: SybilCampaign,
    forge: ForgeCampaign,
    eclipse: EclipseCampaign,
    /// Rounds per rotation slot.
    pub period: u64,
    blocker: Option<Box<dyn Attacker>>,
}

impl Default for ChaosCampaign {
    fn default() -> Self {
        Self {
            sybil: SybilCampaign::default(),
            forge: ForgeCampaign::default(),
            eclipse: EclipseCampaign::default(),
            period: 4,
            blocker: None,
        }
    }
}

impl ChaosCampaign {
    /// Compose with a blocking attacker (oblivious or adaptive): its block
    /// set is merged into each round's actions and clamped against the
    /// harness's `block_bound`.
    pub fn with_blocker(mut self, blocker: Box<dyn Attacker>) -> Self {
        self.blocker = Some(blocker);
        self
    }
}

impl ByzCampaign for ChaosCampaign {
    fn name(&self) -> &'static str {
        "byz:chaos"
    }

    fn plan(
        &mut self,
        view: &TopologySnapshot,
        round: u64,
        n_current: usize,
        byz: &BTreeSet<NodeId>,
    ) -> ByzActions {
        let period = self.period.max(1);
        let mut acts = match (round / period) % 3 {
            0 => self.sybil.plan(view, round, n_current, byz),
            1 => self.forge.plan(view, round, n_current, byz),
            _ => self.eclipse.plan(view, round, n_current, byz),
        };
        if let Some(blocker) = &mut self.blocker {
            // The inner attacker keeps its own lateness discipline; the
            // harness already aged the view we hand it.
            blocker.observe(view.clone());
            acts.blocked = blocker.block(round, n_current);
        }
        acts
    }
}

/// The campaign suite as a closed enum, nameable in experiment tables and
/// fuzz repro output (mirrors [`crate::adaptive::AdaptiveStrategy`]).
pub enum ByzFamily {
    /// [`SybilCampaign`].
    Sybil(SybilCampaign),
    /// [`ForgeCampaign`].
    Forge(ForgeCampaign),
    /// [`EclipseCampaign`].
    Eclipse(EclipseCampaign),
    /// [`ChaosCampaign`].
    Chaos(ChaosCampaign),
}

impl ByzFamily {
    /// One instance of every family, in a stable order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::Sybil(SybilCampaign::default()),
            Self::Forge(ForgeCampaign::default()),
            Self::Eclipse(EclipseCampaign::default()),
            Self::Chaos(ChaosCampaign::default()),
        ]
    }

    /// Look a family up by its [`ByzCampaign::name`].
    pub fn by_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|f| f.name() == name)
    }
}

impl ByzCampaign for ByzFamily {
    fn name(&self) -> &'static str {
        match self {
            Self::Sybil(c) => c.name(),
            Self::Forge(c) => c.name(),
            Self::Eclipse(c) => c.name(),
            Self::Chaos(c) => c.name(),
        }
    }

    fn plan(
        &mut self,
        view: &TopologySnapshot,
        round: u64,
        n_current: usize,
        byz: &BTreeSet<NodeId>,
    ) -> ByzActions {
        match self {
            Self::Sybil(c) => c.plan(view, round, n_current, byz),
            Self::Forge(c) => c.plan(view, round, n_current, byz),
            Self::Eclipse(c) => c.plan(view, round, n_current, byz),
            Self::Chaos(c) => c.plan(view, round, n_current, byz),
        }
    }
}

/// Runs a [`ByzCampaign`] under the model's rules: views age through a
/// [`TopologyHistory`] before the campaign may see them, and every
/// emission is clamped to the [`ByzBudget`] — joins per round, total
/// Byzantine identities, blocking fraction. The harness tracks which
/// identities it has already spent budget on, so re-corrupting or
/// re-joining the same identity is free (idempotent), not double-charged.
pub struct ByzHarness<C> {
    campaign: C,
    budget: ByzBudget,
    history: TopologyHistory,
    /// Identities charged against the `byz_fraction` budget so far.
    spent: BTreeSet<NodeId>,
    /// Pure observability; never consulted when planning.
    tel: Telemetry,
}

impl<C: ByzCampaign> ByzHarness<C> {
    /// Harness a campaign with the given budget and lateness `t`.
    pub fn new(campaign: C, budget: ByzBudget, lateness: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&budget.byz_fraction),
            "byz_fraction must be in [0, 1), got {}",
            budget.byz_fraction
        );
        assert!(
            (0.0..1.0).contains(&budget.block_bound),
            "block_bound must be in [0, 1), got {}",
            budget.block_bound
        );
        Self {
            campaign,
            budget,
            history: TopologyHistory::new(lateness),
            spent: BTreeSet::new(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry recorder (builder-style): emitted actions record
    /// into `adv.byz.*` counters.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        tel.emit(0, EventKind::StrategyChoice, None, 0, || self.campaign.name().to_string());
        self.tel = tel;
        self
    }

    /// The declared budget.
    pub fn budget(&self) -> ByzBudget {
        self.budget
    }

    /// The enforced lateness `t`.
    pub fn lateness(&self) -> u64 {
        self.history.lateness()
    }

    /// Identities the harness has charged against the identity budget.
    pub fn spent_identities(&self) -> usize {
        self.spent.len()
    }
}

impl<C: ByzCampaign> ByzAttacker for ByzHarness<C> {
    fn observe(&mut self, snap: TopologySnapshot) {
        self.history.push(snap);
    }

    fn act(&mut self, round: u64, n_current: usize) -> ByzActions {
        let identity_cap = (self.budget.byz_fraction * n_current as f64).floor() as usize;
        let mut acts = match self.history.view(round) {
            Some(view) => self.campaign.plan(view, round, n_current, &self.spent),
            None => ByzActions::default(),
        };
        // Joins-per-round cap, then the global identity budget. Each kept
        // join or corruption charges one identity; repeats are free.
        acts.joins.truncate(self.budget.joins_per_round);
        acts.joins.retain(|j| {
            self.spent.contains(&j.id)
                || (self.spent.len() < identity_cap && self.spent.insert(j.id))
        });
        acts.corrupt.retain(|v| {
            self.spent.contains(v) || (self.spent.len() < identity_cap && self.spent.insert(*v))
        });
        // Forgeries may only be emitted by identities inside the budget.
        acts.forges.retain(|f| self.spent.contains(&f.by()));
        // Blocking is clamped exactly like AdaptiveHarness clamps.
        let block_cap = (self.budget.block_bound * n_current as f64).floor() as usize;
        if acts.blocked.len() > block_cap {
            acts.blocked = BlockSet::from_iter(acts.blocked.iter().take(block_cap));
        }
        if self.tel.enabled() {
            let name = self.campaign.name();
            self.tel.counter("adv.byz.joins", &[("family", name)]).add(acts.joins.len() as u64);
            self.tel
                .counter("adv.byz.corrupted", &[("family", name)])
                .add(acts.corrupt.len() as u64);
            self.tel.counter("adv.byz.forges", &[("family", name)]).add(acts.forges.len() as u64);
            self.tel.counter("adv.byz.blocked", &[("family", name)]).add(acts.blocked.len() as u64);
        }
        acts
    }

    fn label(&self) -> String {
        self.campaign.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_snapshot(round: u64, groups: &[&[u64]]) -> TopologySnapshot {
        TopologySnapshot {
            round,
            nodes: groups.iter().flat_map(|g| g.iter().copied().map(NodeId)).collect(),
            edges: Vec::new(),
            groups: groups.iter().map(|g| g.iter().copied().map(NodeId).collect()).collect(),
            group_edges: (0..groups.len().saturating_sub(1))
                .map(|i| (i as u32, i as u32 + 1))
                .collect(),
        }
    }

    #[test]
    fn sybil_campaign_targets_the_weakest_group() {
        let budget = ByzBudget { byz_fraction: 0.5, joins_per_round: 3, block_bound: 0.0 };
        let mut h = ByzHarness::new(SybilCampaign::default(), budget, 0);
        h.observe(grouped_snapshot(0, &[&[0, 1, 2, 3], &[4, 5], &[6, 7, 8]]));
        let acts = h.act(0, 9);
        assert_eq!(acts.joins.len(), 3, "joins_per_round caps the rate");
        for j in &acts.joins {
            assert_eq!(j.claimed_group, Some(1), "group 1 is the smallest");
            assert!(j.id.raw() >= SYBIL_ID_BASE, "sybil ids never collide with honest ids");
        }
    }

    #[test]
    fn forge_campaign_forges_within_the_forgers_group() {
        let budget = ByzBudget { byz_fraction: 0.5, joins_per_round: 0, block_bound: 0.0 };
        let mut h = ByzHarness::new(ForgeCampaign::default(), budget, 0);
        // Pre-corrupt node 5 by letting the campaign pick it (largest id).
        h.observe(grouped_snapshot(0, &[&[0, 1, 2], &[3, 4, 5]]));
        let first = h.act(0, 6);
        assert_eq!(first.corrupt, vec![NodeId(5)], "largest id is corrupted first");
        h.observe(grouped_snapshot(1, &[&[0, 1, 2], &[3, 4, 5]]));
        let second = h.act(1, 6);
        assert!(!second.forges.is_empty(), "the corrupted member must forge");
        for f in &second.forges {
            assert_eq!(f.by(), NodeId(5));
            assert!(
                [NodeId(3), NodeId(4)].contains(&f.victim()),
                "victims come from the forger's own group: {f:?}"
            );
        }
    }

    #[test]
    fn eclipse_campaign_corrupts_the_smallest_ids() {
        let budget = ByzBudget { byz_fraction: 0.5, joins_per_round: 0, block_bound: 0.0 };
        let mut h = ByzHarness::new(EclipseCampaign::default(), budget, 0);
        h.observe(grouped_snapshot(0, &[&[7, 2, 9], &[4, 1, 6]]));
        let acts = h.act(0, 6);
        assert_eq!(acts.corrupt, vec![NodeId(1), NodeId(2)], "smallest ids own the join path");
    }

    #[test]
    fn harness_enforces_identity_budget_and_lateness() {
        // byz_fraction 0.3 of 10 = 3 identities total, ever.
        let budget = ByzBudget { byz_fraction: 0.3, joins_per_round: 10, block_bound: 0.0 };
        let mut h =
            ByzHarness::new(SybilCampaign { rate: 10, ..SybilCampaign::default() }, budget, 4);
        h.observe(grouped_snapshot(0, &[&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9]]));
        assert!(h.act(2, 10).is_empty(), "no view is 4 rounds old yet");
        let acts = h.act(4, 10);
        assert_eq!(acts.joins.len(), 3, "identity budget clamps the flood");
        assert_eq!(h.spent_identities(), 3);
        // The budget is global: later rounds get nothing new.
        h.observe(grouped_snapshot(5, &[&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9]]));
        let later = h.act(9, 10);
        assert!(later.joins.is_empty(), "spent budget stays spent: {later:?}");
    }

    #[test]
    fn harness_drops_forgeries_from_unfunded_identities() {
        struct Rogue;
        impl ByzCampaign for Rogue {
            fn name(&self) -> &'static str {
                "test:rogue"
            }
            fn plan(
                &mut self,
                _view: &TopologySnapshot,
                _round: u64,
                _n: usize,
                _byz: &BTreeSet<NodeId>,
            ) -> ByzActions {
                ByzActions {
                    forges: vec![Forgery::Evict { by: NodeId(0), victim: NodeId(1) }],
                    ..ByzActions::default()
                }
            }
        }
        let budget = ByzBudget { byz_fraction: 0.5, joins_per_round: 0, block_bound: 0.0 };
        let mut h = ByzHarness::new(Rogue, budget, 0);
        h.observe(grouped_snapshot(0, &[&[0, 1]]));
        let acts = h.act(0, 2);
        assert!(acts.forges.is_empty(), "an uncorrupted identity cannot forge");
    }

    #[test]
    fn chaos_rotates_families_and_clamps_blocking() {
        use crate::adaptive::HighDegreeAttack;
        use crate::AdaptiveHarness;
        let blocker = Box::new(AdaptiveHarness::new(HighDegreeAttack, 0.5, 0));
        let campaign = ChaosCampaign { period: 1, ..ChaosCampaign::default() }
            .with_blocker(blocker as Box<dyn Attacker>);
        let budget = ByzBudget { byz_fraction: 0.9, joins_per_round: 2, block_bound: 0.2 };
        let mut h = ByzHarness::new(campaign, budget, 0);
        let mut saw_joins = false;
        let mut saw_corrupt = false;
        for r in 0..6 {
            h.observe(grouped_snapshot(r, &[&[0, 1, 2, 3, 4], &[5, 6, 7, 8, 9]]));
            let acts = h.act(r, 10);
            saw_joins |= !acts.joins.is_empty();
            saw_corrupt |= !acts.corrupt.is_empty();
            assert!(acts.blocked.len() <= 2, "block_bound 0.2 of 10 caps blocking");
        }
        assert!(saw_joins && saw_corrupt, "rotation must exercise several families");
    }

    #[test]
    fn families_are_nameable_and_replayable() {
        let names: Vec<&str> = ByzFamily::all().iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["byz:sybil", "byz:forge", "byz:eclipse", "byz:chaos"]);
        for name in names {
            assert_eq!(ByzFamily::by_name(name).expect("known").name(), name);
        }
        assert!(ByzFamily::by_name("byz:nope").is_none());
    }

    #[test]
    fn telemetry_mirrors_emitted_actions() {
        let tel = Telemetry::new(telemetry::Config::default());
        let budget = ByzBudget { byz_fraction: 0.5, joins_per_round: 2, block_bound: 0.0 };
        let mut h =
            ByzHarness::new(SybilCampaign::default(), budget, 0).with_telemetry(tel.clone());
        h.observe(grouped_snapshot(0, &[&[0, 1, 2, 3], &[4, 5, 6, 7]]));
        let acts = h.act(0, 8);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("adv.byz.joins{family=byz:sybil}"), acts.joins.len() as u64);
        assert!(acts.joins.len() as u64 > 0);
    }
}
