//! Seed-driven fault-schedule fuzzing.
//!
//! A [`FaultPlan`] is a randomly drawn — but *paper-legal* — adversary
//! configuration: a DoS strategy with blocking bound `r <= 1/2 - eps`
//! (Theorem 6) and lateness at least `2t` (with `t` the epoch length), a
//! churn strategy with rate `r >= 1` within the prescribed-set constraint
//! of Section 1.1, and a run length in epochs. Because every plan stays
//! inside the paper's limits, the overlays' guarantees must hold for *all*
//! of them: the fuzz tests draw hundreds of plans from consecutive seeds,
//! drive each overlay family under the planned adversaries, and assert the
//! round-by-round invariants (connectivity, group-size bands, availability,
//! message-delivery accounting).
//!
//! Plans are pure functions of `(seed, limits)`, so a failing seed printed
//! by a test reproduces the exact failing schedule.

use crate::churn::{ChurnSchedule, ChurnStrategy};
use crate::dos::{DosAdversary, DosStrategy};
use crate::faults::FaultSchedule;
use rand::RngExt;

/// The paper-imposed bounds a fuzzed schedule must respect.
#[derive(Clone, Copy, Debug)]
pub struct FuzzLimits {
    /// DoS margin `eps`: blocking bounds are drawn from `(0, 1/2 - eps]`.
    pub epsilon: f64,
    /// Maximum churn rate `r` (rates are drawn from `[1, max_rate]`).
    pub max_rate: f64,
    /// Lateness factors (multiples of the epoch length `t`) are drawn from
    /// `[min_lateness_factor, max_lateness_factor]`. Theorem 6 needs `>= 2`.
    pub min_lateness_factor: u64,
    /// Upper end of the lateness-factor range.
    pub max_lateness_factor: u64,
    /// Run lengths in epochs are drawn from `[min_epochs, max_epochs]`.
    pub min_epochs: u64,
    /// Upper end of the epoch range.
    pub max_epochs: u64,
    /// Beyond-model composite faults: message-loss rates are drawn from
    /// `[0, max_link_loss)`.
    pub max_link_loss: f64,
    /// Per-node per-round crash hazards are drawn from
    /// `[0, max_crash_hazard)`.
    pub max_crash_hazard: f64,
    /// Cap on the crashed fraction of the population for any single plan.
    pub max_crash_frac: f64,
}

impl Default for FuzzLimits {
    fn default() -> Self {
        Self {
            epsilon: 0.2,
            max_rate: 1.5,
            min_lateness_factor: 2,
            max_lateness_factor: 4,
            min_epochs: 2,
            max_epochs: 4,
            max_link_loss: 0.3,
            max_crash_hazard: 0.002,
            max_crash_frac: 0.1,
        }
    }
}

const DOS_STRATEGIES: [DosStrategy; 4] = [
    DosStrategy::Random,
    DosStrategy::IsolateNode,
    DosStrategy::GroupTargeted,
    DosStrategy::Bisection,
];

const CHURN_STRATEGIES: [ChurnStrategy; 4] = [
    ChurnStrategy::Random,
    ChurnStrategy::OldestFirst,
    ChurnStrategy::YoungestFirst,
    ChurnStrategy::Concentrated,
];

/// One fuzzed fault schedule: adversary configuration drawn from a seed,
/// guaranteed within [`FuzzLimits`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The seed the plan was generated from (reproduction handle).
    pub seed: u64,
    /// DoS blocking strategy.
    pub dos_strategy: DosStrategy,
    /// DoS blocking bound `r in (0, 1/2 - eps]`.
    pub dos_bound: f64,
    /// Lateness as a multiple of the overlay's epoch length.
    pub lateness_factor: u64,
    /// Churn victim/introducer strategy.
    pub churn_strategy: ChurnStrategy,
    /// Churn rate `r in [1, max_rate]`.
    pub churn_rate: f64,
    /// Per-epoch churn intensity in `(0, 1]`.
    pub churn_intensity: f64,
    /// Run length in epochs.
    pub epochs: u64,
    /// Beyond-model message-loss probability in `[0, max_link_loss)`.
    pub link_loss: f64,
    /// Beyond-model per-node per-round crash hazard in
    /// `[0, max_crash_hazard)`.
    pub crash_hazard: f64,
    /// Crash-recovery downtime in rounds (`None` = crash-stop).
    pub crash_recover_after: Option<u64>,
    /// Cap on the crashed population fraction (copied from the limits).
    pub max_crash_frac: f64,
}

impl FaultPlan {
    /// Draw a plan from `seed`. Deterministic: the same seed and limits
    /// always produce the same plan.
    pub fn generate(seed: u64, limits: &FuzzLimits) -> Self {
        assert!(limits.epsilon > 0.0 && limits.epsilon < 0.5);
        assert!(limits.max_rate >= 1.0);
        assert!(limits.min_lateness_factor >= 2, "Theorem 6 requires 2t-lateness");
        assert!(limits.min_lateness_factor <= limits.max_lateness_factor);
        assert!(limits.min_epochs >= 1 && limits.min_epochs <= limits.max_epochs);
        assert!((0.0..1.0).contains(&limits.max_link_loss));
        assert!((0.0..1.0).contains(&limits.max_crash_hazard));
        assert!((0.0..=0.5).contains(&limits.max_crash_frac));
        let mut rng = simnet::rng::stream(seed, u64::MAX - 1, 0xF022);
        let max_bound = 0.5 - limits.epsilon;
        // Field order below is draw order; the composite-fault fields come
        // last so plans extend the pre-fault generator without disturbing
        // the values older seeds produced.
        Self {
            seed,
            dos_strategy: DOS_STRATEGIES[rng.random_range(0..DOS_STRATEGIES.len())],
            // In (0, max_bound]; never exactly 0 so the adversary acts.
            dos_bound: max_bound * (1.0 - rng.random::<f64>() * 0.9),
            lateness_factor: rng
                .random_range(limits.min_lateness_factor..=limits.max_lateness_factor),
            churn_strategy: CHURN_STRATEGIES[rng.random_range(0..CHURN_STRATEGIES.len())],
            churn_rate: 1.0 + (limits.max_rate - 1.0) * rng.random::<f64>(),
            // In (0, 1]: full intensity is legal, zero is pointless.
            churn_intensity: 1.0 - rng.random::<f64>() * 0.9,
            epochs: rng.random_range(limits.min_epochs..=limits.max_epochs),
            link_loss: limits.max_link_loss * rng.random::<f64>(),
            crash_hazard: limits.max_crash_hazard * rng.random::<f64>(),
            crash_recover_after: {
                // Both values are always drawn so the draw count per plan
                // is fixed regardless of the coin.
                let recoverable = rng.random::<f64>() < 0.5;
                let down_for = rng.random_range(4..=40);
                recoverable.then_some(down_for)
            },
            max_crash_frac: limits.max_crash_frac,
        }
    }

    /// Does the plan respect the limits? (Always true for generated plans;
    /// exposed so tests can assert it independently.)
    pub fn within_limits(&self, limits: &FuzzLimits) -> bool {
        self.dos_bound > 0.0
            && self.dos_bound <= 0.5 - limits.epsilon + 1e-12
            && self.churn_rate >= 1.0
            && self.churn_rate <= limits.max_rate + 1e-12
            && self.churn_intensity > 0.0
            && self.churn_intensity <= 1.0
            && (limits.min_lateness_factor..=limits.max_lateness_factor)
                .contains(&self.lateness_factor)
            && (limits.min_epochs..=limits.max_epochs).contains(&self.epochs)
            && self.link_loss >= 0.0
            && self.link_loss <= limits.max_link_loss
            && self.crash_hazard >= 0.0
            && self.crash_hazard <= limits.max_crash_hazard
            && self.max_crash_frac <= limits.max_crash_frac + 1e-12
    }

    /// Build the planned DoS adversary for an overlay with epoch length
    /// `epoch_len` (the lateness is `lateness_factor * epoch_len`).
    pub fn dos_adversary(&self, epoch_len: u64) -> DosAdversary {
        DosAdversary::new(
            self.dos_strategy,
            self.dos_bound,
            self.lateness_factor * epoch_len,
            self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        )
    }

    /// Build the planned churn schedule; fresh ids start at
    /// `first_free_id`.
    pub fn churn_schedule(&self, first_free_id: u64) -> ChurnSchedule {
        ChurnSchedule::new(
            self.churn_strategy,
            self.churn_rate,
            self.churn_intensity,
            first_free_id,
        )
    }

    /// Build the planned composite fault schedule (message loss + crashes).
    pub fn fault_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(
            self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(2),
            self.link_loss,
            self.crash_hazard,
            self.crash_recover_after,
            self.max_crash_frac,
        )
    }

    /// One-line description for failure messages and run manifests.
    pub fn describe(&self) -> String {
        format!(
            "seed={} dos={:?} r={:.4} late={}t churn={:?} rate={:.4} intensity={:.4} epochs={} \
             loss={:.4} crash={:.6} recover={:?}",
            self.seed,
            self.dos_strategy,
            self.dos_bound,
            self.lateness_factor,
            self.churn_strategy,
            self.churn_rate,
            self.churn_intensity,
            self.epochs,
            self.link_loss,
            self.crash_hazard,
            self.crash_recover_after,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_stay_within_limits() {
        let limits = FuzzLimits::default();
        for seed in 0..500 {
            let plan = FaultPlan::generate(seed, &limits);
            assert!(plan.within_limits(&limits), "plan off-limits: {}", plan.describe());
        }
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let limits = FuzzLimits::default();
        for seed in [0, 1, 42, u64::MAX] {
            let a = FaultPlan::generate(seed, &limits);
            let b = FaultPlan::generate(seed, &limits);
            assert_eq!(a.describe(), b.describe());
        }
    }

    #[test]
    fn seeds_explore_the_strategy_space() {
        let limits = FuzzLimits::default();
        let mut dos = std::collections::HashSet::new();
        let mut churn = std::collections::HashSet::new();
        for seed in 0..100 {
            let plan = FaultPlan::generate(seed, &limits);
            dos.insert(format!("{:?}", plan.dos_strategy));
            churn.insert(format!("{:?}", plan.churn_strategy));
        }
        assert_eq!(dos.len(), 4, "all DoS strategies drawn");
        assert_eq!(churn.len(), 4, "all churn strategies drawn");
    }

    #[test]
    fn adversaries_match_the_plan() {
        let plan = FaultPlan::generate(7, &FuzzLimits::default());
        let adv = plan.dos_adversary(10);
        assert_eq!(adv.bound(), plan.dos_bound);
        assert_eq!(adv.lateness(), plan.lateness_factor * 10);
        let sched = plan.churn_schedule(1_000_000);
        assert_eq!(sched.rate(), plan.churn_rate);
    }

    #[test]
    fn composite_fault_fields_stay_within_limits() {
        let limits = FuzzLimits::default();
        let mut some_loss = false;
        let mut some_stop = false;
        let mut some_recover = false;
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &limits);
            assert!((0.0..=limits.max_link_loss).contains(&plan.link_loss));
            assert!((0.0..=limits.max_crash_hazard).contains(&plan.crash_hazard));
            some_loss |= plan.link_loss > 0.0;
            some_stop |= plan.crash_recover_after.is_none();
            some_recover |= plan.crash_recover_after.is_some();
        }
        assert!(some_loss && some_stop && some_recover, "fault space explored");
    }

    #[test]
    fn fault_schedule_matches_the_plan() {
        let plan = FaultPlan::generate(11, &FuzzLimits::default());
        let sched = plan.fault_schedule();
        assert_eq!(sched.link_loss(), plan.link_loss);
        assert_eq!(sched.crash_hazard(), plan.crash_hazard);
        assert_eq!(sched.recover_after(), plan.crash_recover_after);
    }

    #[test]
    #[should_panic(expected = "2t-lateness")]
    fn sub_2t_lateness_rejected() {
        let limits = FuzzLimits { min_lateness_factor: 1, ..FuzzLimits::default() };
        FaultPlan::generate(0, &limits);
    }
}
