//! Catastrophe campaigns: composing correlated burst faults with the
//! blocking adversaries, plus shrinkable repro traces.
//!
//! A catastrophe scenario has two independent axes: an *ambient* blocking
//! adversary (any [`Attacker`]) that keeps paper-model DoS pressure on,
//! and a [`CatastropheSpec`] of correlated bursts / timed partitions that
//! the recovery runner injects out of band. [`CatastropheCampaign`]
//! bundles the two into one object so an experiment cell or a fuzz case is
//! a single value; the blocking side delegates verbatim to the inner
//! attacker (the campaign never spends blocking budget itself — bursts are
//! crashes, not blocks, and are judged by the recovery invariants
//! instead).
//!
//! For minimal violation repros, [`CatastropheTrace`] records both axes —
//! per-round block sets and per-round injected crash sets — and
//! [`shrink_catastrophe`] reduces them with the existing delta-debugging
//! shrinker ([`shrink_trace`]), one axis at a time: first the crash trace
//! (holding blocks fixed), then the block trace (holding the shrunk
//! crashes fixed). The result replays through
//! [`simnet::BurstSchedule`]-free plumbing: crash round `i`'s set via
//! `FaultyRunner::force_crash`, block round `i`'s set via the ordinary
//! step path.

use crate::adaptive::Attacker;
use crate::lateness::TopologySnapshot;
use crate::shrink::{shrink_trace, AdversaryTrace, ShrinkReport};
use serde_json::Value;
use simnet::checkpoint::{
    field, get_str, get_u64, get_usize, get_vec, missing, read_value, save_slice,
    write_value_atomic, Checkpoint, CkptError, CkptResult,
};
use simnet::{BlockSet, Burst, BurstSchedule, TimedPartition};
use std::path::Path;

/// The catastrophe axis of a campaign as checkpointable data: the seed
/// and event list from which a [`BurstSchedule`] is derived. Keeping the
/// spec (not the schedule) serializable means a repro file pins the
/// events while the RNG stream is rebuilt from the seed at replay.
#[derive(Clone, Debug, PartialEq)]
pub struct CatastropheSpec {
    /// Seed of the schedule's draw stream.
    pub seed: u64,
    /// Mass-crash events.
    pub bursts: Vec<Burst>,
    /// Finite partitions with heal rounds.
    pub partitions: Vec<TimedPartition>,
}

impl CatastropheSpec {
    /// A spec with no events.
    pub fn new(seed: u64) -> Self {
        Self { seed, bursts: Vec::new(), partitions: Vec::new() }
    }

    /// Add a burst (builder-style).
    pub fn with_burst(mut self, b: Burst) -> Self {
        self.bursts.push(b);
        self
    }

    /// Add a timed partition (builder-style).
    pub fn with_partition(mut self, p: TimedPartition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Materialize the replayable [`BurstSchedule`] (validation happens
    /// here, via the schedule's builders).
    pub fn schedule(&self) -> BurstSchedule {
        let mut s = BurstSchedule::new(self.seed);
        for &b in &self.bursts {
            s = s.with_burst(b);
        }
        for &p in &self.partitions {
            s = s.with_partition(p);
        }
        s
    }
}

impl Checkpoint for CatastropheSpec {
    fn save(&self) -> Value {
        serde_json::json!({
            "seed": self.seed,
            "bursts": save_slice(&self.bursts),
            "partitions": save_slice(&self.partitions),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(Self {
            seed: get_u64(v, "seed")?,
            bursts: get_vec(v, "bursts")?,
            partitions: get_vec(v, "partitions")?,
        })
    }
}

/// An ambient blocking attacker bundled with a catastrophe spec. The
/// [`Attacker`] impl delegates to the inner adversary unchanged; the
/// recovery runner takes the spec's schedule separately.
pub struct CatastropheCampaign<A: Attacker> {
    /// The ambient blocking adversary.
    pub inner: A,
    /// The correlated-fault axis.
    pub spec: CatastropheSpec,
}

impl<A: Attacker> CatastropheCampaign<A> {
    /// Bundle an attacker with a catastrophe spec.
    pub fn new(inner: A, spec: CatastropheSpec) -> Self {
        Self { inner, spec }
    }
}

impl<A: Attacker> Attacker for CatastropheCampaign<A> {
    fn observe(&mut self, snap: TopologySnapshot) {
        self.inner.observe(snap);
    }

    fn block(&mut self, round: u64, n_current: usize) -> BlockSet {
        self.inner.block(round, n_current)
    }

    fn label(&self) -> String {
        format!(
            "catastrophe[{}b/{}p]+{}",
            self.spec.bursts.len(),
            self.spec.partitions.len(),
            self.inner.label()
        )
    }
}

/// A two-axis violation witness: per-round block sets and per-round
/// injected crash sets (both indexed by round, reusing the
/// [`AdversaryTrace`] representation — a "crash set" is a [`BlockSet`] of
/// node ids).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CatastropheTrace {
    /// Ambient blocking per round.
    pub blocks: AdversaryTrace,
    /// Crash injections per round (from
    /// `RecoveryRunner::crash_trace`-style captures).
    pub crashes: AdversaryTrace,
}

impl CatastropheTrace {
    /// Build from the two axes.
    pub fn new(blocks: AdversaryTrace, crashes: AdversaryTrace) -> Self {
        Self { blocks, crashes }
    }

    /// `(block rounds, node-blocks, crash rounds, node-crashes)`.
    pub fn size(&self) -> (usize, usize, usize, usize) {
        let (br, bb) = self.blocks.size();
        let (cr, cb) = self.crashes.size();
        (br, bb, cr, cb)
    }
}

impl Checkpoint for CatastropheTrace {
    fn save(&self) -> Value {
        serde_json::json!({
            "blocks": self.blocks.save(),
            "crashes": self.crashes.save(),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        Ok(Self {
            blocks: AdversaryTrace::load(field(v, "blocks")?)?,
            crashes: AdversaryTrace::load(field(v, "crashes")?)?,
        })
    }
}

/// Shrink a catastrophe witness one axis at a time: the crash trace first
/// (bursts are usually the interesting axis; blocks held fixed), then the
/// block trace (shrunk crashes held fixed). The oracle sees the full
/// candidate both times. `max_tests` caps *each* pass.
pub fn shrink_catastrophe<F>(
    trace: &CatastropheTrace,
    mut violates: F,
    max_tests: usize,
) -> (CatastropheTrace, ShrinkReport, ShrinkReport)
where
    F: FnMut(&CatastropheTrace) -> bool,
{
    let blocks_fixed = trace.blocks.clone();
    let (crashes, crash_report) = shrink_trace(
        &trace.crashes,
        |cand| violates(&CatastropheTrace::new(blocks_fixed.clone(), cand.clone())),
        max_tests,
    );
    let crashes_fixed = crashes.clone();
    let (blocks, block_report) = shrink_trace(
        &trace.blocks,
        |cand| violates(&CatastropheTrace::new(cand.clone(), crashes_fixed.clone())),
        max_tests,
    );
    (CatastropheTrace::new(blocks, crashes), crash_report, block_report)
}

/// A replayable catastrophe repro file: scenario parameters, the spec
/// that generated the events, and the (possibly shrunk) two-axis trace.
#[derive(Clone, Debug, PartialEq)]
pub struct CatastropheRepro {
    /// Overlay family (`"dos"`, `"churndos"`).
    pub family: String,
    /// Overlay construction seed.
    pub seed: u64,
    /// Initial network size.
    pub n: usize,
    /// The catastrophe axis that produced the trace.
    pub spec: CatastropheSpec,
    /// The witness.
    pub trace: CatastropheTrace,
}

impl Checkpoint for CatastropheRepro {
    fn save(&self) -> Value {
        serde_json::json!({
            "format": "catastrophe-repro",
            "family": self.family.clone(),
            "seed": self.seed,
            "n": self.n,
            "spec": self.spec.save(),
            "trace": self.trace.save(),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        match get_str(v, "format") {
            Ok("catastrophe-repro") => {}
            Ok(other) => {
                return Err(CkptError::Corrupt(format!(
                    "not a catastrophe repro (format `{other}`)"
                )))
            }
            Err(_) => return Err(missing("format")),
        }
        Ok(Self {
            family: get_str(v, "family")?.to_string(),
            seed: get_u64(v, "seed")?,
            n: get_usize(v, "n")?,
            spec: CatastropheSpec::load(field(v, "spec")?)?,
            trace: CatastropheTrace::load(field(v, "trace")?)?,
        })
    }
}

impl CatastropheRepro {
    /// Write as a JSON repro file (atomic: tmp + rename).
    pub fn write(&self, path: &Path) -> CkptResult<()> {
        write_value_atomic(path, &self.save())
    }

    /// Load a repro file written by [`write`](Self::write).
    pub fn read(path: &Path) -> CkptResult<Self> {
        Self::load(&read_value(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::{DosAdversary, DosStrategy};
    use simnet::{BurstTarget, NodeId};

    fn bs(ids: &[u64]) -> BlockSet {
        BlockSet::from_iter(ids.iter().map(|&i| NodeId(i)))
    }

    fn spec() -> CatastropheSpec {
        CatastropheSpec::new(77)
            .with_burst(Burst { at: 5, frac: 0.2, target: BurstTarget::Groups, storm_window: 8 })
            .with_partition(TimedPartition { at: 20, heal_at: 30, side_frac: 0.25 })
    }

    #[test]
    fn campaign_delegates_blocking_verbatim() {
        let mk = || DosAdversary::new(DosStrategy::Random, 0.2, 4, 9);
        let mut bare = mk();
        let mut campaign = CatastropheCampaign::new(mk(), spec());
        for round in 0..12 {
            let snap = TopologySnapshot {
                round,
                nodes: (0..64).map(NodeId).collect(),
                edges: vec![],
                groups: vec![],
                group_edges: vec![],
            };
            bare.observe(snap.clone());
            campaign.observe(snap);
            assert_eq!(bare.block(round, 64), campaign.block(round, 64));
        }
        assert!(campaign.label().contains("catastrophe[1b/1p]"));
    }

    #[test]
    fn spec_roundtrips_and_rebuilds_identical_schedules() {
        let s = spec();
        let restored = CatastropheSpec::load(&s.save()).expect("roundtrip");
        assert_eq!(s, restored);
        // The derived schedules draw identically.
        let members: Vec<NodeId> = (0..40).map(NodeId).collect();
        let mut a = s.schedule();
        let mut b = restored.schedule();
        assert_eq!(a.draw_burst(0, &members, &[], &[]), b.draw_burst(0, &members, &[], &[]));
        assert_eq!(a.draw_partition_side(0, &members), b.draw_partition_side(0, &members));
    }

    #[test]
    fn shrink_reduces_both_axes() {
        // Synthetic oracle: violates iff node 3 crashes in some round AND
        // node 9 is blocked in some round. Everything else is noise the
        // shrinker must strip.
        let blocks = AdversaryTrace::new(vec![bs(&[1, 2]), bs(&[9, 4]), bs(&[5])]);
        let crashes = AdversaryTrace::new(vec![bs(&[7]), bs(&[3, 8]), bs(&[6])]);
        let trace = CatastropheTrace::new(blocks, crashes);
        let oracle = |t: &CatastropheTrace| {
            t.crashes.rounds.iter().any(|r| r.contains(NodeId(3)))
                && t.blocks.rounds.iter().any(|r| r.contains(NodeId(9)))
        };
        assert!(oracle(&trace), "fixture must violate");
        let (shrunk, crash_rep, block_rep) = shrink_catastrophe(&trace, oracle, 200);
        assert!(oracle(&shrunk), "shrinking preserves the violation");
        assert_eq!(shrunk.crashes.total_blocked(), 1, "{:?}", shrunk.crashes);
        assert_eq!(shrunk.blocks.total_blocked(), 1, "{:?}", shrunk.blocks);
        assert!(crash_rep.tests_run > 0 && block_rep.tests_run > 0);
    }

    #[test]
    fn repro_file_roundtrip() {
        let repro = CatastropheRepro {
            family: "dos".into(),
            seed: 42,
            n: 256,
            spec: spec(),
            trace: CatastropheTrace::new(
                AdversaryTrace::new(vec![bs(&[1])]),
                AdversaryTrace::new(vec![bs(&[2, 3])]),
            ),
        };
        let dir = std::env::temp_dir().join("catastrophe-repro-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repro.json");
        repro.write(&path).unwrap();
        assert_eq!(CatastropheRepro::read(&path).unwrap(), repro);
        // Wrong format tag is rejected.
        let wrong = serde_json::json!({
            "format": "adversary-repro",
            "family": "dos",
            "seed": 42u64,
            "n": 256u64,
            "spec": repro.spec.save(),
            "trace": repro.trace.save(),
        });
        assert!(CatastropheRepro::load(&wrong).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
