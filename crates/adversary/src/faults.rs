//! Composite overlay-level fault schedules.
//!
//! A [`FaultSchedule`] is the group-level twin of the message-level
//! `simnet::fault::FaultModel`: where the simnet model judges individual
//! envelopes on the delivery path, this schedule drives the *overlay-level*
//! simulations (which model a group's protocol exchange as one step) by
//! drawing two kinds of beyond-model events:
//!
//! * **message loss** — a reconfiguration/sampling broadcast to one member
//!   fails with probability `link_loss` (each re-request retries the same
//!   draw), and
//! * **node crashes** — each live node crashes with per-round hazard
//!   `crash_hazard`, either crash-stop (`recover_after == None`) or
//!   crash-recovery with state loss after `recover_after` rounds, with the
//!   total crashed population capped at a `max_crash_frac` fraction.
//!
//! All draws come from one ChaCha stream keyed by the schedule seed and are
//! made in the caller's (sorted, deterministic) iteration order, so a run
//! under a fault schedule replays bit-for-bit from its seed.

use rand::RngExt;
use simnet::rng::NodeRng;
use simnet::NodeId;
use std::fmt;

/// Why a [`FaultSchedule`] configuration was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultConfigError {
    /// `link_loss` outside `[0, 1)` (1.0 would lose every message —
    /// specify fewer rounds instead) or not a finite number.
    LinkLoss(f64),
    /// `crash_hazard` outside `[0, 1)` or not a finite number.
    CrashHazard(f64),
    /// `max_crash_frac` outside `[0, 1]` or not a finite number.
    MaxCrashFrac(f64),
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::LinkLoss(x) => {
                write!(f, "link_loss must be a probability in [0, 1), got {x}")
            }
            FaultConfigError::CrashHazard(x) => {
                write!(f, "crash_hazard must be a probability in [0, 1), got {x}")
            }
            FaultConfigError::MaxCrashFrac(x) => {
                write!(f, "max_crash_frac must be a fraction in [0, 1], got {x}")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// A seed-derived composite fault schedule (message loss + crashes).
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    seed: u64,
    link_loss: f64,
    crash_hazard: f64,
    recover_after: Option<u64>,
    max_crash_frac: f64,
    rng: NodeRng,
    crashed: usize,
}

impl FaultSchedule {
    /// Build a schedule, validating every rate. `link_loss` and
    /// `crash_hazard` are probabilities in `[0, 1)`; `recover_after` is
    /// the crash-recovery downtime in rounds (`None` = crash-stop);
    /// `max_crash_frac` caps the total crashed fraction of the population.
    pub fn try_new(
        seed: u64,
        link_loss: f64,
        crash_hazard: f64,
        recover_after: Option<u64>,
        max_crash_frac: f64,
    ) -> Result<Self, FaultConfigError> {
        if !link_loss.is_finite() || !(0.0..1.0).contains(&link_loss) {
            return Err(FaultConfigError::LinkLoss(link_loss));
        }
        if !crash_hazard.is_finite() || !(0.0..1.0).contains(&crash_hazard) {
            return Err(FaultConfigError::CrashHazard(crash_hazard));
        }
        if !max_crash_frac.is_finite() || !(0.0..=1.0).contains(&max_crash_frac) {
            return Err(FaultConfigError::MaxCrashFrac(max_crash_frac));
        }
        Ok(Self {
            seed,
            link_loss,
            crash_hazard,
            recover_after,
            max_crash_frac,
            rng: simnet::rng::stream(seed, u64::MAX - 3, 0xFA_5EED),
            crashed: 0,
        })
    }

    /// [`try_new`](Self::try_new) for statically known-good rates;
    /// panics with the validation message otherwise.
    pub fn new(
        seed: u64,
        link_loss: f64,
        crash_hazard: f64,
        recover_after: Option<u64>,
        max_crash_frac: f64,
    ) -> Self {
        match Self::try_new(seed, link_loss, crash_hazard, recover_after, max_crash_frac) {
            Ok(s) => s,
            Err(e) => panic!("invalid fault schedule: {e}"),
        }
    }

    /// The seed (reproduction handle).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-message loss probability.
    pub fn link_loss(&self) -> f64 {
        self.link_loss
    }

    /// The per-node per-round crash hazard.
    pub fn crash_hazard(&self) -> f64 {
        self.crash_hazard
    }

    /// Crash-recovery downtime in rounds (`None` = crash-stop).
    pub fn recover_after(&self) -> Option<u64> {
        self.recover_after
    }

    /// Nodes crashed so far (across the schedule's lifetime).
    pub fn crashed_so_far(&self) -> usize {
        self.crashed
    }

    /// Draw one message-loss event. Draws nothing when the loss rate is
    /// zero, so a lossless schedule never perturbs the stream.
    pub fn lose_message(&mut self) -> bool {
        self.link_loss > 0.0 && self.rng.random::<f64>() < self.link_loss
    }

    /// Draw this round's fresh crashes among `up` (the live, not-yet-down
    /// nodes, in sorted order), with the budget measured against
    /// `population` (the full current membership). Draws one uniform per
    /// candidate; when the hazard is zero it draws nothing.
    pub fn draw_crashes(&mut self, up: &[NodeId], population: usize) -> Vec<NodeId> {
        if self.crash_hazard <= 0.0 {
            return Vec::new();
        }
        let budget = (self.max_crash_frac * population as f64).floor() as usize;
        let mut out = Vec::new();
        for &v in up {
            let hit = self.rng.random::<f64>() < self.crash_hazard;
            if hit && self.crashed < budget {
                self.crashed += 1;
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn schedules_replay_from_the_seed() {
        let run = || {
            let mut s = FaultSchedule::new(7, 0.3, 0.01, Some(8), 0.2);
            let losses: Vec<bool> = (0..64).map(|_| s.lose_message()).collect();
            let crashes = s.draw_crashes(&ids(100), 100);
            (losses, crashes)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let losses = |seed| {
            let mut s = FaultSchedule::new(seed, 0.5, 0.0, None, 0.1);
            (0..64).map(|_| s.lose_message()).collect::<Vec<bool>>()
        };
        assert_ne!(losses(1), losses(2));
    }

    #[test]
    fn zero_rates_draw_nothing() {
        let mut s = FaultSchedule::new(3, 0.0, 0.0, None, 0.1);
        for _ in 0..32 {
            assert!(!s.lose_message());
        }
        assert!(s.draw_crashes(&ids(50), 50).is_empty());
        // The stream is untouched: a fresh schedule with the same seed but
        // nonzero rates sees the pristine stream.
        let mut a = FaultSchedule::new(3, 0.9, 0.0, None, 0.1);
        let mut b = FaultSchedule::new(3, 0.9, 0.0, None, 0.1);
        for _ in 0..8 {
            b.lose_message();
        }
        let _ = (a.lose_message(), s.lose_message());
    }

    #[test]
    fn crash_budget_is_a_hard_cap() {
        // Hazard 1: every candidate crashes until the budget is spent.
        let mut s = FaultSchedule::new(4, 0.0, 0.99, None, 0.1);
        let crashed = s.draw_crashes(&ids(100), 100);
        assert!(crashed.len() <= 10, "budget floor(0.1 * 100) = 10, got {}", crashed.len());
        // Further rounds add nothing.
        let more = s.draw_crashes(&ids(100), 100);
        assert!(crashed.len() + more.len() <= 10);
        assert_eq!(s.crashed_so_far(), crashed.len() + more.len());
    }

    #[test]
    fn bad_rates_are_rejected_with_named_errors() {
        let loss = FaultSchedule::try_new(0, 1.0, 0.0, None, 0.1).unwrap_err();
        assert_eq!(loss, FaultConfigError::LinkLoss(1.0));
        assert!(loss.to_string().contains("link_loss"));
        let hazard = FaultSchedule::try_new(0, 0.0, f64::NAN, None, 0.1).unwrap_err();
        assert!(matches!(hazard, FaultConfigError::CrashHazard(_)));
        let frac = FaultSchedule::try_new(0, 0.0, 0.0, None, -0.5).unwrap_err();
        assert_eq!(frac, FaultConfigError::MaxCrashFrac(-0.5));
        assert!(FaultSchedule::try_new(0, 0.0, 0.0, None, 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "link_loss must be a probability")]
    fn new_panics_with_the_validation_message() {
        FaultSchedule::new(0, 2.0, 0.0, None, 0.1);
    }

    #[test]
    fn loss_rate_is_roughly_respected() {
        let mut s = FaultSchedule::new(5, 0.3, 0.0, None, 0.1);
        let lost = (0..2000).filter(|_| s.lose_message()).count();
        assert!((400..=800).contains(&lost), "0.3 loss gave {lost}/2000");
    }
}
