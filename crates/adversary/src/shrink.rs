//! Counterexample shrinking for adversarial traces.
//!
//! When a fuzzed or adaptive run violates an invariant, the raw witness is
//! a long per-round block-set trace — far too big to reason about. The
//! shrinker reduces it to a minimal reproducing prefix with three
//! delta-debugging passes, each guarded by an oracle callback that re-runs
//! the scenario and reports whether the violation still fires:
//!
//! 1. **prefix truncation** — binary-search the shortest violating prefix;
//! 2. **round sparsification** — try emptying whole rounds, last to first;
//! 3. **node minimization** — per surviving round, drop halves then single
//!    nodes (classic ddmin granularity refinement).
//!
//! Every pass preserves the invariant "the current candidate violates", so
//! the result is always a valid, strictly-no-larger reproduction. The
//! oracle budget caps total re-runs; an exhausted budget returns the best
//! candidate found so far.
//!
//! [`ReplayAdversary`] plays a trace back verbatim through the
//! [`Attacker`] interface, and [`Repro`] bundles a trace with the scenario
//! parameters as a replayable JSON file.

use crate::adaptive::Attacker;
use crate::lateness::TopologySnapshot;
use serde_json::Value;
use simnet::checkpoint::{
    f64_bits, get_f64_bits, get_str, get_u64, get_usize, missing, read_value, write_value_atomic,
    Checkpoint, CkptError, CkptResult,
};
use simnet::BlockSet;
use std::path::Path;

/// A per-round block-set trace: `rounds[i]` is the set blocked in overlay
/// round `i`. Rounds past the end block nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdversaryTrace {
    /// Block set per round, indexed by round number.
    pub rounds: Vec<BlockSet>,
}

impl AdversaryTrace {
    /// Trace from explicit per-round sets.
    pub fn new(rounds: Vec<BlockSet>) -> Self {
        Self { rounds }
    }

    /// Trace from `(round, blocked)` emissions (as recorded by
    /// [`crate::adaptive::AdaptiveHarness::trace`]); gaps block nothing.
    pub fn from_emissions(emissions: &[(u64, BlockSet)]) -> Self {
        let len = emissions.iter().map(|&(r, _)| r as usize + 1).max().unwrap_or(0);
        let mut rounds = vec![BlockSet::none(); len];
        for (r, b) in emissions {
            rounds[*r as usize] = b.clone();
        }
        Self { rounds }
    }

    /// Number of rounds covered.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no rounds are covered.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total node-blocks across all rounds.
    pub fn total_blocked(&self) -> usize {
        self.rounds.iter().map(BlockSet::len).sum()
    }

    /// `(rounds, total node-blocks)` — the shrinker's size measure.
    pub fn size(&self) -> (usize, usize) {
        (self.len(), self.total_blocked())
    }

    /// Strictly smaller: no larger in both coordinates, smaller in one.
    pub fn strictly_smaller_than(&self, other: &Self) -> bool {
        let (r, b) = self.size();
        let (or, ob) = other.size();
        r <= or && b <= ob && (r < or || b < ob)
    }

    fn prefix(&self, len: usize) -> Self {
        Self { rounds: self.rounds[..len.min(self.rounds.len())].to_vec() }
    }
}

impl Checkpoint for AdversaryTrace {
    fn save(&self) -> Value {
        Value::Array(self.rounds.iter().map(Checkpoint::save).collect())
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let rounds = v
            .as_array()
            .ok_or_else(|| missing("trace rounds"))?
            .iter()
            .map(BlockSet::load)
            .collect::<CkptResult<Vec<BlockSet>>>()?;
        Ok(Self { rounds })
    }
}

/// Plays an [`AdversaryTrace`] back verbatim: round `i` emits
/// `trace.rounds[i]` regardless of topology. Budget legality is the
/// recorded trace's property, not re-derived.
#[derive(Clone, Debug)]
pub struct ReplayAdversary {
    trace: AdversaryTrace,
}

impl ReplayAdversary {
    /// Replay the given trace.
    pub fn new(trace: AdversaryTrace) -> Self {
        Self { trace }
    }
}

impl Attacker for ReplayAdversary {
    fn observe(&mut self, _snap: TopologySnapshot) {}

    fn block(&mut self, round: u64, _n_current: usize) -> BlockSet {
        self.trace.rounds.get(round as usize).cloned().unwrap_or_else(BlockSet::none)
    }

    fn label(&self) -> String {
        format!("replay[{} rounds]", self.trace.len())
    }
}

/// What the shrinker did.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkReport {
    /// Oracle invocations spent.
    pub tests_run: usize,
    /// `(rounds, node-blocks)` of the input trace.
    pub original: (usize, usize),
    /// `(rounds, node-blocks)` of the result.
    pub shrunk: (usize, usize),
}

/// Shrink a violating trace to a smaller trace that still violates.
///
/// `violates(candidate)` must re-run the scenario under the candidate
/// trace and report whether the invariant still breaks; it is called at
/// most `max_tests` times. If the input itself does not violate, it is
/// returned unchanged (`tests_run == 1`).
pub fn shrink_trace<F>(
    trace: &AdversaryTrace,
    mut violates: F,
    max_tests: usize,
) -> (AdversaryTrace, ShrinkReport)
where
    F: FnMut(&AdversaryTrace) -> bool,
{
    let mut report = ShrinkReport { original: trace.size(), ..Default::default() };
    let budget = max_tests.max(1);
    let mut test = |t: &AdversaryTrace, report: &mut ShrinkReport| -> Option<bool> {
        if report.tests_run >= budget {
            return None;
        }
        report.tests_run += 1;
        Some(violates(t))
    };

    if test(trace, &mut report) != Some(true) {
        report.shrunk = trace.size();
        return (trace.clone(), report);
    }
    let mut best = trace.clone();

    // Pass 1: shortest violating prefix, by bisection. `hi` always
    // violates; `lo` is the largest known-non-violating length.
    let mut lo = 0usize;
    let mut hi = best.len();
    if hi > 0 && test(&best.prefix(0), &mut report) == Some(true) {
        hi = 0;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        match test(&best.prefix(mid), &mut report) {
            Some(true) => hi = mid,
            Some(false) => lo = mid,
            None => break,
        }
    }
    best = best.prefix(hi);

    // Pass 2: empty whole rounds, last to first. Later rounds are closer
    // to the violation and thus more likely load-bearing — clearing from
    // the back first removes the cheap wins early.
    for i in (0..best.len()).rev() {
        if best.rounds[i].is_empty() {
            continue;
        }
        let mut candidate = best.clone();
        candidate.rounds[i] = BlockSet::none();
        match test(&candidate, &mut report) {
            Some(true) => best = candidate,
            Some(false) => {}
            None => break,
        }
    }

    // Pass 3: per-round node minimization — halves first, then singles.
    'rounds: for i in 0..best.len() {
        // Halving.
        loop {
            let nodes: Vec<_> = best.rounds[i].iter().collect();
            if nodes.len() < 2 {
                break;
            }
            let mut halved = false;
            for keep in [&nodes[..nodes.len() / 2], &nodes[nodes.len() / 2..]] {
                let mut candidate = best.clone();
                candidate.rounds[i] = BlockSet::from_iter(keep.iter().copied());
                match test(&candidate, &mut report) {
                    Some(true) => {
                        best = candidate;
                        halved = true;
                        break;
                    }
                    Some(false) => {}
                    None => break 'rounds,
                }
            }
            if !halved {
                break;
            }
        }
        // Single-node removal.
        for v in best.rounds[i].iter().collect::<Vec<_>>() {
            let mut candidate = best.clone();
            candidate.rounds[i] = BlockSet::from_iter(best.rounds[i].iter().filter(|&w| w != v));
            match test(&candidate, &mut report) {
                Some(true) => best = candidate,
                Some(false) => {}
                None => break 'rounds,
            }
        }
    }

    report.shrunk = best.size();
    (best, report)
}

/// A replayable counterexample: the scenario parameters plus the
/// (shrunk) trace that violates an invariant under them.
#[derive(Clone, Debug)]
pub struct Repro {
    /// Overlay family (`"dos"`, `"churndos"`, ...).
    pub family: String,
    /// Adversary label the trace was recorded from.
    pub strategy: String,
    /// Overlay construction seed.
    pub seed: u64,
    /// Initial network size.
    pub n: usize,
    /// Blocking budget fraction the trace was recorded under.
    pub bound: f64,
    /// Lateness the adversary operated at.
    pub lateness: u64,
    /// The violating block-set trace.
    pub trace: AdversaryTrace,
}

impl Checkpoint for Repro {
    fn save(&self) -> Value {
        serde_json::json!({
            "format": "adversary-repro",
            "family": self.family.clone(),
            "strategy": self.strategy.clone(),
            "seed": self.seed,
            "n": self.n as u64,
            "bound": f64_bits(self.bound),
            "lateness": self.lateness,
            "trace": self.trace.save(),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        if get_str(v, "format")? != "adversary-repro" {
            return Err(CkptError::Corrupt("not an adversary repro file".into()));
        }
        Ok(Self {
            family: get_str(v, "family")?.to_string(),
            strategy: get_str(v, "strategy")?.to_string(),
            seed: get_u64(v, "seed")?,
            n: get_usize(v, "n")?,
            bound: get_f64_bits(v, "bound")?,
            lateness: get_u64(v, "lateness")?,
            trace: AdversaryTrace::load(v.get("trace").ok_or_else(|| missing("trace"))?)?,
        })
    }
}

impl Repro {
    /// Write as a JSON repro file (atomic: tmp + rename).
    pub fn write(&self, path: &Path) -> CkptResult<()> {
        write_value_atomic(path, &self.save())
    }

    /// Load a repro file written by [`write`](Self::write).
    pub fn read(path: &Path) -> CkptResult<Self> {
        Self::load(&read_value(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    fn set(ids: &[u64]) -> BlockSet {
        BlockSet::from_iter(ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn trace_round_trips_through_checkpoint() {
        let t = AdversaryTrace::new(vec![set(&[1, 2]), BlockSet::none(), set(&[7])]);
        let back = AdversaryTrace::load(&t.save()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_emissions_scatters_by_round() {
        let t = AdversaryTrace::from_emissions(&[(0, set(&[1])), (3, set(&[9]))]);
        assert_eq!(t.len(), 4);
        assert!(t.rounds[1].is_empty() && t.rounds[2].is_empty());
        assert_eq!(t.total_blocked(), 2);
    }

    #[test]
    fn shrinker_finds_the_minimal_core() {
        // Violation fires iff node 42 is blocked in some round >= 5.
        let mut rounds = vec![set(&[1, 2, 3]); 12];
        rounds[7] = set(&[10, 42, 99]);
        let t = AdversaryTrace::new(rounds);
        let oracle = |c: &AdversaryTrace| {
            c.rounds.iter().enumerate().any(|(i, b)| i >= 5 && b.contains(NodeId(42)))
        };
        let (shrunk, report) = shrink_trace(&t, oracle, 10_000);
        assert!(oracle(&shrunk), "the shrunk trace must still violate");
        assert!(shrunk.strictly_smaller_than(&t));
        assert_eq!(shrunk.len(), 8, "prefix should stop right after the trigger round");
        assert_eq!(shrunk.total_blocked(), 1, "only the trigger node survives");
        assert!(shrunk.rounds[7].contains(NodeId(42)));
        assert_eq!(report.shrunk, shrunk.size());
        assert!(report.tests_run <= 10_000);
    }

    #[test]
    fn non_violating_trace_is_returned_unchanged() {
        let t = AdversaryTrace::new(vec![set(&[1]); 4]);
        let (out, report) = shrink_trace(&t, |_| false, 100);
        assert_eq!(out, t);
        assert_eq!(report.tests_run, 1);
    }

    #[test]
    fn budget_exhaustion_still_returns_a_violating_trace() {
        let t = AdversaryTrace::new(vec![set(&[1, 2, 3, 4, 5]); 50]);
        let oracle = |c: &AdversaryTrace| c.total_blocked() >= 10;
        let (shrunk, report) = shrink_trace(&t, oracle, 5);
        assert!(oracle(&shrunk));
        assert_eq!(report.tests_run, 5);
    }

    #[test]
    fn replay_adversary_echoes_the_trace() {
        let t = AdversaryTrace::new(vec![set(&[3]), set(&[4, 5])]);
        let mut replay = ReplayAdversary::new(t);
        replay.observe(TopologySnapshot::nodes_only(0, vec![NodeId(0)]));
        assert_eq!(replay.block(0, 10), set(&[3]));
        assert_eq!(replay.block(1, 10), set(&[4, 5]));
        assert!(replay.block(2, 10).is_empty(), "past the trace end nothing is blocked");
    }

    #[test]
    fn repro_file_round_trips() {
        let repro = Repro {
            family: "dos".into(),
            strategy: "adaptive:min-cut".into(),
            seed: 11,
            n: 256,
            bound: 0.25,
            lateness: 16,
            trace: AdversaryTrace::new(vec![set(&[1, 2])]),
        };
        let dir = std::env::temp_dir().join("overlay-repro-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repro.json");
        repro.write(&path).unwrap();
        let back = Repro::read(&path).unwrap();
        assert_eq!(back.family, "dos");
        assert_eq!(back.bound, 0.25);
        assert_eq!(back.trace, repro.trace);
        std::fs::remove_dir_all(&dir).ok();
    }
}
