//! Prefix-free supernode label space (Section 6).
//!
//! The combined churn+DoS network labels each supernode with a bit string
//! `(b_1, ..., b_l)`; the set of labels always forms an **exact prefix-free
//! cover** of the infinite binary tree (equivalently, the leaves of a
//! complete binary trie). A supernode *splits* by extending its label with
//! a 0 and creating a sibling ending in 1; it *merges* by absorbing its
//! sibling and dropping the last bit. The length of the label is the
//! supernode's *dimension* `d(x)`.
//!
//! Two supernodes `x`, `y` with `d(x) <= d(y)` are **connected** iff the
//! first `d(x)` bits of their labels differ in exactly one coordinate, and
//! the modified sampling primitive picks each supernode with probability
//! `2^-d(x)` — both implemented here.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A supernode label: the first `len` bits (MSB-first within `bits`) of a
/// binary string. `len == 0` is the root label (the whole space).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label {
    bits: u64,
    len: u8,
}

impl Label {
    /// The root label (empty string).
    pub const ROOT: Label = Label { bits: 0, len: 0 };

    /// Maximum supported label length.
    pub const MAX_LEN: u8 = 63;

    /// Build a label from the low `len` bits of `bits` (interpreted
    /// MSB-first: the highest of those bits is `b_1`).
    pub fn new(bits: u64, len: u8) -> Self {
        assert!(len <= Self::MAX_LEN, "label length {len} exceeds maximum");
        let mask = if len == 0 { 0 } else { u64::MAX >> (64 - len as u32) };
        Self { bits: bits & mask, len }
    }

    /// The label's length, i.e. the supernode dimension `d(x)`.
    pub fn dim(&self) -> u8 {
        self.len
    }

    /// Bit `i` (1-based, following the paper's `b_1, ..., b_l`).
    pub fn bit(&self, i: u8) -> u8 {
        assert!((1..=self.len).contains(&i), "bit index {i} out of 1..={}", self.len);
        ((self.bits >> (self.len - i)) & 1) as u8
    }

    /// The first `k` bits as an integer (MSB-first). `k <= len`.
    pub fn prefix_bits(&self, k: u8) -> u64 {
        assert!(k <= self.len);
        if k == 0 {
            0
        } else {
            self.bits >> (self.len - k)
        }
    }

    /// Append a bit: the child `(b_1, ..., b_l, b)`.
    pub fn child(&self, b: u8) -> Label {
        assert!(b <= 1);
        assert!(self.len < Self::MAX_LEN, "cannot extend a maximum-length label");
        Label { bits: (self.bits << 1) | b as u64, len: self.len + 1 }
    }

    /// The sibling `(b_1, ..., 1 - b_l)`. Panics on the root.
    pub fn sibling(&self) -> Label {
        assert!(self.len > 0, "the root label has no sibling");
        Label { bits: self.bits ^ 1, len: self.len }
    }

    /// The parent `(b_1, ..., b_{l-1})`. Panics on the root.
    pub fn parent(&self) -> Label {
        assert!(self.len > 0, "the root label has no parent");
        Label { bits: self.bits >> 1, len: self.len - 1 }
    }

    /// Is `self` a (non-strict) prefix of `other`?
    pub fn is_prefix_of(&self, other: &Label) -> bool {
        other.len >= self.len && other.prefix_bits(self.len) == self.bits
    }

    /// Does the MSB-first bit stream `point` start with this label?
    /// (`point`'s bit 63 is `b_1`.)
    pub fn matches_point(&self, point: u64) -> bool {
        self.len == 0 || (point >> (64 - self.len as u32)) == self.bits
    }

    /// Section 6 connectivity rule: with `d(x) <= d(y)`, `x` and `y` are
    /// connected iff the first `d(x)` bits of their labels differ in
    /// exactly one coordinate.
    pub fn connected(&self, other: &Label) -> bool {
        let k = self.len.min(other.len);
        let diff = self.prefix_bits(k) ^ other.prefix_bits(k);
        diff.count_ones() == 1
    }
}

impl std::fmt::Debug for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in 1..=self.len {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

/// An exact prefix-free cover of the binary label space — the supernode set
/// of the Section 6 network, with split and merge operations.
#[derive(Clone, Debug, Default)]
pub struct PrefixCover {
    labels: BTreeSet<Label>,
}

impl PrefixCover {
    /// The cover consisting of all `2^d` labels of length `d`.
    pub fn uniform(d: u8) -> Self {
        assert!(d <= 20, "uniform cover of dimension {d} would be huge");
        let labels = (0..(1u64 << d)).map(|b| Label::new(b, d)).collect();
        Self { labels }
    }

    /// Rebuild a cover from an explicit label set (e.g. a checkpoint).
    /// The caller is responsible for the set being an exact prefix-free
    /// cover; [`Self::is_exact_cover`] verifies it.
    pub fn from_labels<I: IntoIterator<Item = Label>>(labels: I) -> Self {
        Self { labels: labels.into_iter().collect() }
    }

    /// Number of supernode labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the cover is empty (only before initialization).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Whether `l` is currently a supernode label.
    pub fn contains(&self, l: &Label) -> bool {
        self.labels.contains(l)
    }

    /// Iterate over the labels in sorted order. The cover is a `BTreeSet`
    /// so iteration order is stable across processes — randomized
    /// `HashSet` order here would leak into RNG consumption order during
    /// split/merge and break deterministic replay.
    pub fn iter(&self) -> impl Iterator<Item = &Label> {
        self.labels.iter()
    }

    /// Smallest and largest dimension present, or `None` when empty.
    pub fn dim_range(&self) -> Option<(u8, u8)> {
        let min = self.labels.iter().map(Label::dim).min()?;
        let max = self.labels.iter().map(Label::dim).max()?;
        Some((min, max))
    }

    /// Split `l` into its two children. Returns the children.
    /// Panics if `l` is not in the cover.
    pub fn split(&mut self, l: Label) -> (Label, Label) {
        assert!(self.labels.remove(&l), "cannot split {l:?}: not in cover");
        let (c0, c1) = (l.child(0), l.child(1));
        self.labels.insert(c0);
        self.labels.insert(c1);
        (c0, c1)
    }

    /// Merge `l` with its sibling into the parent. Both must be present.
    /// Returns the parent.
    pub fn merge(&mut self, l: Label) -> Label {
        let sib = l.sibling();
        assert!(self.labels.contains(&l), "cannot merge {l:?}: not in cover");
        assert!(
            self.labels.contains(&sib),
            "cannot merge {l:?}: sibling {sib:?} not in cover (deeper splits exist)"
        );
        self.labels.remove(&l);
        self.labels.remove(&sib);
        let p = l.parent();
        self.labels.insert(p);
        p
    }

    /// The unique label that is a prefix of the MSB-first bit stream
    /// `point`. Panics if the cover is not exact (no match).
    pub fn locate(&self, point: u64) -> Label {
        for len in 0..=Label::MAX_LEN {
            let cand =
                if len == 0 { Label::ROOT } else { Label::new(point >> (64 - len as u32), len) };
            if self.labels.contains(&cand) {
                return cand;
            }
        }
        panic!("cover does not contain a prefix of the point — not exact");
    }

    /// Sample a supernode with probability exactly `2^-d(x)` — the
    /// modified sampling distribution of Section 6.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Label {
        self.locate(rng.random::<u64>())
    }

    /// Verify the exact-cover invariant: labels are pairwise prefix-free
    /// and their measures `2^-len` sum to 1.
    pub fn is_exact_cover(&self) -> bool {
        if self.labels.is_empty() {
            return false;
        }
        // Kraft sum in fixed point (2^-len scaled by 2^63).
        let mut sum: u128 = 0;
        for l in &self.labels {
            sum += 1u128 << (63 - l.dim() as u32);
        }
        if sum != 1u128 << 63 {
            return false;
        }
        // Prefix-freeness: sort by padded bits; only adjacent pairs can
        // be in prefix relation.
        let mut sorted: Vec<&Label> = self.labels.iter().collect();
        sorted.sort_by_key(|l| (l.prefix_bits(l.dim()) << (63 - l.dim() as u32), l.dim()));
        for w in sorted.windows(2) {
            if w[0].is_prefix_of(w[1]) || w[1].is_prefix_of(w[0]) {
                return false;
            }
        }
        true
    }

    /// All labels connected to `x` under the Section 6 rule.
    pub fn neighbors_of(&self, x: &Label) -> Vec<Label> {
        self.labels.iter().filter(|y| *y != x && x.connected(y)).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn label_bit_access_is_msb_first() {
        let l = Label::new(0b101, 3); // b1=1 b2=0 b3=1
        assert_eq!(l.bit(1), 1);
        assert_eq!(l.bit(2), 0);
        assert_eq!(l.bit(3), 1);
        assert_eq!(format!("{l:?}"), "101");
    }

    #[test]
    fn child_parent_sibling() {
        let l = Label::new(0b10, 2);
        assert_eq!(l.child(1), Label::new(0b101, 3));
        assert_eq!(l.child(1).parent(), l);
        assert_eq!(l.sibling(), Label::new(0b11, 2));
        assert!(l.is_prefix_of(&l.child(0)));
        assert!(!l.child(0).is_prefix_of(&l));
    }

    #[test]
    fn connectivity_rule_uses_shorter_prefix() {
        // x = 10, y = 0011: first 2 bits of y are 00; 10 xor 00 = 10 -> one
        // differing coordinate -> connected.
        let x = Label::new(0b10, 2);
        let y = Label::new(0b0011, 4);
        assert!(x.connected(&y));
        // z = 0111: first 2 bits 01; 10 xor 01 = 11 -> two coords differ.
        let z = Label::new(0b0111, 4);
        assert!(!x.connected(&z));
    }

    #[test]
    fn uniform_cover_is_exact() {
        let c = PrefixCover::uniform(4);
        assert_eq!(c.len(), 16);
        assert!(c.is_exact_cover());
        assert_eq!(c.dim_range(), Some((4, 4)));
    }

    #[test]
    fn split_and_merge_preserve_exactness() {
        let mut c = PrefixCover::uniform(3);
        let l = Label::new(0b101, 3);
        let (c0, c1) = c.split(l);
        assert!(c.is_exact_cover());
        assert_eq!(c.len(), 9);
        assert!(c.contains(&c0) && c.contains(&c1));
        let p = c.merge(c0);
        assert_eq!(p, l);
        assert!(c.is_exact_cover());
        assert_eq!(c.len(), 8);
    }

    #[test]
    #[should_panic(expected = "sibling")]
    fn merge_requires_sibling_at_same_depth() {
        let mut c = PrefixCover::uniform(2);
        let l = Label::new(0b01, 2);
        c.split(l.sibling()); // sibling now deeper
        c.merge(l);
    }

    #[test]
    fn locate_finds_the_unique_prefix() {
        let mut c = PrefixCover::uniform(2);
        c.split(Label::new(0b11, 2));
        // point starting 110... must land in label 110
        let point = 0b110u64 << 61;
        assert_eq!(c.locate(point), Label::new(0b110, 3));
        // point starting 00... lands in 00
        assert_eq!(c.locate(0), Label::new(0b00, 2));
    }

    #[test]
    fn sample_probability_is_two_to_minus_dim() {
        let mut c = PrefixCover::uniform(2); // labels of measure 1/4
        c.split(Label::new(0b00, 2)); // two labels of measure 1/8
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 64_000;
        let mut hits = 0u32;
        let target = Label::new(0b000, 3);
        for _ in 0..trials {
            if c.sample(&mut rng) == target {
                hits += 1;
            }
        }
        let p = hits as f64 / trials as f64;
        assert!((p - 0.125).abs() < 0.01, "measured {p}, expected 0.125");
    }

    #[test]
    fn neighbors_respect_connectivity() {
        let c = PrefixCover::uniform(3);
        let x = Label::new(0b000, 3);
        let ns = c.neighbors_of(&x);
        // exactly the three labels at Hamming distance 1
        assert_eq!(ns.len(), 3);
        for n in ns {
            assert_eq!(n.prefix_bits(3).count_ones(), 1);
        }
    }
}
