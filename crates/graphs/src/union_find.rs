//! Disjoint-set forest with union by rank and path halving.

/// A classic union-find structure over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind supports at most 2^32 elements");
        Self { parent: (0..n as u32).collect(), rank: vec![0; n], components: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p] as usize;
            self.parent[x] = gp as u32;
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.components(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn chain_collapses_to_one_component() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.same(0, n - 1));
    }

    #[test]
    fn empty_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
    }
}
