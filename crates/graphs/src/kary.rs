//! The `d`-dimensional `k`-ary hypercube (Definition 1 of the paper).
//!
//! `V = {0, ..., k-1}^d`; two vertices are adjacent iff they differ in
//! exactly one coordinate. It has `k^d` vertices, degree `(k-1) * d` and
//! diameter `d`. For `d = k / log k` (the RoBuSt setting of Section 7.2)
//! this gives degree `O(log^2 n / log log n)` and diameter
//! `log n / log log n` where `n = 2^k`.

use serde::{Deserialize, Serialize};

/// A `d`-dimensional `k`-ary hypercube; vertices are mixed-radix labels in
/// `0..k^d`, digit `i` (little-endian) being coordinate `i+1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KaryHypercube {
    k: u64,
    dim: u32,
}

impl KaryHypercube {
    /// Create a `d`-dimensional `k`-ary hypercube. Requires `k >= 2`,
    /// `d >= 1`, and `k^d <= 2^63`.
    pub fn new(k: u64, dim: u32) -> Self {
        assert!(k >= 2, "arity must be >= 2, got {k}");
        assert!(dim >= 1, "dimension must be >= 1");
        let mut size: u64 = 1;
        for _ in 0..dim {
            size = size.checked_mul(k).expect("k^d overflows u64");
            assert!(size <= 1u64 << 63, "k^d too large");
        }
        Self { k, dim }
    }

    /// The RoBuSt parameterization: `n = 2^kappa` vertices arranged with
    /// `d ~= kappa / log2(kappa)` and `k` chosen so `k^d >= n`.
    pub fn robust_params(kappa: u32) -> Self {
        assert!(kappa >= 4, "kappa must be >= 4");
        let log_kappa = (kappa as f64).log2().max(1.0);
        let d = ((kappa as f64) / log_kappa).round().max(1.0) as u32;
        // smallest k with k^d >= 2^kappa
        let k = (2f64.powf(kappa as f64 / d as f64)).ceil() as u64;
        Self::new(k.max(2), d)
    }

    /// Arity `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Dimension `d`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of vertices `k^d`.
    pub fn len(&self) -> u64 {
        self.k.pow(self.dim)
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Degree `(k-1) * d`.
    pub fn degree(&self) -> u64 {
        (self.k - 1) * self.dim as u64
    }

    /// Diameter `d`.
    pub fn diameter(&self) -> u32 {
        self.dim
    }

    /// Is `v` a valid vertex label?
    pub fn contains(&self, v: u64) -> bool {
        v < self.len()
    }

    /// Digit `i` (0-based coordinate) of vertex `v`.
    pub fn digit(&self, v: u64, i: u32) -> u64 {
        debug_assert!(i < self.dim);
        (v / self.k.pow(i)) % self.k
    }

    /// Replace digit `i` of `v` with `val`.
    pub fn with_digit(&self, v: u64, i: u32, val: u64) -> u64 {
        debug_assert!(val < self.k);
        let p = self.k.pow(i);
        let old = self.digit(v, i);
        v - old * p + val * p
    }

    /// All `(k-1) * d` neighbors of `v`.
    pub fn neighbors(&self, v: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.degree() as usize);
        for i in 0..self.dim {
            let cur = self.digit(v, i);
            for val in 0..self.k {
                if val != cur {
                    out.push(self.with_digit(v, i, val));
                }
            }
        }
        out
    }

    /// Number of coordinates in which `a` and `b` differ (hop distance).
    pub fn distance(&self, a: u64, b: u64) -> u32 {
        (0..self.dim).filter(|&i| self.digit(a, i) != self.digit(b, i)).count() as u32
    }

    /// Greedy route from `a` to `b`, fixing coordinates left to right.
    /// The path has length `distance(a, b) <= d`.
    pub fn route(&self, a: u64, b: u64) -> Vec<u64> {
        let mut path = vec![a];
        let mut cur = a;
        for i in 0..self.dim {
            let want = self.digit(b, i);
            if self.digit(cur, i) != want {
                cur = self.with_digit(cur, i, want);
                path.push(cur);
            }
        }
        path
    }

    /// Iterate over all vertex labels.
    pub fn vertices(&self) -> impl Iterator<Item = u64> {
        0..self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_roundtrip() {
        let g = KaryHypercube::new(3, 4); // 81 vertices
        let v = (2 + 3) + 2 * 27; // digits [2,1,0,2]
        assert_eq!(g.digit(v, 0), 2);
        assert_eq!(g.digit(v, 1), 1);
        assert_eq!(g.digit(v, 2), 0);
        assert_eq!(g.digit(v, 3), 2);
        assert_eq!(g.with_digit(v, 2, 1), v + 9);
    }

    #[test]
    fn degree_and_size() {
        let g = KaryHypercube::new(4, 3);
        assert_eq!(g.len(), 64);
        assert_eq!(g.degree(), 9);
        assert_eq!(g.neighbors(0).len(), 9);
    }

    #[test]
    fn neighbors_differ_in_exactly_one_digit() {
        let g = KaryHypercube::new(3, 3);
        for v in g.vertices() {
            for w in g.neighbors(v) {
                assert_eq!(g.distance(v, w), 1);
            }
        }
    }

    #[test]
    fn route_reaches_destination_within_diameter() {
        let g = KaryHypercube::new(5, 4);
        let path = g.route(0, g.len() - 1);
        assert_eq!(*path.last().unwrap(), g.len() - 1);
        assert!(path.len() as u32 <= g.diameter() + 1);
        // consecutive hops are edges
        for w in path.windows(2) {
            assert_eq!(g.distance(w[0], w[1]), 1);
        }
    }

    #[test]
    fn binary_case_matches_hypercube() {
        let g = KaryHypercube::new(2, 5);
        let h = crate::hypercube::Hypercube::new(5);
        for v in g.vertices() {
            let mut a = g.neighbors(v);
            let mut b = h.neighbors(v);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn robust_params_cover_n() {
        for kappa in [8u32, 12, 16] {
            let g = KaryHypercube::robust_params(kappa);
            assert!(g.len() >= 1u64 << kappa, "k^d must be >= 2^kappa");
        }
    }
}
