//! The binary hypercube (Section 2.2).
//!
//! A `d`-dimensional hypercube has `V = {0,1}^d` and an edge between two
//! vertices iff they differ in exactly one coordinate. Section 5 derives
//! its DoS-resistant topology from it, and the token random walk of
//! Section 2.3 performs exactly-uniform node sampling on it.

use serde::{Deserialize, Serialize};

/// A `d`-dimensional binary hypercube; vertices are the labels `0..2^d`
/// encoded in a `u64` (bit `i` is coordinate `i+1` of the paper's
/// `(b_1, ..., b_d)` notation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Create a `d`-dimensional hypercube, `1 <= d <= 63`.
    pub fn new(dim: u32) -> Self {
        assert!((1..=63).contains(&dim), "hypercube dimension must be in 1..=63, got {dim}");
        Self { dim }
    }

    /// Dimension `d`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of vertices `2^d`.
    pub fn len(&self) -> u64 {
        1u64 << self.dim
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Is `v` a valid vertex label?
    pub fn contains(&self, v: u64) -> bool {
        v < self.len()
    }

    /// The neighbor `n_i(v)` that differs from `v` exactly in coordinate
    /// `i` (1-based, following the paper).
    pub fn neighbor(&self, v: u64, i: u32) -> u64 {
        assert!((1..=self.dim).contains(&i), "coordinate {i} out of range 1..={}", self.dim);
        debug_assert!(self.contains(v));
        v ^ (1u64 << (i - 1))
    }

    /// All `d` neighbors of `v`.
    pub fn neighbors(&self, v: u64) -> Vec<u64> {
        (1..=self.dim).map(|i| self.neighbor(v, i)).collect()
    }

    /// Hamming distance between two vertices (their hop distance).
    pub fn distance(&self, a: u64, b: u64) -> u32 {
        (a ^ b).count_ones()
    }

    /// Diameter `d`.
    pub fn diameter(&self) -> u32 {
        self.dim
    }

    /// Iterate over all vertex labels.
    pub fn vertices(&self) -> impl Iterator<Item = u64> {
        0..self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_flips_one_bit() {
        let h = Hypercube::new(4);
        assert_eq!(h.neighbor(0b0000, 1), 0b0001);
        assert_eq!(h.neighbor(0b0101, 3), 0b0001);
        assert_eq!(h.neighbor(h.neighbor(9, 2), 2), 9);
    }

    #[test]
    fn neighbors_are_at_distance_one() {
        let h = Hypercube::new(5);
        for v in h.vertices() {
            let ns = h.neighbors(v);
            assert_eq!(ns.len(), 5);
            for w in ns {
                assert_eq!(h.distance(v, w), 1);
            }
        }
    }

    #[test]
    fn size_and_diameter() {
        let h = Hypercube::new(6);
        assert_eq!(h.len(), 64);
        assert_eq!(h.diameter(), 6);
        assert_eq!(h.distance(0, 63), 6);
    }

    #[test]
    #[should_panic(expected = "coordinate")]
    fn out_of_range_coordinate_panics() {
        Hypercube::new(3).neighbor(0, 4);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dim_rejected() {
        Hypercube::new(0);
    }
}
