//! Spectral-gap estimation.
//!
//! Corollary 1 of the paper: a random H-graph satisfies
//! `|lambda_i| <= 2 sqrt(d)` for all `i > 1` w.h.p., which makes it an
//! expander with rapidly mixing walks. We verify this empirically with
//! power iteration on the adjacency operator, deflating the top eigenpair
//! (the all-ones vector with eigenvalue `d` for a `d`-regular graph).

use crate::connectivity::Adjacency;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Below this many nodes the matvec runs serially.
const PAR_THRESHOLD: usize = 4096;

/// Estimate `|lambda_2|` of the adjacency matrix of a regular multigraph by
/// power iteration orthogonal to the all-ones vector.
///
/// `iters` power steps are performed (100–300 is plenty for expander-sized
/// gaps); the result converges to the second-largest eigenvalue magnitude.
pub fn second_eigenvalue(adj: &Adjacency, iters: usize, seed: u64) -> f64 {
    let n = adj.len();
    if n < 2 {
        return 0.0;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        deflate_ones(&mut x);
        normalize(&mut x);
        matvec(adj, &x, &mut y);
        // Rayleigh quotient on the deflated space.
        lambda = dot(&x, &y);
        std::mem::swap(&mut x, &mut y);
    }
    lambda.abs()
}

/// The normalized spectral expansion `|lambda_2| / d` of a `d`-regular
/// multigraph (values below 1 certify expansion; random H-graphs give
/// roughly `2 sqrt(d) / d`).
pub fn spectral_expansion(adj: &Adjacency, d: usize, iters: usize, seed: u64) -> f64 {
    second_eigenvalue(adj, iters, seed) / d as f64
}

fn matvec(adj: &Adjacency, x: &[f64], y: &mut [f64]) {
    if adj.len() >= PAR_THRESHOLD {
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            *yi = adj.neighbors(i).iter().map(|&j| x[j as usize]).sum();
        });
    } else {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = adj.neighbors(i).iter().map(|&j| x[j as usize]).sum();
        }
    }
}

fn deflate_ones(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hgraph::HGraph;
    use simnet::NodeId;

    fn cycle_adj(n: u64) -> Adjacency {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let edges: Vec<_> = (0..n).map(|i| (NodeId(i), NodeId((i + 1) % n))).collect();
        Adjacency::from_edges(&nodes, &edges)
    }

    #[test]
    fn cycle_second_eigenvalue_matches_theory() {
        // An even cycle is bipartite: its spectrum contains -2, so the
        // second-largest eigenvalue *magnitude* is exactly 2.
        let est = second_eigenvalue(&cycle_adj(32), 4000, 7);
        assert!((est - 2.0).abs() < 0.02, "est {est} vs theory 2.0");
    }

    #[test]
    fn random_hgraph_is_an_expander() {
        let nodes: Vec<NodeId> = (0..512).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = HGraph::random(&nodes, 8, &mut rng);
        let lam2 = second_eigenvalue(&g.adjacency(), 300, 5);
        let bound = 2.0 * (8f64).sqrt(); // Corollary 1: 2 sqrt(d)
        assert!(lam2 <= bound + 0.5, "lambda2 {lam2} exceeds Friedman bound {bound}");
        // ... and well below d (an actual spectral gap).
        assert!(lam2 < 8.0 * 0.9);
    }

    #[test]
    fn expansion_of_cycle_is_poor() {
        // The cycle's normalized gap tends to 1 (no expansion).
        let e = spectral_expansion(&cycle_adj(64), 2, 3000, 3);
        assert!(e > 0.97, "cycle should have near-zero spectral gap, got {e}");
    }

    #[test]
    fn tiny_graphs_dont_panic() {
        let nodes = vec![NodeId(0)];
        let adj = Adjacency::from_edges(&nodes, &[]);
        assert_eq!(second_eigenvalue(&adj, 10, 0), 0.0);
    }
}
