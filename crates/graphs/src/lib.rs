//! # overlay-graphs — topologies and graph algorithms for reconfigurable overlays
//!
//! Implements the network topologies of Drees/Gmyr/Scheideler (SPAA 2016):
//!
//! * [`hamilton`] / [`hgraph`] — H-graphs: `d`-regular multigraphs that are
//!   the union of `d/2` oriented Hamilton cycles (Section 2.2). A graph
//!   sampled uniformly from `H_n` is an expander w.h.p. (Friedman's theorem,
//!   Corollary 1 of the paper).
//! * [`hypercube`] — the binary hypercube used by the DoS-resistant network
//!   of Section 5.
//! * [`kary`] — the `d`-dimensional `k`-ary hypercube (Definition 1) used by
//!   the robust DHT of Section 7.2.
//! * [`butterfly`] — the `d`-dimensional `k`-ary butterfly emulated for
//!   routing in the extended RoBuSt system (Theorem 8).
//! * [`prefix`] — prefix-free supernode label space with split/merge for the
//!   combined churn+DoS network of Section 6.
//!
//! plus the graph algorithms the experiments need: restricted
//! [`connectivity`], [`spectral`]-gap estimation (to verify expansion), and
//! simple random [`walk`]s.

pub mod butterfly;
pub mod checkpoint;
pub mod connectivity;
pub mod hamilton;
pub mod hgraph;
pub mod hypercube;
pub mod kary;
pub mod prefix;
pub mod skip;
pub mod spectral;
pub mod union_find;
pub mod walk;

pub use butterfly::Butterfly;
pub use connectivity::{
    connected_components, is_connected, is_connected_restricted, sparsest_vertex_cut, Adjacency,
    VertexCut,
};
pub use hamilton::HamiltonCycle;
pub use hgraph::HGraph;
pub use hypercube::Hypercube;
pub use kary::KaryHypercube;
pub use prefix::{Label, PrefixCover};
pub use skip::SkipGraph;
pub use spectral::second_eigenvalue;
pub use union_find::UnionFind;
