//! Simple random walks (Section 2.3).
//!
//! * On a `d`-regular multigraph, the simple random walk picks a uniformly
//!   random incident edge each step; its stationary distribution is uniform,
//!   and on a random H-graph it mixes in `O(log n)` steps (Lemma 2).
//! * On the hypercube, the paper's token walk visits coordinates
//!   `1, ..., d` in order and flips a fair coin per coordinate; after `d`
//!   rounds the token sits at an exactly-uniform vertex.

use crate::connectivity::Adjacency;
use crate::hypercube::Hypercube;
use rand::{Rng, RngExt};

/// Walk `steps` steps of the simple random walk from dense index `start`;
/// returns the final dense index. Panics on isolated vertices.
pub fn simple_walk<R: Rng + ?Sized>(
    adj: &Adjacency,
    start: usize,
    steps: usize,
    rng: &mut R,
) -> usize {
    let mut cur = start;
    for _ in 0..steps {
        let ns = adj.neighbors(cur);
        assert!(!ns.is_empty(), "random walk stuck at isolated vertex {cur}");
        cur = ns[rng.random_range(0..ns.len())] as usize;
    }
    cur
}

/// The walk length `t = ceil(2 * alpha * log_{d/4} n)` from Lemma 2, after
/// which the walk distribution is within `n^-alpha` of uniform pointwise.
pub fn mixing_length(n: usize, d: usize, alpha: f64) -> usize {
    assert!(d > 4, "Lemma 2 requires d > 4 (log base d/4)");
    let n = n.max(2) as f64;
    let base = (d as f64 / 4.0).max(1.0 + 1e-9);
    (2.0 * alpha * n.ln() / base.ln()).ceil() as usize
}

/// The paper's hypercube token walk (Section 2.3): in round `i` the holder
/// flips a fair coin and either keeps the token or forwards it to
/// `n_i(v)`. After `d` rounds the holder is uniform over `V`. Returns the
/// final vertex.
pub fn hypercube_token_walk<R: Rng + ?Sized>(h: &Hypercube, start: u64, rng: &mut R) -> u64 {
    let mut cur = start;
    for i in 1..=h.dim() {
        if rng.random::<bool>() {
            cur = h.neighbor(cur, i);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simnet::NodeId;

    #[test]
    fn walk_stays_on_graph() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let adj = Adjacency::from_edges(
            &nodes,
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(0)),
            ],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..50 {
            let end = simple_walk(&adj, 0, 7, &mut rng);
            assert!(end < 4);
            // parity: a 4-cycle is bipartite, 7 steps lands on odd side
            assert!(end == 1 || end == 3);
        }
    }

    #[test]
    fn mixing_length_grows_logarithmically() {
        let t1 = mixing_length(1 << 10, 8, 2.0);
        let t2 = mixing_length(1 << 20, 8, 2.0);
        assert!(t2 > t1);
        // doubling the exponent doubles the length (log n growth)
        assert!((t2 as f64 / t1 as f64 - 2.0).abs() < 0.2);
    }

    #[test]
    fn hypercube_token_walk_is_uniform() {
        // chi-square-free sanity check: every vertex reachable, roughly even.
        let h = Hypercube::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trials = 16_000;
        let mut counts = vec![0u32; 16];
        for _ in 0..trials {
            counts[hypercube_token_walk(&h, 5, &mut rng) as usize] += 1;
        }
        let expected = trials as f64 / 16.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "d > 4")]
    fn mixing_length_requires_valid_base() {
        mixing_length(100, 4, 2.0);
    }
}
