//! The `d`-dimensional `k`-ary butterfly (Section 7.2).
//!
//! Vertices are pairs `(level, position)` with `level in 0..=d` and
//! `position in {0,...,k-1}^d`. A level-`l` vertex `(l, p)` is connected to
//! the `k` level-`l+1` vertices whose positions agree with `p` everywhere
//! except possibly digit `l` (the digit being "fixed" at that level). The
//! butterfly supports congestion-friendly routing: a packet from
//! `(0, src)` reaches `(d, dst)` in exactly `d` hops by correcting one
//! digit per level. The RoBuSt system emulates this network on a `k`-ary
//! hypercube; we provide both the pure topology and the emulation mapping.

use crate::kary::KaryHypercube;
use serde::{Deserialize, Serialize};

/// A butterfly vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BflyVertex {
    /// Level in `0..=d`.
    pub level: u32,
    /// Position label in `0..k^d`.
    pub pos: u64,
}

/// A `d`-dimensional `k`-ary butterfly over the position space of a
/// [`KaryHypercube`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Butterfly {
    cube: KaryHypercube,
}

impl Butterfly {
    /// Build a butterfly with `d = cube.dim()` levels over `cube`'s
    /// position space.
    pub fn new(cube: KaryHypercube) -> Self {
        Self { cube }
    }

    /// The underlying position space.
    pub fn cube(&self) -> &KaryHypercube {
        &self.cube
    }

    /// Number of levels `d` (vertex levels run `0..=d`).
    pub fn depth(&self) -> u32 {
        self.cube.dim()
    }

    /// Total number of butterfly vertices `(d+1) * k^d`.
    pub fn len(&self) -> u64 {
        (self.depth() as u64 + 1) * self.cube.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `k` down-neighbors of `(l, p)` at level `l+1` (digit `l` of the
    /// position takes every value). Empty for the last level.
    pub fn down(&self, v: BflyVertex) -> Vec<BflyVertex> {
        if v.level >= self.depth() {
            return Vec::new();
        }
        (0..self.cube.k())
            .map(|val| BflyVertex {
                level: v.level + 1,
                pos: self.cube.with_digit(v.pos, v.level, val),
            })
            .collect()
    }

    /// The `k` up-neighbors of `(l, p)` at level `l-1`. Empty for level 0.
    pub fn up(&self, v: BflyVertex) -> Vec<BflyVertex> {
        if v.level == 0 {
            return Vec::new();
        }
        (0..self.cube.k())
            .map(|val| BflyVertex {
                level: v.level - 1,
                pos: self.cube.with_digit(v.pos, v.level - 1, val),
            })
            .collect()
    }

    /// The unique descending path from `(0, src)` to `(d, dst)`: at level
    /// `l` the packet corrects digit `l` to match `dst`.
    pub fn route(&self, src: u64, dst: u64) -> Vec<BflyVertex> {
        let d = self.depth();
        let mut path = Vec::with_capacity(d as usize + 1);
        let mut pos = src;
        path.push(BflyVertex { level: 0, pos });
        for l in 0..d {
            pos = self.cube.with_digit(pos, l, self.cube.digit(dst, l));
            path.push(BflyVertex { level: l + 1, pos });
        }
        path
    }

    /// Emulation mapping (Section 7.2): butterfly vertex `(l, p)` is
    /// simulated by hypercube vertex `p`. Each hypercube vertex therefore
    /// simulates `d + 1` butterfly vertices, and every butterfly edge maps
    /// to a hypercube edge (positions differing in one digit) or to a local
    /// step (same position, different level).
    pub fn host_of(&self, v: BflyVertex) -> u64 {
        v.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bfly() -> Butterfly {
        Butterfly::new(KaryHypercube::new(3, 4))
    }

    #[test]
    fn down_neighbors_fix_level_digit() {
        let b = bfly();
        let v = BflyVertex { level: 1, pos: 0 };
        let ns = b.down(v);
        assert_eq!(ns.len(), 3);
        for w in &ns {
            assert_eq!(w.level, 2);
            // positions differ from v.pos only in digit 1
            for i in 0..b.cube().dim() {
                if i != 1 {
                    assert_eq!(b.cube().digit(w.pos, i), b.cube().digit(v.pos, i));
                }
            }
        }
    }

    #[test]
    fn up_is_inverse_of_down() {
        let b = bfly();
        let v = BflyVertex { level: 2, pos: 17 };
        for w in b.down(v) {
            assert!(b.up(w).contains(&v));
        }
    }

    #[test]
    fn route_is_d_hops_and_lands_on_dst() {
        let b = bfly();
        let path = b.route(5, 73);
        assert_eq!(path.len() as u32, b.depth() + 1);
        assert_eq!(path[0], BflyVertex { level: 0, pos: 5 });
        assert_eq!(path.last().unwrap().pos, 73);
        // every hop is a butterfly edge
        for w in path.windows(2) {
            assert!(b.down(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn boundary_levels_have_one_sided_neighbors() {
        let b = bfly();
        assert!(b.up(BflyVertex { level: 0, pos: 0 }).is_empty());
        assert!(b.down(BflyVertex { level: b.depth(), pos: 0 }).is_empty());
    }

    #[test]
    fn vertex_count() {
        let b = bfly();
        assert_eq!(b.len(), 5 * 81);
    }

    #[test]
    fn emulation_host_is_position() {
        let b = bfly();
        let v = BflyVertex { level: 3, pos: 42 };
        assert_eq!(b.host_of(v), 42);
    }
}
