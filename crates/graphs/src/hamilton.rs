//! Oriented Hamilton cycles over arbitrary node sets.
//!
//! An H-graph's edge set is the (multiset) union of `d/2` Hamilton cycles,
//! each with an orientation: every node stores a reference to its
//! predecessor and successor in each cycle (paper, Section 2.2).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::HashMap;

/// An oriented Hamilton cycle over a set of nodes.
///
/// Internally the cycle is a cyclic sequence `order[0] -> order[1] -> ... ->
/// order[n-1] -> order[0]`. Sampling a uniformly random permutation yields a
/// uniformly random oriented Hamilton cycle (each oriented cycle corresponds
/// to exactly `n` rotations).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HamiltonCycle {
    order: Vec<NodeId>,
    pos: HashMap<NodeId, usize>,
}

impl HamiltonCycle {
    /// Build a cycle visiting the nodes in the given order.
    ///
    /// Panics if `order` contains duplicates or fewer than 3 nodes (a
    /// Hamilton cycle needs at least a triangle; the paper's multigraphs
    /// have no loops).
    pub fn from_order(order: Vec<NodeId>) -> Self {
        assert!(order.len() >= 3, "a Hamilton cycle needs at least 3 nodes");
        let mut pos = HashMap::with_capacity(order.len());
        for (i, &v) in order.iter().enumerate() {
            let dup = pos.insert(v, i);
            assert!(dup.is_none(), "duplicate node {v} in cycle order");
        }
        Self { order, pos }
    }

    /// Sample a uniformly random oriented Hamilton cycle over `nodes`.
    pub fn random<R: Rng + ?Sized>(nodes: &[NodeId], rng: &mut R) -> Self {
        let mut order = nodes.to_vec();
        order.shuffle(rng);
        Self::from_order(order)
    }

    /// Number of nodes on the cycle.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Always false (constructor requires ≥ 3 nodes).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether `v` is on the cycle.
    pub fn contains(&self, v: NodeId) -> bool {
        self.pos.contains_key(&v)
    }

    /// The nodes in cycle order, starting at an arbitrary anchor.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Successor of `v` with respect to the cycle's orientation.
    pub fn successor(&self, v: NodeId) -> NodeId {
        let i = self.pos[&v];
        self.order[(i + 1) % self.order.len()]
    }

    /// Predecessor of `v` with respect to the cycle's orientation.
    pub fn predecessor(&self, v: NodeId) -> NodeId {
        let i = self.pos[&v];
        self.order[(i + self.order.len() - 1) % self.order.len()]
    }

    /// Position of `v` in the internal order (used by segment analyses).
    pub fn position(&self, v: NodeId) -> Option<usize> {
        self.pos.get(&v).copied()
    }

    /// Iterate over the cycle's directed edges `(v, succ(v))`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let n = self.order.len();
        (0..n).map(move |i| (self.order[i], self.order[(i + 1) % n]))
    }

    /// The segment `[u, v]` walked along successors: `u, succ(u), ..., v`.
    ///
    /// Used to measure *empty segments* (Lemma 12). Panics if `u` or `v` is
    /// not on the cycle.
    pub fn segment(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let mut out = vec![u];
        let mut cur = u;
        while cur != v {
            cur = self.successor(cur);
            out.push(cur);
            assert!(out.len() <= self.len(), "segment did not terminate");
        }
        out
    }

    /// A canonical key identifying the *oriented cycle* independent of the
    /// internal rotation: the order rotated so the minimum node comes first.
    ///
    /// Two `HamiltonCycle`s describe the same oriented cycle iff their keys
    /// are equal. Used by the uniformity test of Lemma 10.
    pub fn canonical_key(&self) -> Vec<NodeId> {
        let min_idx = self
            .order
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .expect("non-empty");
        let n = self.order.len();
        (0..n).map(|i| self.order[(min_idx + i) % n]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn successor_predecessor_roundtrip() {
        let c = HamiltonCycle::from_order(ids(&[3, 1, 4, 1 + 4, 9]));
        for &v in c.order() {
            assert_eq!(c.predecessor(c.successor(v)), v);
            assert_eq!(c.successor(c.predecessor(v)), v);
        }
    }

    #[test]
    fn edges_cover_every_node_once_as_source() {
        let c = HamiltonCycle::from_order(ids(&[0, 1, 2, 3]));
        let es: Vec<_> = c.edges().collect();
        assert_eq!(es.len(), 4);
        let mut sources: Vec<u64> = es.iter().map(|(a, _)| a.raw()).collect();
        sources.sort_unstable();
        assert_eq!(sources, vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_cycle_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let nodes = ids(&(0..50).collect::<Vec<_>>());
        let c = HamiltonCycle::random(&nodes, &mut rng);
        assert_eq!(c.len(), 50);
        for &v in &nodes {
            assert!(c.contains(v));
        }
    }

    #[test]
    fn canonical_key_rotation_invariant() {
        let a = HamiltonCycle::from_order(ids(&[2, 0, 1]));
        let b = HamiltonCycle::from_order(ids(&[0, 1, 2]));
        assert_eq!(a.canonical_key(), b.canonical_key());
        // Opposite orientation is a different oriented cycle.
        let c = HamiltonCycle::from_order(ids(&[2, 1, 0]));
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn segment_walks_successors() {
        let c = HamiltonCycle::from_order(ids(&[0, 1, 2, 3, 4]));
        assert_eq!(c.segment(NodeId(3), NodeId(1)), ids(&[3, 4, 0, 1]));
        assert_eq!(c.segment(NodeId(2), NodeId(2)), ids(&[2]));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_node_rejected() {
        HamiltonCycle::from_order(ids(&[0, 1, 0]));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        HamiltonCycle::from_order(ids(&[0, 1]));
    }
}
