//! [`Checkpoint`] implementations for the topology types.
//!
//! Every impl serializes through the type's public constructor so the
//! derived indices (cycle position maps, adjacency) are rebuilt rather
//! than stored; a loaded value is structurally identical to the original.

use crate::{HGraph, HamiltonCycle, Hypercube, Label, PrefixCover};
use serde_json::Value;
use simnet::checkpoint::{get_u64, get_vec, missing, Checkpoint, CkptError, CkptResult};
use simnet::NodeId;

impl Checkpoint for HamiltonCycle {
    fn save(&self) -> Value {
        simnet::checkpoint::save_slice(self.order())
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let order: Vec<NodeId> = simnet::checkpoint::load_vec(v)?;
        if order.len() < 3 {
            return Err(CkptError::Corrupt("hamilton cycle shorter than 3".into()));
        }
        Ok(HamiltonCycle::from_order(order))
    }
}

impl Checkpoint for HGraph {
    fn save(&self) -> Value {
        serde_json::json!({
            "nodes": simnet::checkpoint::save_slice(self.nodes()),
            "cycles": simnet::checkpoint::save_slice(self.cycles()),
        })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let nodes: Vec<NodeId> = get_vec(v, "nodes")?;
        let cycles: Vec<HamiltonCycle> = get_vec(v, "cycles")?;
        if cycles.is_empty() || cycles.iter().any(|c| c.len() != nodes.len()) {
            return Err(CkptError::Corrupt("h-graph cycles do not cover the node set".into()));
        }
        Ok(HGraph::from_cycles(nodes, cycles))
    }
}

impl Checkpoint for Hypercube {
    fn save(&self) -> Value {
        serde_json::json!({ "dim": self.dim() })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let dim = get_u64(v, "dim")? as u32;
        if !(1..=63).contains(&dim) {
            return Err(CkptError::Corrupt(format!("hypercube dimension {dim}")));
        }
        Ok(Hypercube::new(dim))
    }
}

impl Checkpoint for Label {
    fn save(&self) -> Value {
        serde_json::json!({ "bits": self.prefix_bits(self.dim()), "len": self.dim() })
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let len = get_u64(v, "len")?;
        if len > Label::MAX_LEN as u64 {
            return Err(CkptError::Corrupt(format!("label length {len}")));
        }
        Ok(Label::new(get_u64(v, "bits")?, len as u8))
    }
}

impl Checkpoint for PrefixCover {
    fn save(&self) -> Value {
        Value::Array(self.iter().map(Checkpoint::save).collect())
    }

    fn load(v: &Value) -> CkptResult<Self> {
        let labels = v
            .as_array()
            .ok_or_else(|| missing("prefix cover"))?
            .iter()
            .map(Label::load)
            .collect::<CkptResult<Vec<Label>>>()?;
        let cover = PrefixCover::from_labels(labels);
        if !cover.is_exact_cover() {
            return Err(CkptError::Corrupt("label set is not an exact prefix cover".into()));
        }
        Ok(cover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn hgraph_round_trips() {
        let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let g = HGraph::random(&nodes, 4, &mut rng);
        let back = HGraph::load(&g.save()).unwrap();
        assert_eq!(back.nodes(), g.nodes());
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn prefix_cover_round_trips_and_validates() {
        let mut cover = PrefixCover::uniform(3);
        let first = *cover.iter().next().unwrap();
        cover.merge(first);
        let back = PrefixCover::load(&cover.save()).unwrap();
        assert_eq!(back.len(), cover.len());
        // A non-cover must be rejected.
        let broken = Value::Array(vec![Label::new(0, 2).save()]);
        assert!(PrefixCover::load(&broken).is_err());
    }

    #[test]
    fn hypercube_and_label_round_trip() {
        let c = Hypercube::new(7);
        assert_eq!(Hypercube::load(&c.save()).unwrap(), c);
        let l = Label::new(0b101, 3);
        assert_eq!(Label::load(&l.save()).unwrap(), l);
    }
}
