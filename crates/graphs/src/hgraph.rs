//! H-graphs (Section 2.2).
//!
//! An H-graph is an undirected multigraph `G = (V, E)` whose edge multiset
//! is the union of `d/2` Hamilton cycles over `V`, each with an orientation.
//! It is a connected `d`-regular multigraph (parallel edges allowed, no
//! loops). Sampling the cycles independently and uniformly at random yields
//! a graph from `H_n`; by Friedman's theorem such a graph satisfies
//! `|lambda_i| <= 2 sqrt(d)` for all `i > 1` w.h.p. (Corollary 1), hence is
//! an expander with `O(log n)` diameter and rapidly mixing random walks.

use crate::hamilton::HamiltonCycle;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use simnet::NodeId;

/// The degree the paper requires for its expansion guarantees
/// (`d >= 8`, even). Constructors accept any even `d >= 2`; callers that
/// need the paper's guarantees should use [`HGraph::random`] with
/// `d >= MIN_PAPER_DEGREE`.
pub const MIN_PAPER_DEGREE: usize = 8;

/// A `d`-regular multigraph formed by `d/2` oriented Hamilton cycles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HGraph {
    nodes: Vec<NodeId>,
    cycles: Vec<HamiltonCycle>,
}

impl HGraph {
    /// Assemble an H-graph from explicit cycles. All cycles must cover the
    /// same node set as `nodes`.
    pub fn from_cycles(nodes: Vec<NodeId>, cycles: Vec<HamiltonCycle>) -> Self {
        assert!(!cycles.is_empty(), "an H-graph needs at least one Hamilton cycle");
        for c in &cycles {
            assert_eq!(c.len(), nodes.len(), "cycle covers a different node count");
            for &v in &nodes {
                assert!(c.contains(v), "cycle misses node {v}");
            }
        }
        Self { nodes, cycles }
    }

    /// Sample a graph uniformly from `H_n` with degree `d` (i.e. `d/2`
    /// independent uniform Hamilton cycles).
    pub fn random<R: Rng + ?Sized>(nodes: &[NodeId], d: usize, rng: &mut R) -> Self {
        assert!(d >= 2 && d % 2 == 0, "H-graph degree must be even and >= 2, got {d}");
        let cycles = (0..d / 2).map(|_| HamiltonCycle::random(nodes, rng)).collect();
        Self::from_cycles(nodes.to_vec(), cycles)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Degree `d = 2 * (#cycles)`; every node has exactly `d` incident edge
    /// endpoints (counting multiplicity).
    pub fn degree(&self) -> usize {
        2 * self.cycles.len()
    }

    /// The node set.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The constituent Hamilton cycles.
    pub fn cycles(&self) -> &[HamiltonCycle] {
        &self.cycles
    }

    /// Whether `v` is a node of this graph.
    pub fn contains(&self, v: NodeId) -> bool {
        self.cycles[0].contains(v)
    }

    /// All `d` neighbors of `v` with multiplicity (predecessor and successor
    /// in every cycle).
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree());
        for c in &self.cycles {
            out.push(c.predecessor(v));
            out.push(c.successor(v));
        }
        out
    }

    /// A uniformly random incident edge endpoint — one step of the simple
    /// random walk on the multigraph.
    pub fn random_neighbor<R: Rng + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId {
        let d = self.degree();
        let k = rng.random_range(0..d);
        let c = &self.cycles[k / 2];
        if k % 2 == 0 {
            c.predecessor(v)
        } else {
            c.successor(v)
        }
    }

    /// The undirected edge multiset, one entry per cycle edge.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.len() * self.cycles.len());
        for c in &self.cycles {
            out.extend(c.edges());
        }
        out
    }

    /// Adjacency lists indexed densely by position in `nodes()` — the input
    /// format of [`crate::connectivity`] and [`crate::spectral`].
    pub fn adjacency(&self) -> crate::connectivity::Adjacency {
        crate::connectivity::Adjacency::from_edges(&self.nodes, &self.edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn node_vec(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn degree_is_regular() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = HGraph::random(&node_vec(20), 8, &mut rng);
        assert_eq!(g.degree(), 8);
        for &v in g.nodes() {
            assert_eq!(g.neighbors(v).len(), 8);
        }
    }

    #[test]
    fn edge_multiset_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = HGraph::random(&node_vec(10), 4, &mut rng);
        // 2 cycles x 10 edges each.
        assert_eq!(g.edges().len(), 20);
    }

    #[test]
    fn random_neighbor_is_a_neighbor() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = HGraph::random(&node_vec(12), 6, &mut rng);
        for &v in g.nodes() {
            let ns = g.neighbors(v);
            for _ in 0..20 {
                let w = g.random_neighbor(v, &mut rng);
                assert!(ns.contains(&w));
            }
        }
    }

    #[test]
    fn hgraph_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = HGraph::random(&node_vec(64), 8, &mut rng);
        let adj = g.adjacency();
        assert!(crate::connectivity::is_connected(&adj));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_degree_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        HGraph::random(&node_vec(10), 5, &mut rng);
    }

    #[test]
    fn no_self_loops() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = HGraph::random(&node_vec(30), 8, &mut rng);
        for (a, b) in g.edges() {
            assert_ne!(a, b);
        }
    }
}
