//! Connectivity queries, including the paper's *restricted* notion:
//! an overlay is connected under a DoS-attack if the subgraph induced by
//! the **non-blocked** nodes is connected (Section 1.1).

use crate::union_find::UnionFind;
use simnet::{BlockSet, NodeId};
use std::collections::HashMap;

/// Dense adjacency lists over a fixed node set.
///
/// Nodes are mapped to indices `0..n` in the order given at construction;
/// the mapping is retained so callers can translate back to [`NodeId`]s.
#[derive(Clone, Debug)]
pub struct Adjacency {
    nodes: Vec<NodeId>,
    index: HashMap<NodeId, u32>,
    lists: Vec<Vec<u32>>,
}

impl Adjacency {
    /// Build from an undirected edge list. Edges touching unknown nodes
    /// panic (the caller controls both sets).
    pub fn from_edges(nodes: &[NodeId], edges: &[(NodeId, NodeId)]) -> Self {
        let index: HashMap<NodeId, u32> =
            nodes.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        assert_eq!(index.len(), nodes.len(), "duplicate node ids");
        let mut lists = vec![Vec::new(); nodes.len()];
        for &(a, b) in edges {
            let (ia, ib) = (index[&a], index[&b]);
            lists[ia as usize].push(ib);
            lists[ib as usize].push(ia);
        }
        Self { nodes: nodes.to_vec(), index, lists }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at dense index `i`.
    pub fn node(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// Dense index of `v`, if present.
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.index.get(&v).map(|&i| i as usize)
    }

    /// Neighbor indices of dense index `i` (with multiplicity).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.lists[i]
    }

    /// Degree (with multiplicity) of dense index `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.lists[i].len()
    }
}

/// Is the whole graph connected? (Empty and single-node graphs count as
/// connected.)
pub fn is_connected(adj: &Adjacency) -> bool {
    components_impl(adj, |_| true).0 <= 1
}

/// Is the subgraph induced by the non-blocked nodes connected?
///
/// This is the paper's success criterion for DoS resistance: blocked nodes
/// and all their incident edges are removed, and the remainder must be one
/// component. If every node is blocked the answer is `true` (vacuous).
pub fn is_connected_restricted(adj: &Adjacency, blocked: &BlockSet) -> bool {
    components_impl(adj, |v| !blocked.contains(v)).0 <= 1
}

/// Component label per dense index; `None` for excluded nodes. Returns
/// `(component_count, labels)`.
pub fn connected_components(adj: &Adjacency, blocked: &BlockSet) -> (usize, Vec<Option<u32>>) {
    let (count, uf) = components_impl(adj, |v| !blocked.contains(v));
    let mut uf = uf;
    let mut label_of_root: HashMap<usize, u32> = HashMap::new();
    let mut labels = vec![None; adj.len()];
    for (i, label) in labels.iter_mut().enumerate() {
        if blocked.contains(adj.node(i)) {
            continue;
        }
        let root = uf.find(i);
        let next = label_of_root.len() as u32;
        let l = *label_of_root.entry(root).or_insert(next);
        *label = Some(l);
    }
    (count, labels)
}

fn components_impl<F: Fn(NodeId) -> bool>(adj: &Adjacency, alive: F) -> (usize, UnionFind) {
    let mut uf = UnionFind::new(adj.len());
    let mut alive_count = 0usize;
    for i in 0..adj.len() {
        if !alive(adj.node(i)) {
            continue;
        }
        alive_count += 1;
        for &j in adj.neighbors(i) {
            if alive(adj.node(j as usize)) {
                uf.union(i, j as usize);
            }
        }
    }
    // components() counts dead singletons too; subtract them.
    let dead = adj.len() - alive_count;
    (uf.components() - dead, uf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn path4() -> Adjacency {
        // 0 - 1 - 2 - 3
        Adjacency::from_edges(
            &ids(&[0, 1, 2, 3]),
            &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2)), (NodeId(2), NodeId(3))],
        )
    }

    #[test]
    fn path_is_connected() {
        assert!(is_connected(&path4()));
    }

    #[test]
    fn blocking_cut_vertex_disconnects() {
        let adj = path4();
        let blocked = BlockSet::from_iter([NodeId(1)]);
        assert!(!is_connected_restricted(&adj, &blocked));
        let (count, labels) = connected_components(&adj, &blocked);
        assert_eq!(count, 2);
        assert_eq!(labels[1], None);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(labels[2], labels[3]);
    }

    #[test]
    fn blocking_leaf_keeps_connectivity() {
        let adj = path4();
        let blocked = BlockSet::from_iter([NodeId(3)]);
        assert!(is_connected_restricted(&adj, &blocked));
    }

    #[test]
    fn all_blocked_is_vacuously_connected() {
        let adj = path4();
        let blocked = BlockSet::from_iter(ids(&[0, 1, 2, 3]));
        assert!(is_connected_restricted(&adj, &blocked));
    }

    #[test]
    fn disconnected_pair_of_edges() {
        let adj = Adjacency::from_edges(
            &ids(&[0, 1, 2, 3]),
            &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
        );
        assert!(!is_connected(&adj));
        let (count, _) = connected_components(&adj, &BlockSet::none());
        assert_eq!(count, 2);
    }

    #[test]
    fn multi_edges_are_harmless() {
        let adj = Adjacency::from_edges(
            &ids(&[0, 1, 2]),
            &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))],
        );
        assert!(is_connected(&adj));
        assert_eq!(adj.degree(0), 2);
        assert_eq!(adj.degree(1), 3);
    }

    #[test]
    fn empty_graph_is_connected() {
        let adj = Adjacency::from_edges(&[], &[]);
        assert!(is_connected(&adj));
    }
}
