//! Connectivity queries, including the paper's *restricted* notion:
//! an overlay is connected under a DoS-attack if the subgraph induced by
//! the **non-blocked** nodes is connected (Section 1.1).

use crate::union_find::UnionFind;
use simnet::{BlockSet, NodeId};
use std::collections::HashMap;

/// Dense adjacency lists over a fixed node set.
///
/// Nodes are mapped to indices `0..n` in the order given at construction;
/// the mapping is retained so callers can translate back to [`NodeId`]s.
#[derive(Clone, Debug)]
pub struct Adjacency {
    nodes: Vec<NodeId>,
    index: HashMap<NodeId, u32>,
    lists: Vec<Vec<u32>>,
}

impl Adjacency {
    /// Build from an undirected edge list. Edges touching unknown nodes
    /// panic (the caller controls both sets).
    pub fn from_edges(nodes: &[NodeId], edges: &[(NodeId, NodeId)]) -> Self {
        let index: HashMap<NodeId, u32> =
            nodes.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
        assert_eq!(index.len(), nodes.len(), "duplicate node ids");
        let mut lists = vec![Vec::new(); nodes.len()];
        for &(a, b) in edges {
            let (ia, ib) = (index[&a], index[&b]);
            lists[ia as usize].push(ib);
            lists[ib as usize].push(ia);
        }
        Self { nodes: nodes.to_vec(), index, lists }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at dense index `i`.
    pub fn node(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// Dense index of `v`, if present.
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.index.get(&v).map(|&i| i as usize)
    }

    /// Neighbor indices of dense index `i` (with multiplicity).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.lists[i]
    }

    /// Degree (with multiplicity) of dense index `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.lists[i].len()
    }
}

/// Is the whole graph connected? (Empty and single-node graphs count as
/// connected.)
pub fn is_connected(adj: &Adjacency) -> bool {
    components_impl(adj, |_| true).0 <= 1
}

/// Is the subgraph induced by the non-blocked nodes connected?
///
/// This is the paper's success criterion for DoS resistance: blocked nodes
/// and all their incident edges are removed, and the remainder must be one
/// component. If every node is blocked the answer is `true` (vacuous).
pub fn is_connected_restricted(adj: &Adjacency, blocked: &BlockSet) -> bool {
    components_impl(adj, |v| !blocked.contains(v)).0 <= 1
}

/// Component label per dense index; `None` for excluded nodes. Returns
/// `(component_count, labels)`.
pub fn connected_components(adj: &Adjacency, blocked: &BlockSet) -> (usize, Vec<Option<u32>>) {
    let (count, uf) = components_impl(adj, |v| !blocked.contains(v));
    let mut uf = uf;
    let mut label_of_root: HashMap<usize, u32> = HashMap::new();
    let mut labels = vec![None; adj.len()];
    for (i, label) in labels.iter_mut().enumerate() {
        if blocked.contains(adj.node(i)) {
            continue;
        }
        let root = uf.find(i);
        let next = label_of_root.len() as u32;
        let l = *label_of_root.entry(root).or_insert(next);
        *label = Some(l);
    }
    (count, labels)
}

/// A vertex cut candidate: blocking `separator` disconnects `isolated`
/// from the rest of the graph (assuming the graph was connected).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexCut {
    /// The nodes to remove (block).
    pub separator: Vec<NodeId>,
    /// The region cut off once the separator is gone.
    pub isolated: Vec<NodeId>,
}

/// Find a sparse vertex cut by BFS region growing: from every seed, grow a
/// region one BFS layer-node at a time and record the region's *vertex
/// boundary* (nodes outside the region adjacent to it) whenever it fits in
/// `max_separator`. Among all candidates the one isolating the most nodes
/// wins, ties broken by the smaller separator, then by node order — fully
/// deterministic.
///
/// This is the adaptive adversary's min-cut targeting primitive: blocking
/// the returned separator disconnects `isolated` from the remainder, so a
/// budget of `max_separator` blocked nodes denies service to
/// `separator.len() + isolated.len()` nodes. Returns `None` when no
/// boundary ever fits the budget (e.g. an expander with a healthy degree
/// and a small budget — which is exactly the paper's claim).
pub fn sparsest_vertex_cut(adj: &Adjacency, max_separator: usize) -> Option<VertexCut> {
    let n = adj.len();
    if n < 3 || max_separator == 0 {
        return None;
    }
    // Cap the number of seeds so the search stays near-linear on large
    // graphs; the stride keeps seed choice deterministic and spread out.
    let max_seeds = 64.min(n);
    let stride = n.div_ceil(max_seeds);
    let mut best: Option<VertexCut> = None;
    let half = n / 2;
    for seed in (0..n).step_by(stride) {
        let mut in_region = vec![false; n];
        let mut region: Vec<usize> = vec![seed];
        in_region[seed] = true;
        let mut frontier: Vec<usize> = Vec::new(); // boundary, sorted rebuild per step
        let mut cursor = 0usize;
        while region.len() <= half {
            // Current vertex boundary of the region.
            frontier.clear();
            let mut seen = vec![false; n];
            for &r in &region {
                for &nb in adj.neighbors(r) {
                    let j = nb as usize;
                    if !in_region[j] && !seen[j] {
                        seen[j] = true;
                        frontier.push(j);
                    }
                }
            }
            if frontier.len() <= max_separator && region.len() + frontier.len() < n {
                let cand = VertexCut {
                    separator: frontier.iter().map(|&j| adj.node(j)).collect(),
                    isolated: region.iter().map(|&r| adj.node(r)).collect(),
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        cand.isolated.len() > b.isolated.len()
                            || (cand.isolated.len() == b.isolated.len()
                                && cand.separator.len() < b.separator.len())
                    }
                };
                if better {
                    best = cand.into();
                }
            }
            // Grow: absorb the next BFS node (smallest dense index on the
            // frontier keeps growth deterministic).
            frontier.sort_unstable();
            let Some(&next) = frontier.iter().find(|&&j| !in_region[j]) else { break };
            in_region[next] = true;
            region.push(next);
            cursor += 1;
            if cursor > half {
                break;
            }
        }
    }
    if let Some(cut) = &mut best {
        cut.separator.sort_unstable();
        cut.isolated.sort_unstable();
    }
    best
}

fn components_impl<F: Fn(NodeId) -> bool>(adj: &Adjacency, alive: F) -> (usize, UnionFind) {
    let mut uf = UnionFind::new(adj.len());
    let mut alive_count = 0usize;
    for i in 0..adj.len() {
        if !alive(adj.node(i)) {
            continue;
        }
        alive_count += 1;
        for &j in adj.neighbors(i) {
            if alive(adj.node(j as usize)) {
                uf.union(i, j as usize);
            }
        }
    }
    // components() counts dead singletons too; subtract them.
    let dead = adj.len() - alive_count;
    (uf.components() - dead, uf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn path4() -> Adjacency {
        // 0 - 1 - 2 - 3
        Adjacency::from_edges(
            &ids(&[0, 1, 2, 3]),
            &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2)), (NodeId(2), NodeId(3))],
        )
    }

    #[test]
    fn path_is_connected() {
        assert!(is_connected(&path4()));
    }

    #[test]
    fn blocking_cut_vertex_disconnects() {
        let adj = path4();
        let blocked = BlockSet::from_iter([NodeId(1)]);
        assert!(!is_connected_restricted(&adj, &blocked));
        let (count, labels) = connected_components(&adj, &blocked);
        assert_eq!(count, 2);
        assert_eq!(labels[1], None);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(labels[2], labels[3]);
    }

    #[test]
    fn blocking_leaf_keeps_connectivity() {
        let adj = path4();
        let blocked = BlockSet::from_iter([NodeId(3)]);
        assert!(is_connected_restricted(&adj, &blocked));
    }

    #[test]
    fn all_blocked_is_vacuously_connected() {
        let adj = path4();
        let blocked = BlockSet::from_iter(ids(&[0, 1, 2, 3]));
        assert!(is_connected_restricted(&adj, &blocked));
    }

    #[test]
    fn disconnected_pair_of_edges() {
        let adj = Adjacency::from_edges(
            &ids(&[0, 1, 2, 3]),
            &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
        );
        assert!(!is_connected(&adj));
        let (count, _) = connected_components(&adj, &BlockSet::none());
        assert_eq!(count, 2);
    }

    #[test]
    fn multi_edges_are_harmless() {
        let adj = Adjacency::from_edges(
            &ids(&[0, 1, 2]),
            &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))],
        );
        assert!(is_connected(&adj));
        assert_eq!(adj.degree(0), 2);
        assert_eq!(adj.degree(1), 3);
    }

    #[test]
    fn empty_graph_is_connected() {
        let adj = Adjacency::from_edges(&[], &[]);
        assert!(is_connected(&adj));
    }

    // -- sparsest vertex cut ------------------------------------------------

    /// Two cliques of size `k` joined by a single bridge node.
    fn barbell(k: u64) -> Adjacency {
        let bridge = 2 * k;
        let nodes: Vec<NodeId> = (0..=bridge).map(NodeId).collect();
        let mut edges = Vec::new();
        for side in [0, k] {
            for a in side..side + k {
                for b in (a + 1)..side + k {
                    edges.push((NodeId(a), NodeId(b)));
                }
            }
        }
        edges.push((NodeId(0), NodeId(bridge)));
        edges.push((NodeId(k), NodeId(bridge)));
        Adjacency::from_edges(&nodes, &edges)
    }

    #[test]
    fn cut_finds_the_barbell_bottleneck() {
        let adj = barbell(5);
        let cut = sparsest_vertex_cut(&adj, 2).expect("barbell has a sparse cut");
        assert!(cut.separator.len() <= 2);
        // Removing the separator must actually disconnect the isolated side.
        let blocked: BlockSet = cut.separator.iter().copied().collect();
        assert!(!is_connected_restricted(&adj, &blocked));
        assert!(!cut.isolated.is_empty());
    }

    #[test]
    fn clique_has_no_small_cut() {
        // K6: every vertex boundary of a proper region has >= 3 nodes.
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let mut edges = Vec::new();
        for a in 0..6u64 {
            for b in (a + 1)..6 {
                edges.push((NodeId(a), NodeId(b)));
            }
        }
        let adj = Adjacency::from_edges(&nodes, &edges);
        assert!(sparsest_vertex_cut(&adj, 2).is_none());
        assert!(sparsest_vertex_cut(&adj, 0).is_none());
    }

    #[test]
    fn cut_is_deterministic() {
        let adj = barbell(6);
        assert_eq!(sparsest_vertex_cut(&adj, 3), sparsest_vertex_cut(&adj, 3));
    }

    #[test]
    fn path_cut_isolates_half() {
        let adj = path4();
        let cut = sparsest_vertex_cut(&adj, 1).expect("a path has articulation points");
        assert_eq!(cut.separator.len(), 1);
        let blocked: BlockSet = cut.separator.iter().copied().collect();
        assert!(!is_connected_restricted(&adj, &blocked));
    }
}
