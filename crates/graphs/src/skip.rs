//! A skip graph (Aspnes–Wieder style), used as the *routing-based
//! reconfiguration baseline* of Section 1.2.
//!
//! The paper's related-work discussion sketches the natural alternative to
//! rapid node sampling: keep the nodes in a skip graph over labels chosen
//! uniformly from `[0, 1)`; to reconfigure, every node draws a fresh label
//! and **routes** a message through the old skip graph to the node closest
//! to its new label, after which the new skip graph is wired in `O(log n)`
//! rounds. The routing dominates: with polylogarithmic degree it cannot
//! beat `o(log n / log log n)` rounds — exponentially slower than
//! Algorithm 3's `O(log log n)`. Experiment A3 measures exactly this gap.
//!
//! Nodes carry a position label (sorted order) and a random membership
//! vector; level `i` links nodes sharing their first `i` membership bits
//! into doubly linked lists ordered by label.

use crate::connectivity::Adjacency;
use rand::{Rng, RngExt};
use simnet::NodeId;
use std::collections::HashMap;

/// One node's links: `(predecessor, successor)` per level.
type Links = Vec<(Option<NodeId>, Option<NodeId>)>;

/// A static skip graph over a labeled node set.
#[derive(Clone, Debug)]
pub struct SkipGraph {
    /// Nodes in ascending label order.
    order: Vec<NodeId>,
    label: HashMap<NodeId, u64>,
    links: HashMap<NodeId, Links>,
    levels: usize,
}

impl SkipGraph {
    /// Build a skip graph over `nodes` with uniformly random labels and
    /// membership vectors. `levels = ceil(log2 n) + 1`.
    pub fn build<R: Rng + ?Sized>(nodes: &[NodeId], rng: &mut R) -> Self {
        assert!(nodes.len() >= 2, "a skip graph needs at least 2 nodes");
        let n = nodes.len();
        let levels = (usize::BITS - (n - 1).leading_zeros()) as usize + 1;
        let mut label: HashMap<NodeId, u64> = HashMap::with_capacity(n);
        let mut mvec: HashMap<NodeId, u64> = HashMap::with_capacity(n);
        for &v in nodes {
            // Distinct labels w.h.p.; collisions are broken by node id in
            // the sort below, which is equivalent to label perturbation.
            label.insert(v, rng.random::<u64>());
            mvec.insert(v, rng.random::<u64>());
        }
        let mut order = nodes.to_vec();
        order.sort_by_key(|v| (label[v], v.raw()));

        let mut links: HashMap<NodeId, Links> =
            nodes.iter().map(|&v| (v, vec![(None, None); levels])).collect();
        for lvl in 0..levels {
            // Nodes sharing their first `lvl` membership bits form a list.
            let mask = if lvl == 0 { 0 } else { (1u64 << lvl) - 1 };
            let mut lists: HashMap<u64, Vec<NodeId>> = HashMap::new();
            for &v in &order {
                lists.entry(mvec[&v] & mask).or_default().push(v);
            }
            for list in lists.values() {
                for w in list.windows(2) {
                    links.get_mut(&w[0]).expect("known node")[lvl].1 = Some(w[1]);
                    links.get_mut(&w[1]).expect("known node")[lvl].0 = Some(w[0]);
                }
            }
        }
        Self { order, label, links, levels }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if fewer than 2 nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The position label of `v`.
    pub fn label_of(&self, v: NodeId) -> u64 {
        self.label[&v]
    }

    /// All distinct neighbors of `v` across levels.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> =
            self.links[&v].iter().flat_map(|&(p, s)| [p, s]).flatten().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Maximum degree over all nodes (should be `O(log n)`).
    pub fn max_degree(&self) -> usize {
        self.order.iter().map(|&v| self.neighbors(v).len()).max().unwrap_or(0)
    }

    /// The node whose label is closest to `target` (ties toward the
    /// smaller label).
    pub fn closest(&self, target: u64) -> NodeId {
        let idx = self.order.partition_point(|v| self.label[v] < target);
        let candidates = [idx.checked_sub(1), Some(idx.min(self.order.len() - 1))];
        candidates
            .into_iter()
            .flatten()
            .map(|i| self.order[i])
            .min_by_key(|v| self.label[v].abs_diff(target))
            .expect("non-empty")
    }

    /// Greedy route from `from` toward the node closest to `target`:
    /// at each hop, move to the neighbor whose label is closest to the
    /// target without overshooting past it (classic skip-graph search).
    /// Returns the hop sequence including the start node.
    pub fn route(&self, from: NodeId, target: u64) -> Vec<NodeId> {
        let goal = self.closest(target);
        let mut path = vec![from];
        let mut cur = from;
        while cur != goal {
            let cur_label = self.label[&cur];
            let going_right = cur_label < self.label[&goal];
            // Highest-level neighbor in the right direction that does not
            // overshoot the goal.
            let mut next = None;
            for lvl in (0..self.levels).rev() {
                let cand =
                    if going_right { self.links[&cur][lvl].1 } else { self.links[&cur][lvl].0 };
                if let Some(w) = cand {
                    let wl = self.label[&w];
                    let ok =
                        if going_right { wl <= self.label[&goal] } else { wl >= self.label[&goal] };
                    if ok {
                        next = Some(w);
                        break;
                    }
                }
            }
            let next = next.unwrap_or_else(|| {
                // Fall back to the level-0 list (always makes progress).
                let (p, s) = self.links[&cur][0];
                if going_right {
                    s.expect("goal is to the right")
                } else {
                    p.expect("goal is to the left")
                }
            });
            cur = next;
            path.push(cur);
            assert!(path.len() <= self.len(), "routing did not converge");
        }
        path
    }

    /// Undirected adjacency over all levels (for connectivity/spectral
    /// checks — a skip graph over random labels is an expander w.h.p.).
    pub fn adjacency(&self) -> Adjacency {
        let mut edges = Vec::new();
        for &v in &self.order {
            for w in self.neighbors(v) {
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        Adjacency::from_edges(&self.order, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(n: u64, seed: u64) -> SkipGraph {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SkipGraph::build(&nodes, &mut rng)
    }

    #[test]
    fn level_zero_is_one_list() {
        let g = build(64, 1);
        assert!(crate::connectivity::is_connected(&g.adjacency()));
    }

    #[test]
    fn degree_is_logarithmic() {
        let g = build(256, 2);
        let d = g.max_degree();
        assert!(d <= 4 * 9, "degree {d} too large for n = 256");
        assert!(d >= 2);
    }

    #[test]
    fn closest_finds_nearest_label() {
        let g = build(32, 3);
        for probe in [0u64, u64::MAX / 3, u64::MAX] {
            let c = g.closest(probe);
            let best = (0..32).map(NodeId).min_by_key(|v| g.label_of(*v).abs_diff(probe)).unwrap();
            assert_eq!(g.label_of(c).abs_diff(probe), g.label_of(best).abs_diff(probe));
        }
    }

    #[test]
    fn routing_reaches_the_closest_node() {
        let g = build(128, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let from = NodeId(rng.random_range(0..128));
            let target = rng.random::<u64>();
            let path = g.route(from, target);
            assert_eq!(*path.last().unwrap(), g.closest(target));
            // consecutive hops are skip-graph edges
            for w in path.windows(2) {
                assert!(g.neighbors(w[0]).contains(&w[1]), "non-edge hop");
            }
        }
    }

    #[test]
    fn route_length_is_logarithmic() {
        let g = build(512, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut worst = 0usize;
        for _ in 0..100 {
            let from = NodeId(rng.random_range(0..512));
            let path = g.route(from, rng.random::<u64>());
            worst = worst.max(path.len() - 1);
        }
        // O(log n) hops w.h.p.: allow a generous constant.
        assert!(worst <= 6 * 9, "worst route {worst} too long for n = 512");
        assert!(worst >= 2, "worst route suspiciously short");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn singleton_rejected() {
        let nodes = vec![NodeId(0)];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        SkipGraph::build(&nodes, &mut rng);
    }
}
