//! Robust publish-subscribe (Section 7.3).
//!
//! Emulated on the robust DHT: every subscriber group is identified by a
//! key `k`; the DHT stores the publication counter `m(k)` under `k` and
//! publication `i` under the derived key `(k, i)`. A batch of publications
//! is first *aggregated by key* (the paper uses Ranade-style combining on
//! the butterfly in `O(log n / log log n)` rounds; we aggregate at the
//! batch interface and charge the butterfly depth), then `m(k)` is bumped
//! once per key and the publications are stored under consecutive indices.
//! A subscriber fetches `m(k)` and then all publications up to it.

use crate::dht::{DhtError, RobustDht};
use serde::{Deserialize, Serialize};
use simnet::BlockSet;
use std::collections::BTreeMap;

/// Derived DHT key for publication `i` of topic `k`.
fn pub_key(topic: u64, index: u64) -> u64 {
    // Distinct from raw topic keys: fold (topic, index) through a hash.
    let mut x = topic.rotate_left(17) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 32)
}

/// Metrics of one publication batch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PublishMetrics {
    /// Publications submitted.
    pub submitted: usize,
    /// Publications durably stored.
    pub stored: usize,
    /// Distinct topics touched.
    pub topics: usize,
    /// Overlay rounds, including the aggregation sweep.
    pub rounds: u64,
}

/// A publish-subscribe system on the robust DHT.
pub struct PubSub {
    dht: RobustDht,
}

impl PubSub {
    /// Build over `n` servers.
    pub fn new(n: usize, seed: u64) -> Self {
        Self { dht: RobustDht::new(n, 2.0, seed) }
    }

    /// Access the underlying DHT (e.g. to drive reconfiguration rounds).
    pub fn dht_mut(&mut self) -> &mut RobustDht {
        &mut self.dht
    }

    /// Publish a batch of `(topic, payload)` pairs under blocking.
    pub fn publish_batch(
        &mut self,
        pubs: &[(u64, u64)],
        blocked: &BlockSet,
    ) -> Result<PublishMetrics, DhtError> {
        // Aggregation: count publications per topic (the butterfly
        // combining step), assigning each a consecutive local index.
        let mut by_topic: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &(topic, payload) in pubs {
            by_topic.entry(topic).or_default().push(payload);
        }
        let mut stored = 0usize;
        let mut rounds = 0u64;
        // Aggregation sweep cost: one butterfly traversal.
        rounds += 2 * self.dht.groups().cube().dim() as u64;
        for (&topic, payloads) in &by_topic {
            let m = match self.dht.read(topic, blocked) {
                Ok(v) => v,
                Err(DhtError::QuorumFailed) => 0, // topic not yet created
                Err(e) => return Err(e),
            };
            for (i, &payload) in payloads.iter().enumerate() {
                self.dht.write(pub_key(topic, m + 1 + i as u64), payload, blocked)?;
                stored += 1;
                rounds += 1;
            }
            self.dht.write(topic, m + payloads.len() as u64, blocked)?;
            rounds += 1;
        }
        Ok(PublishMetrics { submitted: pubs.len(), stored, topics: by_topic.len(), rounds })
    }

    /// Fetch all publications of a topic, oldest first.
    pub fn fetch(&mut self, topic: u64, blocked: &BlockSet) -> Result<Vec<u64>, DhtError> {
        let m = match self.dht.read(topic, blocked) {
            Ok(v) => v,
            Err(DhtError::QuorumFailed) => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        (1..=m).map(|i| self.dht.read(pub_key(topic, i), blocked)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_fetch_roundtrip() {
        let mut ps = PubSub::new(512, 1);
        let none = BlockSet::none();
        let m = ps.publish_batch(&[(7, 100), (7, 101), (9, 200)], &none).unwrap();
        assert_eq!(m.stored, 3);
        assert_eq!(m.topics, 2);
        assert_eq!(ps.fetch(7, &none).unwrap(), vec![100, 101]);
        assert_eq!(ps.fetch(9, &none).unwrap(), vec![200]);
        assert!(ps.fetch(12345, &none).unwrap().is_empty());
    }

    #[test]
    fn later_batches_append() {
        let mut ps = PubSub::new(512, 2);
        let none = BlockSet::none();
        ps.publish_batch(&[(5, 1)], &none).unwrap();
        ps.publish_batch(&[(5, 2), (5, 3)], &none).unwrap();
        assert_eq!(ps.fetch(5, &none).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_bounded_blocking() {
        let n = 1024;
        let mut ps = PubSub::new(n, 3);
        let none = BlockSet::none();
        ps.publish_batch(&[(1, 11), (2, 22)], &none).unwrap();
        let budget = RobustDht::blocking_budget(n, 1.0);
        let blocked: BlockSet =
            (0..budget as u64).map(|i| simnet::NodeId(i * 13 % n as u64)).collect();
        assert_eq!(ps.fetch(1, &blocked).unwrap(), vec![11]);
        ps.publish_batch(&[(1, 12)], &blocked).unwrap();
        assert_eq!(ps.fetch(1, &none).unwrap(), vec![11, 12]);
    }

    #[test]
    fn aggregation_counts_topics_once() {
        let mut ps = PubSub::new(256, 4);
        let none = BlockSet::none();
        let pubs: Vec<(u64, u64)> = (0..20).map(|i| (3, i)).collect();
        let m = ps.publish_batch(&pubs, &none).unwrap();
        assert_eq!(m.topics, 1);
        assert_eq!(ps.fetch(3, &none).unwrap().len(), 20);
    }
}
