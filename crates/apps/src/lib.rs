//! # overlay-apps — applications of reconfigurable overlays (Section 7)
//!
//! * [`anon`] — robust anonymous routing (Section 7.1, Corollary 2).
//! * [`dht`] — the robust DHT: a RoBuSt-style storage substrate with
//!   logarithmic redundancy on a reconfigurable k-ary hypercube with
//!   butterfly routing (Section 7.2, Theorem 8).
//! * [`pubsub`] — a robust publish-subscribe system emulated on the DHT
//!   (Section 7.3).

pub mod anon;
pub mod dht;
pub mod pubsub;
