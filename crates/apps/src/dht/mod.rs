//! The robust DHT (Section 7.2, Theorem 8).
//!
//! A RoBuSt-style distributed storage system over a *fixed* set of `n`
//! servers, made DoS-resistant without full interconnection by running the
//! Section 5 reconfiguration on a **k-ary hypercube** of supernodes
//! (Definition 1) and emulating a k-ary **butterfly** over it for routing.
//! Data never moves during reconfiguration: values live on the fixed
//! servers (with logarithmic redundancy across hash-chosen replicas);
//! only the group overlay that routes requests is continuously resampled.
//!
//! Substitution note (documented in DESIGN.md): the original RoBuSt
//! internals (coding-based storage) are replaced by replication with
//! majority reads, which preserves the Theorem 8 claim shape — any batch
//! of read/write requests (O(1) per non-blocked server) completes in
//! polylogarithmic rounds with polylogarithmic congestion while at most
//! `gamma * n^(1/log log n)` servers are blocked.

pub mod kary_groups;
pub mod routing;
pub mod store;

use kary_groups::KaryGroups;
use rand::RngExt;
use reconfig_core::config::{SamplingParams, Schedule};
use routing::{route_batch, Packet};
use serde::{Deserialize, Serialize};
use simnet::rng::NodeRng;
use simnet::{BlockSet, NodeId};
use std::collections::HashMap;
use store::{replica_servers, ServerStore};

/// Why a DHT operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DhtError {
    /// No route: some butterfly level had its group fully blocked.
    Unroutable,
    /// Fewer than a majority of replicas answered.
    QuorumFailed,
}

/// A read/write request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DhtOp {
    /// Read the value of a key.
    Read { key: u64 },
    /// Write a value to a key.
    Write { key: u64, value: u64 },
}

/// Metrics of one served batch (the Theorem 8 quantities).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BatchMetrics {
    /// Requests in the batch.
    pub requests: usize,
    /// Requests completed successfully.
    pub completed: usize,
    /// Overlay rounds consumed (`O(log^3 n)` by Theorem 8).
    pub rounds: u64,
    /// Maximum messages handled by any single group in any round —
    /// the congestion bound (`O(log^3 n)`).
    pub congestion: u64,
}

/// The robust DHT.
pub struct RobustDht {
    /// Fixed servers and their local stores.
    servers: HashMap<NodeId, ServerStore>,
    /// The reconfigurable k-ary hypercube of groups.
    groups: KaryGroups,
    /// Replicas per key (logarithmic redundancy).
    redundancy: usize,
    epoch_len: u64,
    round: u64,
    epoch_ok: bool,
    prev_blocked: BlockSet,
    rng: NodeRng,
    /// Epochs whose availability precondition failed.
    pub failed_epochs: u64,
}

impl RobustDht {
    /// Stand up a DHT over servers `0..n`. `group_c` controls supernode
    /// count (`k^d <= n / (group_c * log2 n)`).
    pub fn new(n: usize, group_c: f64, seed: u64) -> Self {
        let nodes: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let mut rng = simnet::rng::stream(seed, 4, 0xD47);
        let groups = KaryGroups::random(&nodes, group_c, &mut rng);
        let redundancy = ((n.max(4) as f64).log2().ceil() as usize).max(3);
        // Epoch length mirrors the Section 5 derivation on the supernode
        // population (power-of-two-rounded binary dimension).
        let sched_dim = (groups.cube().dim().max(2) as usize).next_power_of_two() as u32;
        let schedule = Schedule::algorithm2(sched_dim, &SamplingParams::default());
        let epoch_len = 2 * schedule.rounds() as u64 + 4;
        Self {
            servers: nodes.into_iter().map(|v| (v, ServerStore::default())).collect(),
            groups,
            redundancy,
            epoch_len,
            round: 0,
            epoch_ok: true,
            prev_blocked: BlockSet::none(),
            rng,
            failed_epochs: 0,
        }
    }

    /// Servers in the system.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True if no servers exist.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Replicas per key.
    pub fn redundancy(&self) -> usize {
        self.redundancy
    }

    /// Rounds per reconfiguration epoch.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// The group overlay.
    pub fn groups(&self) -> &KaryGroups {
        &self.groups
    }

    /// The Theorem 8 blocking budget `gamma * n^(1/log log n)`.
    pub fn blocking_budget(n: usize, gamma: f64) -> usize {
        let n_f = n.max(16) as f64;
        let exponent = 1.0 / n_f.log2().log2();
        (gamma * n_f.powf(exponent)).floor() as usize
    }

    /// Advance one overlay round under `blocked` (availability tracking +
    /// epoch-boundary group resampling, as in Section 5).
    pub fn step(&mut self, blocked: &BlockSet) {
        self.round += 1;
        let ok =
            self.groups.groups().iter().all(|g| {
                g.iter().any(|v| !self.prev_blocked.contains(*v) && !blocked.contains(*v))
            });
        if !ok {
            self.epoch_ok = false;
        }
        self.prev_blocked = blocked.clone();
        if self.round % self.epoch_len == 0 {
            if self.epoch_ok {
                self.groups.resample(&mut self.rng);
            } else {
                self.failed_epochs += 1;
            }
            self.epoch_ok = true;
        }
    }

    /// Serve a batch of requests while `blocked` holds.
    ///
    /// Every request spawns one packet per replica; the packets are routed
    /// over the emulated butterfly by [`routing::route_batch`] (per-level
    /// queues, `O(log n)` forwards per group per round, Ranade-style
    /// combining of equal-key packets). The final group exchanges messages
    /// with the replica server directly — data never moves with the
    /// overlay. A request completes when a majority of its replicas were
    /// reached.
    pub fn serve_batch(&mut self, ops: &[DhtOp], blocked: &BlockSet) -> BatchMetrics {
        // Writes first so reads in the same batch observe them.
        let mut ordered: Vec<&DhtOp> = ops.iter().collect();
        ordered.sort_by_key(|op| matches!(op, DhtOp::Read { .. }));

        // One packet per (request, replica).
        let mut packets = Vec::with_capacity(ordered.len() * self.redundancy);
        let mut packet_meta: Vec<(usize, NodeId)> = Vec::new();
        for (op_idx, op) in ordered.iter().enumerate() {
            let key = match **op {
                DhtOp::Read { key } | DhtOp::Write { key, .. } => key,
            };
            for srv in replica_servers(key, self.len() as u64, self.redundancy) {
                let entry = self.rng.random_range(0..self.groups.cube().len());
                packets.push(Packet { entry, target: self.groups.home_supernode(srv), key });
                packet_meta.push((op_idx, srv));
            }
        }

        let capacity = (self.len().max(2) as f64).log2().ceil() as usize;
        let groups = &self.groups;
        let route = route_batch(groups.cube(), &packets, capacity, |sn| {
            !groups.has_unblocked_member(sn, blocked)
        });

        // Final hop: the target group talks to the replica server.
        let mut reached_per_op: HashMap<usize, usize> = HashMap::new();
        for (i, &(op_idx, srv)) in packet_meta.iter().enumerate() {
            if route.delivered[i] && !blocked.contains(srv) {
                *reached_per_op.entry(op_idx).or_insert(0) += 1;
                let key_value = match *ordered[op_idx] {
                    DhtOp::Write { key, value } => Some((key, value)),
                    DhtOp::Read { .. } => None,
                };
                if let Some((key, value)) = key_value {
                    self.servers.get_mut(&srv).expect("fixed server set").write(key, value);
                }
            }
        }
        let quorum = self.redundancy / 2 + 1;
        let completed = (0..ordered.len())
            .filter(|i| reached_per_op.get(i).copied().unwrap_or(0) >= quorum)
            .count();

        BatchMetrics {
            requests: ops.len(),
            completed,
            // Route rounds (one butterfly level per round of combined
            // queue service) doubled for the simulate+synchronize cadence,
            // plus the final group <-> server exchange.
            rounds: 2 * route.rounds + 2,
            congestion: route.max_congestion,
        }
    }

    /// Read a single key under `blocked`: majority over replicas.
    pub fn read(&mut self, key: u64, blocked: &BlockSet) -> Result<u64, DhtError> {
        let replicas = replica_servers(key, self.len() as u64, self.redundancy);
        let mut versions: Vec<(u64, u64)> = Vec::new();
        let mut reachable = 0usize;
        for &srv in &replicas {
            let target = self.groups.home_supernode(srv);
            let entry = self.rng.random_range(0..self.groups.cube().len());
            let route = self.groups.cube().route(entry, target);
            let ok = route.iter().all(|&sn| self.groups.has_unblocked_member(sn, blocked))
                && !blocked.contains(srv);
            if !ok {
                continue;
            }
            reachable += 1;
            if let Some(vv) = self.servers[&srv].read(key) {
                versions.push(vv);
            }
        }
        if reachable < self.redundancy / 2 + 1 {
            return Err(DhtError::QuorumFailed);
        }
        versions
            .into_iter()
            .max_by_key(|&(ver, _)| ver)
            .map(|(_, val)| val)
            .ok_or(DhtError::QuorumFailed)
    }

    /// Write a single key under `blocked`.
    pub fn write(&mut self, key: u64, value: u64, blocked: &BlockSet) -> Result<(), DhtError> {
        let m = self.serve_batch(&[DhtOp::Write { key, value }], blocked);
        if m.completed == 1 {
            Ok(())
        } else {
            Err(DhtError::QuorumFailed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut dht = RobustDht::new(512, 2.0, 1);
        let none = BlockSet::none();
        dht.write(42, 4242, &none).unwrap();
        assert_eq!(dht.read(42, &none).unwrap(), 4242);
        dht.write(42, 4343, &none).unwrap();
        assert_eq!(dht.read(42, &none).unwrap(), 4343, "latest version wins");
    }

    #[test]
    fn missing_key_reports_quorum_of_empties() {
        let mut dht = RobustDht::new(256, 2.0, 2);
        assert_eq!(dht.read(7, &BlockSet::none()), Err(DhtError::QuorumFailed));
    }

    #[test]
    fn survives_theorem8_blocking_budget() {
        let n = 1024;
        let mut dht = RobustDht::new(n, 2.0, 3);
        let none = BlockSet::none();
        for k in 0..50u64 {
            dht.write(k, k * 10, &none).unwrap();
        }
        // Block gamma * n^(1/loglog n) random-ish servers.
        let budget = RobustDht::blocking_budget(n, 1.0);
        assert!(budget > 0 && budget < n / 4);
        let blocked: BlockSet = (0..budget as u64).map(|i| NodeId(i * 7 % n as u64)).collect();
        for k in 0..50u64 {
            assert_eq!(dht.read(k, &blocked).unwrap(), k * 10, "key {k}");
        }
    }

    #[test]
    fn batch_metrics_are_polylog() {
        let n = 1024usize;
        let mut dht = RobustDht::new(n, 2.0, 4);
        let ops: Vec<DhtOp> =
            (0..n as u64 / 2).map(|k| DhtOp::Write { key: k, value: k }).collect();
        let m = dht.serve_batch(&ops, &BlockSet::none());
        assert_eq!(m.completed, m.requests);
        let log3 = (n as f64).log2().powi(3);
        assert!((m.rounds as f64) < log3, "rounds {} vs log^3 {}", m.rounds, log3);
        assert!((m.congestion as f64) < 40.0 * log3, "congestion {}", m.congestion);
    }

    #[test]
    fn reconfiguration_does_not_move_data() {
        let mut dht = RobustDht::new(256, 2.0, 5);
        let none = BlockSet::none();
        dht.write(99, 1234, &none).unwrap();
        let before = dht.groups().groups().to_vec();
        for _ in 0..dht.epoch_len() {
            dht.step(&none);
        }
        assert_ne!(dht.groups().groups().to_vec(), before, "groups resampled");
        assert_eq!(dht.read(99, &none).unwrap(), 1234, "data survives reconfiguration");
    }

    #[test]
    fn fully_blocked_replicas_fail_the_read() {
        let mut dht = RobustDht::new(128, 2.0, 6);
        let none = BlockSet::none();
        dht.write(5, 55, &none).unwrap();
        let replicas = store::replica_servers(5, 128, dht.redundancy());
        let blocked: BlockSet = replicas.into_iter().collect();
        assert!(dht.read(5, &blocked).is_err());
    }
}
