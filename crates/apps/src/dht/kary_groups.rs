//! Groups of representatives over a k-ary hypercube of supernodes — the
//! straightforward extension of the Section 5 reconfiguration procedure
//! that Section 7.2 calls for.

use overlay_graphs::KaryHypercube;
use rand::{Rng, RngExt};
use simnet::{BlockSet, NodeId};
use std::collections::HashMap;

/// Node groups keyed by k-ary hypercube supernode.
#[derive(Clone, Debug)]
pub struct KaryGroups {
    cube: KaryHypercube,
    groups: Vec<Vec<NodeId>>,
    assign: HashMap<NodeId, u64>,
}

impl KaryGroups {
    /// Choose the k-ary cube so that `k^d <= n / (c log2 n)` with the
    /// RoBuSt shape `d ~ k / log k`, then assign every node to a uniform
    /// random supernode.
    pub fn random<R: Rng + ?Sized>(nodes: &[NodeId], c: f64, rng: &mut R) -> Self {
        let n = nodes.len();
        assert!(n >= 16, "k-ary group overlay needs at least 16 nodes");
        let target = (n as f64 / (c * (n as f64).log2())).max(2.0);
        // kappa = log2(target); robust_params picks k, d from it.
        let kappa = (target.log2().floor() as u32).max(4);
        let mut cube = KaryHypercube::robust_params(kappa);
        // Shrink if rounding overshot the target population.
        while cube.len() as f64 > 2.0 * target && cube.dim() > 1 {
            cube = KaryHypercube::new(cube.k(), cube.dim() - 1);
        }
        let mut out = Self {
            cube,
            groups: vec![Vec::new(); cube.len() as usize],
            assign: HashMap::with_capacity(n),
        };
        for &v in nodes {
            let x = rng.random_range(0..cube.len());
            out.groups[x as usize].push(v);
            out.assign.insert(v, x);
        }
        out
    }

    /// The supernode cube.
    pub fn cube(&self) -> &KaryHypercube {
        &self.cube
    }

    /// All groups, indexed by supernode label.
    pub fn groups(&self) -> &[Vec<NodeId>] {
        &self.groups
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// The *home supernode* of a server: a fixed hash of its id. Requests
    /// for server `v` are routed to `R(home(v))`, which then talks to `v`
    /// directly — this is what makes data movement unnecessary.
    pub fn home_supernode(&self, v: NodeId) -> u64 {
        // SplitMix-style hash onto the supernode space.
        let mut x = v.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) % self.cube.len()
    }

    /// Does supernode `x`'s group have a non-blocked member?
    pub fn has_unblocked_member(&self, x: u64, blocked: &BlockSet) -> bool {
        self.groups[x as usize].iter().any(|v| !blocked.contains(*v))
    }

    /// Resample all assignments uniformly (the epoch-boundary
    /// reconfiguration of Lemma 15 carried over to the k-ary cube).
    pub fn resample<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let nodes: Vec<NodeId> = self.assign.keys().copied().collect();
        for g in self.groups.iter_mut() {
            g.clear();
        }
        for v in nodes {
            let x = rng.random_range(0..self.cube.len());
            self.groups[x as usize].push(v);
            self.assign.insert(v, x);
        }
    }

    /// Smallest and largest group size.
    pub fn group_size_range(&self) -> (usize, usize) {
        let min = self.groups.iter().map(Vec::len).min().unwrap_or(0);
        let max = self.groups.iter().map(Vec::len).max().unwrap_or(0);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn every_node_assigned_once() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = KaryGroups::random(&nodes(1000), 2.0, &mut rng);
        assert_eq!(g.len(), 1000);
        let total: usize = g.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn supernode_count_tracks_n_over_log() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = KaryGroups::random(&nodes(4096), 2.0, &mut rng);
        let target = 4096.0 / (2.0 * (4096f64).log2());
        let count = g.cube().len() as f64;
        assert!(count <= 2.0 * target, "supernodes {count} vs target {target}");
        assert!(count >= target / 8.0, "supernodes {count} vs target {target}");
    }

    #[test]
    fn home_supernode_is_stable_and_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = KaryGroups::random(&nodes(256), 2.0, &mut rng);
        for v in nodes(256) {
            let h1 = g.home_supernode(v);
            let h2 = g.home_supernode(v);
            assert_eq!(h1, h2);
            assert!(h1 < g.cube().len());
        }
    }

    #[test]
    fn resample_changes_groups_but_keeps_population() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut g = KaryGroups::random(&nodes(512), 2.0, &mut rng);
        let before = g.groups().to_vec();
        g.resample(&mut rng);
        assert_ne!(g.groups().to_vec(), before);
        assert_eq!(g.len(), 512);
    }
}
