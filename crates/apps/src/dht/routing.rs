//! Butterfly routing with Ranade-style combining (Section 7.2/7.3).
//!
//! The extended RoBuSt system routes request packets over the emulated
//! `d`-dimensional `k`-ary butterfly: a packet entering at level 0
//! corrects one digit of its position per level until it reaches its
//! target supernode at level `d`. Each supernode (group) forwards a
//! bounded number of packets per round; packets addressed to the same
//! `(target, key)` are **combined** at every queue (Ranade's trick), which
//! is what caps the congestion of all-to-one access patterns.
//!
//! This module simulates the per-level queues round by round, producing
//! the exact round count and per-group congestion that
//! [`crate::dht::RobustDht::serve_batch`] reports.

use overlay_graphs::KaryHypercube;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A request packet to be routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Entry supernode (level 0 position).
    pub entry: u64,
    /// Target supernode (level `d` position).
    pub target: u64,
    /// Request key — packets with equal `(target, key)` combine.
    pub key: u64,
}

/// Result of routing one batch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// Per input packet: did it reach its target supernode?
    pub delivered: Vec<bool>,
    /// Rounds until the last packet arrived (or was dropped).
    pub rounds: u64,
    /// Maximum packets handled by any single supernode in any round.
    pub max_congestion: u64,
    /// Packets that vanished into a blocked supernode.
    pub dropped: u64,
    /// Number of queue entries saved by combining.
    pub combined: u64,
}

/// Route a batch of packets through the butterfly over `cube`.
///
/// * `capacity` — packets a group can forward per round (the paper allows
///   polylog work per node per round; `O(log n)` is the natural setting).
/// * `blocked` — supernodes whose group currently has no available
///   member; packets needing them are dropped (the caller's higher-level
///   redundancy absorbs this).
pub fn route_batch<F: Fn(u64) -> bool>(
    cube: &KaryHypercube,
    packets: &[Packet],
    capacity: usize,
    blocked: F,
) -> RouteOutcome {
    assert!(capacity >= 1);
    let depth = cube.dim();
    let mut out = RouteOutcome { delivered: vec![false; packets.len()], ..Default::default() };

    // In-flight entries: (level, position, target, key) -> original packet
    // indices (combined packets share one entry).
    type Entry = (u32, u64, u64, u64);
    let mut queues: HashMap<u64, Vec<(Entry, Vec<usize>)>> = HashMap::new();
    for (i, p) in packets.iter().enumerate() {
        if blocked(p.entry) {
            out.dropped += 1;
            continue;
        }
        let entry: Entry = (0, p.entry, p.target, p.key);
        let queue = queues.entry(p.entry).or_default();
        match queue.iter_mut().find(|(e, _)| *e == entry) {
            Some((_, idxs)) => {
                idxs.push(i);
                out.combined += 1;
            }
            None => queue.push((entry, vec![i])),
        }
    }

    let mut rounds = 0u64;
    while queues.values().any(|q| !q.is_empty()) {
        rounds += 1;
        assert!(
            rounds <= 4 * (depth as u64 + 1) + packets.len() as u64,
            "butterfly routing did not drain"
        );
        let mut next: HashMap<u64, Vec<(Entry, Vec<usize>)>> = HashMap::new();
        for (pos, queue) in queues.iter_mut() {
            let load = queue.len() as u64;
            out.max_congestion = out.max_congestion.max(load);
            // Forward up to `capacity` entries; the rest wait here.
            let take = queue.len().min(capacity);
            let forwarded: Vec<(Entry, Vec<usize>)> = queue.drain(..take).collect();
            for ((level, _, target, key), idxs) in forwarded {
                if level == depth {
                    for i in idxs {
                        out.delivered[i] = true;
                    }
                    continue;
                }
                // Correct digit `level` toward the target.
                let new_pos = cube.with_digit(*pos, level, cube.digit(target, level));
                if blocked(new_pos) {
                    out.dropped += idxs.len() as u64;
                    continue;
                }
                let entry: Entry = (level + 1, new_pos, target, key);
                let q = next.entry(new_pos).or_default();
                match q.iter_mut().find(|(e, _)| *e == entry) {
                    Some((_, existing)) => {
                        out.combined += idxs.len() as u64;
                        existing.extend(idxs);
                    }
                    None => q.push((entry, idxs)),
                }
            }
        }
        // Entries that waited (over capacity) stay at their position.
        for (pos, queue) in queues {
            if !queue.is_empty() {
                next.entry(pos).or_default().extend(queue);
            }
        }
        queues = next;
    }
    out.rounds = rounds;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> KaryHypercube {
        KaryHypercube::new(4, 3) // 64 supernodes, depth 3
    }

    #[test]
    fn single_packet_takes_depth_plus_one_rounds() {
        let c = cube();
        let out = route_batch(&c, &[Packet { entry: 0, target: 63, key: 1 }], 8, |_| false);
        assert_eq!(out.delivered, vec![true]);
        // depth hops + the final delivery round.
        assert_eq!(out.rounds, c.dim() as u64 + 1);
        assert_eq!(out.dropped, 0);
    }

    #[test]
    fn all_to_one_combines_instead_of_congesting() {
        let c = cube();
        // Every supernode requests the same (target, key): combining must
        // keep congestion near k per node, not n.
        let packets: Vec<Packet> =
            c.vertices().map(|v| Packet { entry: v, target: 7, key: 99 }).collect();
        let out = route_batch(&c, &packets, 8, |_| false);
        assert!(out.delivered.iter().all(|&d| d));
        assert!(out.combined > 0);
        assert!(
            out.max_congestion <= 8,
            "combining should cap congestion, got {}",
            out.max_congestion
        );
    }

    #[test]
    fn distinct_keys_do_not_combine() {
        let c = cube();
        let packets: Vec<Packet> =
            (0..16).map(|i| Packet { entry: i, target: 7, key: i }).collect();
        let out = route_batch(&c, &packets, 64, |_| false);
        assert!(out.delivered.iter().all(|&d| d));
        assert_eq!(out.combined, 0);
    }

    #[test]
    fn blocked_supernode_drops_packets_through_it() {
        let c = cube();
        // Route 0 -> 63: first hop goes to position with digit0 = 3.
        let first_hop = c.with_digit(0, 0, 3);
        let out =
            route_batch(&c, &[Packet { entry: 0, target: 63, key: 1 }], 8, |x| x == first_hop);
        assert_eq!(out.delivered, vec![false]);
        assert_eq!(out.dropped, 1);
    }

    #[test]
    fn capacity_one_creates_queueing_rounds() {
        let c = cube();
        // Many distinct-key packets from one entry: with capacity 1 they
        // serialize.
        let packets: Vec<Packet> =
            (0..10).map(|i| Packet { entry: 0, target: 63, key: i }).collect();
        let fast = route_batch(&c, &packets, 16, |_| false);
        let slow = route_batch(&c, &packets, 1, |_| false);
        assert!(slow.rounds > fast.rounds);
        assert!(slow.delivered.iter().all(|&d| d));
    }

    #[test]
    fn entry_equals_target_still_counts_delivery() {
        let c = cube();
        let out = route_batch(&c, &[Packet { entry: 5, target: 5, key: 0 }], 4, |_| false);
        assert_eq!(out.delivered, vec![true]);
    }
}
