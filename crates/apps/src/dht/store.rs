//! Per-server storage and replica placement.

use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::HashMap;

/// A server's local versioned key-value store.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServerStore {
    map: HashMap<u64, (u64, u64)>, // key -> (version, value)
    next_version: u64,
}

impl ServerStore {
    /// Store `value` under `key` with a fresh local version.
    pub fn write(&mut self, key: u64, value: u64) {
        self.next_version += 1;
        let v = self.next_version;
        self.map.insert(key, (v, value));
    }

    /// `(version, value)` currently stored for `key`.
    pub fn read(&self, key: u64) -> Option<(u64, u64)> {
        self.map.get(&key).copied()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The `redundancy` distinct replica servers of a key, chosen by iterated
/// hashing (RoBuSt's "logarithmic redundancy").
pub fn replica_servers(key: u64, n_servers: u64, redundancy: usize) -> Vec<NodeId> {
    assert!(n_servers as usize >= redundancy, "more replicas than servers");
    let mut out = Vec::with_capacity(redundancy);
    let mut i = 0u64;
    while out.len() < redundancy {
        let mut x = key ^ i.wrapping_mul(0xA24B_AED4_963E_E407);
        x = (x ^ (x >> 31)).wrapping_mul(0x9FB2_1C65_1E98_DF25);
        x = (x ^ (x >> 28)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let srv = NodeId((x ^ (x >> 32)) % n_servers);
        if !out.contains(&srv) {
            out.push(srv);
        }
        i += 1;
        assert!(i < 64 * redundancy as u64, "hash family exhausted");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_increase_per_write() {
        let mut s = ServerStore::default();
        s.write(1, 10);
        let (v1, _) = s.read(1).unwrap();
        s.write(1, 20);
        let (v2, val) = s.read(1).unwrap();
        assert!(v2 > v1);
        assert_eq!(val, 20);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn replicas_are_distinct_and_deterministic() {
        let r1 = replica_servers(42, 1000, 10);
        let r2 = replica_servers(42, 1000, 10);
        assert_eq!(r1, r2);
        let mut dedup = r1.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn different_keys_get_different_replica_sets() {
        let a = replica_servers(1, 1 << 20, 8);
        let b = replica_servers(2, 1 << 20, 8);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "more replicas")]
    fn too_much_redundancy_rejected() {
        replica_servers(0, 4, 5);
    }
}
