//! Robust anonymous routing (Section 7.1, Corollary 2).
//!
//! Servers are organized in the DoS-resistant hypercube-of-groups overlay
//! of Section 5. For each server `v`, its *destination group* is
//! `D(v) = R(x) \ {v}` where `x` is `v`'s supernode. A user `v` sends its
//! message to any non-blocked ingress server `s(v)`; `s(v)` forwards it to
//! all servers in `D(s(v))`, which forward it to the recipient `w` (and
//! relay the reply back). Since group membership is uniformly random with
//! respect to everything an `Omega(log log n)`-late attacker can know,
//! the set of exit servers is uniform from its perspective — monitoring
//! any fixed server catches a given flow with probability `|D|/n`.

use rand::seq::IndexedRandom;
use reconfig_core::dos::{DosOverlay, DosParams};
use serde::{Deserialize, Serialize};
use simnet::rng::NodeRng;
use simnet::{BlockSet, NodeId};

/// Outcome of one anonymized request/reply exchange.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Whether the request reached the recipient and the reply returned.
    pub delivered: bool,
    /// Overlay rounds consumed (constant by Corollary 2).
    pub rounds: u64,
    /// The relay group used (exit servers from the attacker's viewpoint).
    pub relays: Vec<NodeId>,
}

/// The anonymizing server system.
pub struct Anonymizer {
    overlay: DosOverlay,
    rng: NodeRng,
}

impl Anonymizer {
    /// Stand up `n` relay servers in a Section 5 overlay.
    pub fn new(n: usize, params: DosParams, seed: u64) -> Self {
        Self {
            overlay: DosOverlay::new(n, params, seed),
            rng: simnet::rng::stream(seed, 3, 0xA2101),
        }
    }

    /// The underlying overlay (for driving reconfiguration/attack rounds).
    pub fn overlay_mut(&mut self) -> &mut DosOverlay {
        &mut self.overlay
    }

    /// The underlying overlay.
    pub fn overlay(&self) -> &DosOverlay {
        &self.overlay
    }

    /// Exchange one request and reply while `blocked` nodes are under
    /// attack (the block set is held for the few rounds the exchange
    /// takes; Corollary 2's O(1) bound makes this faithful for any
    /// adversary that re-decides each round).
    ///
    /// Flow: user -> ingress `s` -> all of `D(s)` -> recipient `w` ->
    /// non-blocked part of `D(s)` -> user. Returns the outcome; delivery
    /// fails only if no ingress server is reachable or the relay group is
    /// entirely blocked (impossible in the Theorem 6 regime).
    pub fn exchange(&mut self, blocked: &BlockSet) -> RequestOutcome {
        let grouped = self.overlay.grouped();
        let unblocked: Vec<NodeId> =
            grouped.nodes().into_iter().filter(|v| !blocked.contains(*v)).collect();
        // Round 1: the user contacts a non-blocked ingress server.
        let Some(&ingress) = unblocked.as_slice().choose(&mut self.rng) else {
            return RequestOutcome { delivered: false, rounds: 1, relays: Vec::new() };
        };
        // Round 2: ingress forwards to its destination group D(ingress).
        let x = grouped.supernode_of(ingress).expect("ingress is a member");
        let relays: Vec<NodeId> =
            grouped.group(x).iter().copied().filter(|&v| v != ingress).collect();
        let live_relays: Vec<NodeId> =
            relays.iter().copied().filter(|v| !blocked.contains(*v)).collect();
        if live_relays.is_empty() {
            return RequestOutcome { delivered: false, rounds: 2, relays };
        }
        // Round 3: live relays forward to the recipient; rounds 4-5: the
        // reply retraces. Delivery holds as long as one relay lives.
        RequestOutcome { delivered: true, rounds: 5, relays }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_adversary::dos::{DosAdversary, DosStrategy};
    use overlay_stats::tv_distance_uniform;

    #[test]
    fn exchange_succeeds_without_attack() {
        let mut anon = Anonymizer::new(512, DosParams::default(), 1);
        let out = anon.exchange(&BlockSet::none());
        assert!(out.delivered);
        assert_eq!(out.rounds, 5, "Corollary 2: O(1) rounds");
        assert!(!out.relays.is_empty());
    }

    #[test]
    fn exchange_survives_late_attack() {
        let mut anon = Anonymizer::new(1024, DosParams::default(), 2);
        let lateness = 2 * anon.overlay().epoch_len();
        let mut adv = DosAdversary::new(DosStrategy::GroupTargeted, 0.3, lateness, 3);
        // Run a few epochs of attack; exchange every round.
        let epoch = anon.overlay().epoch_len();
        let mut delivered = 0u64;
        let mut total = 0u64;
        for _ in 0..2 * epoch {
            adv.observe(anon.overlay().grouped().snapshot(anon.overlay().round()));
            let blocked = adv.block(anon.overlay().round(), 1024);
            let out = anon.exchange(&blocked);
            anon.overlay_mut().step(&blocked);
            total += 1;
            if out.delivered {
                delivered += 1;
            }
        }
        assert_eq!(delivered, total, "all exchanges must deliver in the Theorem 6 regime");
    }

    #[test]
    fn relay_usage_is_near_uniform_across_servers() {
        // Over many exchanges (with reconfigurations in between), every
        // server should serve as relay roughly equally often.
        let n = 256usize;
        let mut anon = Anonymizer::new(n, DosParams::default(), 4);
        let mut counts = vec![0u64; n];
        let epoch = anon.overlay().epoch_len();
        for i in 0..2000 {
            let out = anon.exchange(&BlockSet::none());
            for r in &out.relays {
                counts[r.raw() as usize] += 1;
            }
            if i % 10 == 0 {
                // Let time pass so groups resample.
                for _ in 0..epoch / 4 {
                    anon.overlay_mut().step(&BlockSet::none());
                }
            }
        }
        let tv = tv_distance_uniform(&counts, n);
        assert!(tv < 0.15, "relay distribution far from uniform: tv = {tv}");
    }

    #[test]
    fn fully_blocked_ingress_fails_gracefully() {
        let mut anon = Anonymizer::new(64, DosParams::default(), 5);
        let everyone: BlockSet = anon.overlay().grouped().nodes().into_iter().collect();
        let out = anon.exchange(&everyone);
        assert!(!out.delivered);
    }
}
